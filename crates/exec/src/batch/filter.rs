//! Vectorized selection.
//!
//! The tuple path's [`crate::filter::Predicate`] is an opaque closure; a
//! batch filter instead evaluates a structured [`BatchPredicate`] with a
//! per-column kernel over the whole batch, producing a selection vector
//! that one [`Batch::gather`] turns into the output batch. Semantics
//! match the tuple path's predicate builders exactly: comparisons against
//! a mistyped column select nothing, and substring matching is
//! case-insensitive on both sides.

use std::cmp::Ordering;

use reldiv_rel::{Batch, ColumnVec, Schema};

use super::{BatchOperator, BoxedBatchOp};
use crate::Result;

/// A comparison operator for [`BatchPredicate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchCmp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl BatchCmp {
    /// Whether an ordering outcome satisfies this comparison.
    pub fn eval(self, ord: Ordering) -> bool {
        matches!(
            (self, ord),
            (BatchCmp::Eq, Ordering::Equal)
                | (BatchCmp::Ne, Ordering::Less | Ordering::Greater)
                | (BatchCmp::Lt, Ordering::Less)
                | (BatchCmp::Le, Ordering::Less | Ordering::Equal)
                | (BatchCmp::Gt, Ordering::Greater)
                | (BatchCmp::Ge, Ordering::Greater | Ordering::Equal)
        )
    }
}

/// A structured selection predicate with a vectorized evaluation kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchPredicate {
    /// Compare an integer column against a literal; rows of a
    /// non-integer column never match (mirroring the tuple path's
    /// `as_int()` guard).
    IntCompare {
        /// Column index.
        column: usize,
        /// The comparison.
        cmp: BatchCmp,
        /// The literal.
        target: i64,
    },
    /// Compare a string column against a literal; rows of a non-string
    /// column never match.
    StrCompare {
        /// Column index.
        column: usize,
        /// The comparison.
        cmp: BatchCmp,
        /// The literal.
        target: String,
    },
    /// Case-insensitive substring match on a string column; rows of a
    /// non-string column never match. Construct with
    /// [`BatchPredicate::str_contains`] so the needle is pre-lowercased.
    StrContains {
        /// Column index.
        column: usize,
        /// The needle, lowercased.
        needle: String,
    },
}

impl BatchPredicate {
    /// Predicate: string column `column` contains `needle`
    /// (case-insensitive) — the batch analogue of
    /// [`crate::filter::str_contains`].
    pub fn str_contains(column: usize, needle: &str) -> BatchPredicate {
        BatchPredicate::StrContains {
            column,
            needle: needle.to_ascii_lowercase(),
        }
    }

    /// Predicate: integer column `column` equals `target` — the batch
    /// analogue of [`crate::filter::int_equals`].
    pub fn int_equals(column: usize, target: i64) -> BatchPredicate {
        BatchPredicate::IntCompare {
            column,
            cmp: BatchCmp::Eq,
            target,
        }
    }

    /// Appends the indices of matching rows to `rows`.
    pub fn select(&self, batch: &Batch, rows: &mut Vec<usize>) {
        match self {
            BatchPredicate::IntCompare {
                column,
                cmp,
                target,
            } => {
                if let ColumnVec::Int(vs) = batch.column(*column) {
                    for (row, v) in vs.iter().enumerate() {
                        if cmp.eval(v.cmp(target)) {
                            rows.push(row);
                        }
                    }
                }
            }
            BatchPredicate::StrCompare {
                column,
                cmp,
                target,
            } => {
                if let ColumnVec::Str(vs) = batch.column(*column) {
                    for (row, s) in vs.iter().enumerate() {
                        if cmp.eval(s.as_str().cmp(target.as_str())) {
                            rows.push(row);
                        }
                    }
                }
            }
            BatchPredicate::StrContains { column, needle } => {
                if let ColumnVec::Str(vs) = batch.column(*column) {
                    for (row, s) in vs.iter().enumerate() {
                        if s.to_ascii_lowercase().contains(needle.as_str()) {
                            rows.push(row);
                        }
                    }
                }
            }
        }
    }
}

/// Filters batches by a [`BatchPredicate`].
///
/// A batch in which no row matches yields an **empty** output batch
/// rather than silently draining the input — that keeps the caller's
/// per-batch cancellation poll firing even across long all-rejected
/// stretches, the failure mode of the tuple path's
/// [`crate::filter::Filter`] drain loop.
pub struct BatchFilter {
    input: BoxedBatchOp,
    predicate: BatchPredicate,
    selection: Vec<usize>,
}

impl BatchFilter {
    /// Creates a filter over `input`.
    pub fn new(input: BoxedBatchOp, predicate: BatchPredicate) -> BatchFilter {
        BatchFilter {
            input,
            predicate,
            selection: Vec::new(),
        }
    }
}

impl BatchOperator for BatchFilter {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn open(&mut self) -> Result<()> {
        self.input.open()
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        let Some(batch) = self.input.next_batch()? else {
            return Ok(None);
        };
        self.selection.clear();
        self.predicate.select(&batch, &mut self.selection);
        if self.selection.len() == batch.len() {
            return Ok(Some(batch));
        }
        Ok(Some(batch.gather(&self.selection)))
    }

    fn close(&mut self) -> Result<()> {
        self.input.close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::collect_batches;
    use crate::batch::scan::BatchMemScan;
    use crate::CancelToken;
    use reldiv_rel::schema::Field;
    use reldiv_rel::{Relation, Tuple, Value};

    fn courses() -> Relation {
        let schema = Schema::new(vec![Field::int("course-no"), Field::str("title", 32)]);
        let rows = [
            (1, "Intro to Database Systems"),
            (2, "Optics"),
            (3, "database implementation"),
            (4, "Compilers"),
        ];
        Relation::from_tuples(
            schema,
            rows.iter()
                .map(|&(no, title)| Tuple::new(vec![Value::Int(no), Value::from(title)]))
                .collect(),
        )
        .unwrap()
    }

    fn filtered(pred: BatchPredicate) -> Relation {
        collect_batches(
            Box::new(BatchFilter::new(
                Box::new(BatchMemScan::new(courses())),
                pred,
            )),
            CancelToken::none(),
        )
        .unwrap()
    }

    #[test]
    fn str_contains_selects_database_courses() {
        let out = filtered(BatchPredicate::str_contains(1, "Database"));
        let nos: Vec<i64> = out
            .tuples()
            .iter()
            .map(|t| t.value(0).as_int().unwrap())
            .collect();
        assert_eq!(nos, vec![1, 3]);
    }

    #[test]
    fn int_compare_selects_matching_rows() {
        assert_eq!(filtered(BatchPredicate::int_equals(0, 2)).cardinality(), 1);
        let ge = filtered(BatchPredicate::IntCompare {
            column: 0,
            cmp: BatchCmp::Ge,
            target: 3,
        });
        assert_eq!(ge.cardinality(), 2);
    }

    #[test]
    fn mistyped_column_matches_nothing() {
        assert!(filtered(BatchPredicate::str_contains(0, "1")).is_empty());
        assert!(filtered(BatchPredicate::int_equals(1, 1)).is_empty());
    }

    #[test]
    fn str_compare_orders_lexicographically() {
        let out = filtered(BatchPredicate::StrCompare {
            column: 1,
            cmp: BatchCmp::Lt,
            target: "D".into(),
        });
        assert_eq!(out.cardinality(), 1, "only \"Compilers\" sorts before D");
    }

    #[test]
    fn all_rejected_batches_still_flow_as_empties() {
        let mut f = BatchFilter::new(
            Box::new(BatchMemScan::new(courses()).with_batch_size(2)),
            BatchPredicate::int_equals(0, 999),
        );
        f.open().unwrap();
        // Two input batches, both fully rejected: two empty output
        // batches before exhaustion — each an upstream cancel poll.
        assert_eq!(f.next_batch().unwrap().unwrap().len(), 0);
        assert_eq!(f.next_batch().unwrap().unwrap().len(), 0);
        assert!(f.next_batch().unwrap().is_none());
        f.close().unwrap();
    }
}
