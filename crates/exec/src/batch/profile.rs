//! Profiling for the batch path.
//!
//! [`ProfiledBatchOp`] is the batch analogue of
//! [`crate::profile::ProfiledOp`]: same span-per-operator shape, same
//! inclusive metric semantics, same lazily created span. The one
//! difference is cadence — tuple counts are accumulated **per batch**
//! (`tuples_out += batch.len()` after each `next_batch`), so a profiled
//! batch plan records the same tuple-flow totals as the tuple plan while
//! touching the sink ~1000× less often.

use std::time::Instant;

use reldiv_rel::{counters, Batch, Schema};
use reldiv_storage::StorageRef;

use super::{BatchOperator, BoxedBatchOp};
use crate::profile::{buffer_stats, io_delta, ProfileSink, SpanId, SpanKind, SpanMetrics};
use crate::Result;

/// Wraps a batch operator so every `open`/`next_batch`/`close` call is
/// measured into a span of `sink`, exactly like
/// [`crate::profile::ProfiledOp`] does for tuple operators.
pub struct ProfiledBatchOp {
    inner: BoxedBatchOp,
    sink: ProfileSink,
    storage: Option<StorageRef>,
    label: String,
    kind: SpanKind,
    id: Option<SpanId>,
}

impl ProfiledBatchOp {
    /// Wraps `inner`.
    pub fn new(
        inner: BoxedBatchOp,
        sink: ProfileSink,
        label: impl Into<String>,
        kind: SpanKind,
        storage: Option<StorageRef>,
    ) -> ProfiledBatchOp {
        ProfiledBatchOp {
            inner,
            sink,
            storage,
            label: label.into(),
            kind,
            id: None,
        }
    }

    fn measured<T>(&mut self, f: impl FnOnce(&mut BoxedBatchOp) -> Result<T>) -> Result<T> {
        let id = self.id.expect("span created in open");
        let start = Instant::now();
        let ops0 = counters::snapshot();
        let io0 = buffer_stats(&self.storage);
        self.sink.push(id);
        let result = f(&mut self.inner);
        self.sink.pop(id);
        let (pages_read, pages_written) = io_delta(&io0, &buffer_stats(&self.storage));
        self.sink.add(
            id,
            &SpanMetrics {
                wall_micros: start.elapsed().as_micros() as u64,
                tuples_out: 0,
                ops: counters::snapshot().since(&ops0),
                pages_read,
                pages_written,
                spill_bytes: 0,
                network_bytes: 0,
                phases: Vec::new(),
            },
        );
        result
    }
}

impl BatchOperator for ProfiledBatchOp {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn open(&mut self) -> Result<()> {
        if self.id.is_none() {
            self.id = Some(self.sink.create_span(self.label.clone(), self.kind));
        }
        self.measured(|op| op.open())
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        let id = self.id.expect("span created in open");
        let batch = self.measured(|op| op.next_batch())?;
        if let Some(batch) = &batch {
            if !batch.is_empty() {
                self.sink.add(
                    id,
                    &SpanMetrics {
                        tuples_out: batch.len() as u64,
                        ..SpanMetrics::default()
                    },
                );
            }
        }
        Ok(batch)
    }

    fn close(&mut self) -> Result<()> {
        self.measured(|op| op.close())
    }
}

/// Wraps `op` in a [`ProfiledBatchOp`] when profiling is on; returns it
/// untouched when `sink` is `None` — the batch analogue of
/// [`crate::profile::maybe_profile`].
pub fn maybe_profile_batch(
    op: BoxedBatchOp,
    sink: Option<&ProfileSink>,
    label: impl Into<String>,
    kind: SpanKind,
    storage: Option<&StorageRef>,
) -> BoxedBatchOp {
    match sink {
        None => op,
        Some(sink) => Box::new(ProfiledBatchOp::new(
            op,
            sink.clone(),
            label,
            kind,
            storage.cloned(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::collect_batches;
    use crate::batch::scan::BatchMemScan;
    use crate::profile::SpanScope;
    use crate::CancelToken;
    use reldiv_rel::schema::Field;
    use reldiv_rel::tuple::ints;
    use reldiv_rel::Relation;

    fn rel(n: i64) -> Relation {
        let schema = Schema::new(vec![Field::int("x")]);
        Relation::from_tuples(schema, (0..n).map(|i| ints(&[i])).collect()).unwrap()
    }

    #[test]
    fn profiled_batch_scan_counts_tuples_per_batch() {
        let sink = ProfileSink::new();
        let root = SpanScope::enter(&sink, "query", SpanKind::Query, None);
        let scan: BoxedBatchOp = Box::new(BatchMemScan::new(rel(2500)).with_batch_size(256));
        let wrapped = maybe_profile_batch(scan, Some(&sink), "batch scan", SpanKind::Scan, None);
        let out = collect_batches(wrapped, CancelToken::none()).unwrap();
        root.finish();
        assert_eq!(out.cardinality(), 2500);
        let profile = sink.finish();
        let scan = &profile.root.children[0];
        assert_eq!(scan.label, "batch scan");
        assert_eq!(scan.tuples_out, 2500, "tuple totals match the tuple path");
        assert_eq!(profile.root.tuples_in, 2500);
    }

    #[test]
    fn disabled_profiling_is_the_identity() {
        let scan: BoxedBatchOp = Box::new(BatchMemScan::new(rel(3)));
        let wrapped = maybe_profile_batch(scan, None, "batch scan", SpanKind::Scan, None);
        assert_eq!(
            collect_batches(wrapped, CancelToken::none())
                .unwrap()
                .cardinality(),
            3
        );
    }
}
