//! Vectorized projection (bag semantics, like the tuple path's
//! [`crate::project::Project`]).
//!
//! Projecting a batch clones whole column vectors instead of building a
//! fresh `Vec<Value>` per row — the column-major payoff for the most
//! common plan shape, `project` over `filter` over `scan`.

use reldiv_rel::{Batch, Schema};

use super::{BatchOperator, BoxedBatchOp};
use crate::{ExecError, Result};

/// Projects batches onto a list of column indices (with reordering).
pub struct BatchProject {
    input: BoxedBatchOp,
    columns: Vec<usize>,
    schema: Schema,
}

impl BatchProject {
    /// Creates a projection of `input` onto `columns`.
    pub fn new(input: BoxedBatchOp, columns: Vec<usize>) -> Result<Self> {
        let schema = input
            .schema()
            .project(&columns)
            .map_err(|e| ExecError::Plan(format!("projection: {e}")))?;
        Ok(BatchProject {
            input,
            columns,
            schema,
        })
    }
}

impl BatchOperator for BatchProject {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.input.open()
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        match self.input.next_batch()? {
            Some(batch) => Ok(Some(batch.project(&self.columns).map_err(ExecError::from)?)),
            None => Ok(None),
        }
    }

    fn close(&mut self) -> Result<()> {
        self.input.close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::collect_batches;
    use crate::batch::scan::BatchMemScan;
    use crate::CancelToken;
    use reldiv_rel::schema::Field;
    use reldiv_rel::tuple::ints;
    use reldiv_rel::Relation;

    fn rel() -> Relation {
        let schema = Schema::new(vec![
            Field::int("sid"),
            Field::int("cno"),
            Field::int("grade"),
        ]);
        Relation::from_tuples(
            schema,
            vec![ints(&[1, 10, 4]), ints(&[2, 10, 3]), ints(&[1, 20, 4])],
        )
        .unwrap()
    }

    #[test]
    fn project_selects_and_reorders_columns() {
        let p = BatchProject::new(Box::new(BatchMemScan::new(rel())), vec![1, 0]).unwrap();
        let out = collect_batches(Box::new(p), CancelToken::none()).unwrap();
        assert_eq!(out.schema().fields()[0].name, "cno");
        assert_eq!(out.tuples()[0], ints(&[10, 1]));
        assert_eq!(out.cardinality(), 3, "bag semantics: duplicates kept");
    }

    #[test]
    fn invalid_column_is_a_plan_error() {
        assert!(matches!(
            BatchProject::new(Box::new(BatchMemScan::new(rel())), vec![7]),
            Err(ExecError::Plan(_))
        ));
    }
}
