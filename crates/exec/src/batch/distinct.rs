//! Vectorized hash-based duplicate elimination.
//!
//! The batch counterpart of [`crate::agg::HashDistinct`]: same
//! bucket-chained table, same memory accounting (one record width per
//! kept row on top of the chain elements), same exhaustion signal, and —
//! because the hash kernel is bit-identical to `Tuple::hash_on` — the
//! same insertion order, so the output order matches the tuple path
//! exactly.

use reldiv_rel::{Batch, Schema, Tuple};
use reldiv_storage::MemoryPool;

use super::{BatchOperator, BoxedBatchOp, DEFAULT_BATCH_SIZE};
use crate::hash_table::ChainedTable;
use crate::op::OpState;
use crate::Result;

/// Hash-based duplicate elimination over all columns, batch-at-a-time.
pub struct BatchDistinct {
    input: BoxedBatchOp,
    pool: MemoryPool,
    state: OpState,
    drain: Option<std::vec::IntoIter<Tuple>>,
}

impl BatchDistinct {
    /// Creates a distinct over all columns of `input`.
    pub fn new(input: BoxedBatchOp, pool: MemoryPool) -> BatchDistinct {
        BatchDistinct {
            input,
            pool,
            state: OpState::Created,
            drain: None,
        }
    }
}

impl BatchOperator for BatchDistinct {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn open(&mut self) -> Result<()> {
        self.input.open()?;
        let all: Vec<usize> = (0..self.input.schema().arity()).collect();
        let width = self.input.schema().record_width();
        let mut table: ChainedTable<Tuple> = ChainedTable::new(&self.pool, 16)?;
        let mut payload = self.pool.reserve(0)?;
        while let Some(batch) = self.input.next_batch()? {
            let hashes = batch.hash_rows(&all);
            for (row, &h) in hashes.iter().enumerate() {
                if table
                    .find(h, |cand| batch.row_eq_tuple(&all, row, cand, &all))
                    .is_none()
                {
                    payload.grow(width)?;
                    table.insert(h, batch.tuple(row))?;
                }
            }
        }
        self.input.close()?;
        let out: Vec<Tuple> = table.into_items().collect();
        self.drain = Some(out.into_iter());
        self.state = OpState::Open;
        Ok(())
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        self.state.require_open()?;
        let drain = self.drain.as_mut().expect("open sets drain");
        let mut batch = Batch::with_capacity(self.input.schema().clone(), DEFAULT_BATCH_SIZE);
        while batch.len() < DEFAULT_BATCH_SIZE {
            match drain.next() {
                Some(t) => batch.push_tuple(&t),
                None => break,
            }
        }
        if batch.is_empty() {
            Ok(None)
        } else {
            Ok(Some(batch))
        }
    }

    fn close(&mut self) -> Result<()> {
        self.drain = None;
        self.state = OpState::Closed;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::HashDistinct;
    use crate::batch::collect_batches;
    use crate::batch::scan::BatchMemScan;
    use crate::op::collect;
    use crate::scan::MemScan;
    use crate::CancelToken;
    use reldiv_rel::schema::Field;
    use reldiv_rel::tuple::ints;
    use reldiv_rel::Relation;

    fn dup_rel() -> Relation {
        let schema = Schema::new(vec![Field::int("a"), Field::int("b")]);
        Relation::from_tuples(
            schema,
            (0..5000).map(|i| ints(&[i % 40, (i % 40) * 2])).collect(),
        )
        .unwrap()
    }

    #[test]
    fn distinct_matches_tuple_path_byte_for_byte() {
        let tuple_out = collect(Box::new(HashDistinct::new(
            Box::new(MemScan::new(dup_rel())),
            MemoryPool::unbounded(),
        )))
        .unwrap();
        let batch_out = collect_batches(
            Box::new(BatchDistinct::new(
                Box::new(BatchMemScan::new(dup_rel()).with_batch_size(64)),
                MemoryPool::unbounded(),
            )),
            CancelToken::none(),
        )
        .unwrap();
        // Identical hash kernel + identical table => identical row order.
        assert_eq!(tuple_out.tuples(), batch_out.tuples());
        assert_eq!(batch_out.cardinality(), 40);
    }

    #[test]
    fn memory_exhaustion_surfaces_like_the_tuple_path() {
        let schema = Schema::new(vec![Field::int("a")]);
        let rel = Relation::from_tuples(schema, (0..10_000).map(|i| ints(&[i])).collect()).unwrap();
        let mut d = BatchDistinct::new(Box::new(BatchMemScan::new(rel)), MemoryPool::new(2048));
        assert!(d.open().unwrap_err().is_memory_exhausted());
    }
}
