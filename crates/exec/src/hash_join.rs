//! Hash join and hash semi-join with bucket chaining.
//!
//! The build side (inner) is loaded into a bucket-chained hash table drawn
//! from the main-memory pool; the probe side (outer) streams through. The
//! second example query of the paper uses exactly this operator as the
//! semi-join before hash-based aggregation: "The hash table in the
//! semi-join is built by hashing on course-no's."
//!
//! If the build side exceeds the memory pool the operator reports
//! `MemoryExhausted`; the division algorithms translate that into their
//! partitioned overflow strategies.

use reldiv_rel::{Schema, Tuple};

use crate::cancel::CancelToken;
use crate::hash_table::ChainedTable;
use crate::merge_join::JoinMode;
use crate::op::{BoxedOp, OpState, Operator};
use crate::{ExecError, Result};

/// Hash (semi-)join: builds on the inner input, probes with the outer.
pub struct HashJoin {
    outer: BoxedOp,
    inner: BoxedOp,
    outer_keys: Vec<usize>,
    inner_keys: Vec<usize>,
    mode: JoinMode,
    schema: Schema,
    state: OpState,
    table: Option<ChainedTable<Tuple>>,
    /// Matches pending output for the current probe tuple (Inner mode).
    pending: Vec<Tuple>,
    cancel: CancelToken,
    budget: u32,
}

impl HashJoin {
    /// Creates a hash join. `inner` is the build side and should be the
    /// smaller input (the divisor, in division plans).
    pub fn new(
        outer: BoxedOp,
        inner: BoxedOp,
        outer_keys: Vec<usize>,
        inner_keys: Vec<usize>,
        mode: JoinMode,
    ) -> Result<Self> {
        if outer_keys.len() != inner_keys.len() {
            return Err(ExecError::Plan(
                "hash join: key lists differ in length".into(),
            ));
        }
        if outer_keys.iter().any(|&k| k >= outer.schema().arity())
            || inner_keys.iter().any(|&k| k >= inner.schema().arity())
        {
            return Err(ExecError::Plan("hash join: key out of range".into()));
        }
        let schema = match mode {
            JoinMode::Inner => {
                let mut fields = outer.schema().fields().to_vec();
                fields.extend(inner.schema().fields().iter().cloned());
                Schema::new(fields)
            }
            JoinMode::LeftSemi => outer.schema().clone(),
        };
        Ok(HashJoin {
            outer,
            inner,
            outer_keys,
            inner_keys,
            mode,
            schema,
            state: OpState::Created,
            table: None,
            pending: Vec::new(),
            cancel: CancelToken::none(),
            budget: 0,
        })
    }

    /// Polls `cancel` every checkpoint stride during the build loop and
    /// across unmatched probe tuples — without it a long build side or a
    /// selective probe drains arbitrarily long between the caller's polls.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }
}

impl HashJoin {
    /// The memory pool backing the build table comes from thread state set
    /// by the plan builder; operators receive it explicitly instead.
    fn build(&mut self, pool: &reldiv_storage::MemoryPool) -> Result<()> {
        self.inner.open()?;
        let mut table = ChainedTable::new(pool, 16)?;
        while let Some(t) = self.inner.next()? {
            self.cancel.checkpoint(&mut self.budget)?;
            let h = t.hash_on(&self.inner_keys);
            table.insert(h, t)?;
        }
        self.inner.close()?;
        self.table = Some(table);
        Ok(())
    }

    /// Sets the memory pool before `open`. Required.
    pub fn with_pool(self, pool: reldiv_storage::MemoryPool) -> PooledHashJoin {
        PooledHashJoin { join: self, pool }
    }
}

/// A [`HashJoin`] bound to the memory pool that funds its build table.
pub struct PooledHashJoin {
    join: HashJoin,
    pool: reldiv_storage::MemoryPool,
}

impl Operator for PooledHashJoin {
    fn schema(&self) -> &Schema {
        &self.join.schema
    }

    fn open(&mut self) -> Result<()> {
        self.join.build(&self.pool)?;
        self.join.outer.open()?;
        self.join.state = OpState::Open;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        self.join.state.require_open()?;
        let table = self.join.table.as_ref().expect("open builds table");
        loop {
            if let Some(inner) = self.join.pending.pop() {
                return Ok(Some(inner));
            }
            let Some(outer) = self.join.outer.next()? else {
                return Ok(None);
            };
            self.join.cancel.checkpoint(&mut self.join.budget)?;
            let h = outer.hash_on(&self.join.outer_keys);
            match self.join.mode {
                JoinMode::LeftSemi => {
                    let hit = table
                        .find(h, |cand| {
                            outer.eq_on(&self.join.outer_keys, cand, &self.join.inner_keys)
                        })
                        .is_some();
                    if hit {
                        return Ok(Some(outer));
                    }
                }
                JoinMode::Inner => {
                    // Collect every matching build tuple (walking the whole
                    // chain; comparisons counted inside eq_on).
                    let mut matches = Vec::new();
                    table.find(h, |cand| {
                        if outer.eq_on(&self.join.outer_keys, cand, &self.join.inner_keys) {
                            matches.push(cand.clone());
                        }
                        false // keep walking the chain
                    });
                    for inner in matches.into_iter().rev() {
                        let mut vals = outer.clone().into_values();
                        vals.extend(inner.into_values());
                        self.join.pending.push(Tuple::new(vals));
                    }
                }
            }
        }
    }

    fn close(&mut self) -> Result<()> {
        self.join.outer.close()?;
        self.join.table = None;
        self.join.state = OpState::Closed;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::collect;
    use crate::scan::MemScan;
    use reldiv_rel::schema::Field;
    use reldiv_rel::tuple::ints;
    use reldiv_rel::Relation;
    use reldiv_storage::MemoryPool;

    fn rel(names: &[&str], rows: &[&[i64]]) -> Relation {
        let schema = Schema::new(names.iter().map(|n| Field::int(*n)).collect());
        Relation::from_tuples(schema, rows.iter().map(|r| ints(r)).collect()).unwrap()
    }

    fn join(
        outer: Relation,
        inner: Relation,
        ok: Vec<usize>,
        ik: Vec<usize>,
        mode: JoinMode,
    ) -> Relation {
        let j = HashJoin::new(
            Box::new(MemScan::new(outer)),
            Box::new(MemScan::new(inner)),
            ok,
            ik,
            mode,
        )
        .unwrap()
        .with_pool(MemoryPool::unbounded());
        collect(Box::new(j)).unwrap()
    }

    #[test]
    fn semi_join_restricts_dividend_to_divisor_values() {
        let t = rel(&["sid", "cno"], &[&[1, 10], &[2, 10], &[1, 20], &[3, 30]]);
        let c = rel(&["cno"], &[&[10], &[20]]);
        let out = join(t, c, vec![1], vec![0], JoinMode::LeftSemi);
        assert_eq!(out.cardinality(), 3);
        assert!(out
            .tuples()
            .iter()
            .all(|t| t.value(1).as_int().unwrap() != 30));
    }

    #[test]
    fn inner_join_pairs_all_matches() {
        let l = rel(&["k", "x"], &[&[1, 100], &[1, 101], &[2, 200]]);
        let r = rel(&["k", "y"], &[&[1, 7], &[1, 8]]);
        let out = join(l, r, vec![0], vec![0], JoinMode::Inner);
        assert_eq!(out.cardinality(), 4);
        assert_eq!(out.schema().arity(), 4);
    }

    #[test]
    fn unmatched_probe_tuples_are_dropped() {
        let l = rel(&["k"], &[&[1], &[2], &[3]]);
        let r = rel(&["k"], &[&[2]]);
        let out = join(l, r, vec![0], vec![0], JoinMode::LeftSemi);
        assert_eq!(out.cardinality(), 1);
        assert_eq!(out.tuples()[0], ints(&[2]));
    }

    #[test]
    fn empty_build_side_matches_nothing() {
        let l = rel(&["k"], &[&[1]]);
        let e = rel(&["k"], &[]);
        assert!(join(l, e, vec![0], vec![0], JoinMode::LeftSemi).is_empty());
    }

    #[test]
    fn build_side_memory_exhaustion_surfaces() {
        let rows: Vec<Vec<i64>> = (0..10_000i64).map(|i| vec![i]).collect();
        let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        let big = rel(&["k"], &refs);
        let small_pool = MemoryPool::new(1024);
        let mut j = HashJoin::new(
            Box::new(MemScan::new(rel(&["k"], &[&[1]]))),
            Box::new(MemScan::new(big)),
            vec![0],
            vec![0],
            JoinMode::LeftSemi,
        )
        .unwrap()
        .with_pool(small_pool);
        let err = j.open().unwrap_err();
        assert!(err.is_memory_exhausted());
    }

    #[test]
    fn mismatched_keys_are_a_plan_error() {
        let l = MemScan::new(rel(&["k"], &[&[1]]));
        let r = MemScan::new(rel(&["k"], &[&[1]]));
        assert!(matches!(
            HashJoin::new(
                Box::new(l),
                Box::new(r),
                vec![0],
                vec![0, 0],
                JoinMode::Inner
            ),
            Err(ExecError::Plan(_))
        ));
    }

    #[test]
    fn hash_join_counts_hash_operations() {
        reldiv_rel::counters::reset();
        let l = rel(&["k"], &[&[1], &[2]]);
        let r = rel(&["k"], &[&[1], &[3], &[4]]);
        let _ = join(l, r, vec![0], vec![0], JoinMode::LeftSemi);
        let snap = reldiv_rel::counters::snapshot();
        // 3 build hashes + 2 probe hashes.
        assert_eq!(snap.hashes, 5);
    }
}
