//! External merge sort with early aggregation and duplicate elimination.
//!
//! Follows the paper's implementation notes closely:
//!
//! * "Opening a sort operator prepares sorted runs and merges them until
//!   only one merge step is left. The final merge is performed on demand by
//!   the next function."
//! * "Our implementation of sort performs aggregation and duplicate
//!   elimination as early as possible, i.e., no intermediate run contains
//!   duplicate sort keys."
//! * Runs are spooled to the run disk, whose transfer size is 1 KB "to
//!   allow high fan-in".
//!
//! If the entire input fits into the sort buffer, no runs are spooled and
//! the sort costs no I/O — the buffer-pool effect the paper cites when its
//! experimental numbers beat the analytical model.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::rc::Rc;

use reldiv_rel::counters;
use reldiv_rel::{RecordCodec, Schema, Tuple, Value};
use reldiv_storage::file::ScanCursor;
use reldiv_storage::{FileId, StorageManager, StorageRef};

use crate::cancel::CancelToken;
use crate::op::{BoxedOp, OpState, Operator};
use crate::{ExecError, Result};

/// What the sort does with tuples whose sort keys are equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortMode {
    /// Keep all tuples (stable).
    Plain,
    /// Keep the first tuple of each equal-key group — duplicate
    /// elimination during sorting, as the naive division and sort-based
    /// aggregation plans require.
    Distinct,
    /// Tuples are `(keys..., count)`; equal-key tuples are merged by
    /// summing the trailing count column. This realizes sort-based
    /// aggregation *inside* the sort, the paper's "obvious optimization".
    CountAggregate,
}

/// Sort resource configuration.
#[derive(Debug, Clone, Copy)]
pub struct SortConfig {
    /// Bytes of main memory for run generation (the paper: 100 KB of the
    /// 256 KB buffer "can be used as sort buffer").
    pub memory_bytes: usize,
    /// Maximum number of runs merged in one pass.
    pub fan_in: usize,
}

impl Default for SortConfig {
    fn default() -> Self {
        SortConfig {
            memory_bytes: 100 * 1024,
            fan_in: 100,
        }
    }
}

/// The external merge sort operator.
pub struct Sort {
    input: BoxedOp,
    keys: Rc<Vec<usize>>,
    mode: SortMode,
    config: SortConfig,
    storage: StorageRef,
    codec: RecordCodec,
    state: OpState,
    source: Source,
    /// Runs awaiting deletion at close.
    live_runs: Vec<FileId>,
    cancel: CancelToken,
}

enum Source {
    NotOpen,
    Memory(std::vec::IntoIter<Tuple>),
    Merge(MergeState),
}

impl Sort {
    /// Creates a sort of `input` on `keys` (major to minor).
    pub fn new(
        storage: StorageRef,
        input: BoxedOp,
        keys: Vec<usize>,
        mode: SortMode,
        config: SortConfig,
    ) -> Result<Self> {
        let schema = input.schema().clone();
        for &k in &keys {
            if k >= schema.arity() {
                return Err(ExecError::Plan(format!(
                    "sort key {k} out of range for arity {}",
                    schema.arity()
                )));
            }
        }
        if mode == SortMode::CountAggregate {
            let count_col = schema.arity() - 1;
            if keys.contains(&count_col) {
                return Err(ExecError::Plan(
                    "CountAggregate: the trailing count column cannot be a sort key".into(),
                ));
            }
        }
        Ok(Sort {
            codec: RecordCodec::new(schema),
            input,
            keys: Rc::new(keys),
            mode,
            config,
            storage,
            state: OpState::Created,
            source: Source::NotOpen,
            live_runs: Vec::new(),
            cancel: CancelToken::none(),
        })
    }

    /// Polls `cancel` every checkpoint stride during run generation and
    /// intermediate merge passes — both happen inside `open`, before the
    /// caller sees a single tuple.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.set_cancel(cancel);
        self
    }

    /// In-place variant of [`Sort::with_cancel`] for wrappers that own a
    /// `Sort` directly (e.g. `SortCountAggregate`).
    pub(crate) fn set_cancel(&mut self, cancel: CancelToken) {
        self.cancel = cancel;
    }

    /// The sort key columns (major to minor).
    pub fn keys(&self) -> &[usize] {
        &self.keys
    }

    /// Estimated in-memory bytes per buffered tuple.
    fn tuple_bytes(&self) -> usize {
        self.codec.record_width() + 24
    }

    /// Applies the mode's collapse to a sorted slice, in place.
    fn collapse(&self, tuples: &mut Vec<Tuple>) {
        match self.mode {
            SortMode::Plain => {}
            SortMode::Distinct => {
                tuples.dedup_by(|b, a| a.eq_on(&self.keys, b, &self.keys));
            }
            SortMode::CountAggregate => {
                let count_col = self.codec.schema().arity() - 1;
                let mut out: Vec<Tuple> = Vec::with_capacity(tuples.len());
                for t in tuples.drain(..) {
                    match out.last_mut() {
                        Some(last) if last.eq_on(&self.keys, &t, &self.keys) => {
                            let sum = last.value(count_col).as_int().unwrap_or(0)
                                + t.value(count_col).as_int().unwrap_or(0);
                            let mut vals = last.clone().into_values();
                            vals[count_col] = Value::Int(sum);
                            *last = Tuple::new(vals);
                        }
                        _ => out.push(t),
                    }
                }
                *tuples = out;
            }
        }
    }

    /// The disk run files go to: the 1 KB run disk for high fan-in, unless
    /// the records are too wide for its pages, in which case runs use the
    /// data disk's larger pages.
    fn run_disk(&self, sm: &reldiv_storage::StorageManager) -> reldiv_storage::DiskId {
        let run_capacity =
            reldiv_storage::page::SlottedPage::max_record(sm.page_size(StorageManager::RUN_DISK));
        if self.codec.record_width() <= run_capacity {
            StorageManager::RUN_DISK
        } else {
            StorageManager::DATA_DISK
        }
    }

    /// Spools a sorted, collapsed buffer to a run file on the run disk.
    fn write_run(&mut self, tuples: &[Tuple]) -> Result<FileId> {
        let mut sm = self.storage.borrow_mut();
        let disk = self.run_disk(&sm);
        let file = sm.create_file(disk);
        let mut buf = Vec::with_capacity(self.codec.record_width());
        for t in tuples {
            buf.clear();
            self.codec.encode_into(t, &mut buf)?;
            sm.append(file, &buf)?;
        }
        // One page-sized memory move per run page (assembling transfer
        // units), as priced by the analytical model's merge cost.
        counters::count_moves(sm.page_count(file)?);
        Ok(file)
    }

    fn delete_runs(&mut self, runs: &[FileId]) -> Result<()> {
        let mut sm = self.storage.borrow_mut();
        for &r in runs {
            sm.delete_file(r)?;
        }
        self.live_runs.retain(|r| !runs.contains(r));
        Ok(())
    }
}

impl Operator for Sort {
    fn schema(&self) -> &Schema {
        self.codec.schema()
    }

    fn open(&mut self) -> Result<()> {
        self.input.open()?;
        let capacity = (self.config.memory_bytes / self.tuple_bytes()).max(16);
        let mut buffer: Vec<Tuple> = Vec::with_capacity(capacity.min(1 << 20));
        let mut runs: Vec<FileId> = Vec::new();

        // Phase 1: run generation with quicksort (std's sort counts its
        // comparisons through Tuple::cmp_keys).
        let mut budget = 0u32;
        while let Some(t) = self.input.next()? {
            self.cancel.checkpoint(&mut budget)?;
            buffer.push(t);
            if buffer.len() >= capacity {
                let keys = self.keys.clone();
                buffer.sort_by(|a, b| a.cmp_keys(b, &keys));
                self.collapse(&mut buffer);
                let run = self.write_run(&buffer)?;
                runs.push(run);
                self.live_runs.push(run);
                buffer.clear();
            }
        }
        self.input.close()?;

        if runs.is_empty() {
            // Entire input fits in the sort buffer: stream from memory.
            let keys = self.keys.clone();
            buffer.sort_by(|a, b| a.cmp_keys(b, &keys));
            self.collapse(&mut buffer);
            self.source = Source::Memory(buffer.into_iter());
            self.state = OpState::Open;
            return Ok(());
        }
        if !buffer.is_empty() {
            let keys = self.keys.clone();
            buffer.sort_by(|a, b| a.cmp_keys(b, &keys));
            self.collapse(&mut buffer);
            let run = self.write_run(&buffer)?;
            runs.push(run);
            self.live_runs.push(run);
            buffer.clear();
        }

        // Phase 2: merge passes until one final merge remains. Each pass
        // streams its output run tuple by tuple, never materializing it.
        while runs.len() > self.config.fan_in {
            let batch: Vec<FileId> = runs.drain(..self.config.fan_in).collect();
            let mut merge = MergeState::new(
                self.storage.clone(),
                &batch,
                self.codec.clone(),
                self.keys.clone(),
                self.mode,
            )?;
            let run = {
                let mut sm = self.storage.borrow_mut();
                let disk = self.run_disk(&sm);
                sm.create_file(disk)
            };
            let mut buf = Vec::with_capacity(self.codec.record_width());
            while let Some(t) = merge.next(&self.storage)? {
                self.cancel.checkpoint(&mut budget)?;
                buf.clear();
                self.codec.encode_into(&t, &mut buf)?;
                self.storage.borrow_mut().append(run, &buf)?;
            }
            counters::count_moves(self.storage.borrow().page_count(run)?);
            runs.push(run);
            self.live_runs.push(run);
            self.delete_runs(&batch)?;
        }

        // Phase 3: final merge on demand by `next`.
        let merge = MergeState::new(
            self.storage.clone(),
            &runs,
            self.codec.clone(),
            self.keys.clone(),
            self.mode,
        )?;
        self.source = Source::Merge(merge);
        self.state = OpState::Open;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        self.state.require_open()?;
        match &mut self.source {
            Source::NotOpen => Err(ExecError::Protocol("sort source missing")),
            Source::Memory(iter) => Ok(iter.next()),
            Source::Merge(merge) => merge.next(&self.storage),
        }
    }

    fn close(&mut self) -> Result<()> {
        let runs = self.live_runs.clone();
        self.delete_runs(&runs)?;
        self.source = Source::NotOpen;
        self.state = OpState::Closed;
        Ok(())
    }
}

/// One run being merged.
struct RunCursor {
    cursor: ScanCursor,
}

/// Heap entry ordering tuples ascending by sort key (ties by run index for
/// stability), inverted for Rust's max-heap.
struct HeapEntry {
    tuple: Tuple,
    run: usize,
    keys: Rc<Vec<usize>>,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we need the minimum first.
        self.tuple
            .cmp_keys(&other.tuple, &self.keys)
            .then(self.run.cmp(&other.run))
            .reverse()
    }
}

/// A multiway merge over sorted runs with mode-aware collapse.
struct MergeState {
    runs: Vec<RunCursor>,
    heap: BinaryHeap<HeapEntry>,
    keys: Rc<Vec<usize>>,
    mode: SortMode,
    codec: RecordCodec,
    /// Pending group for CountAggregate; last emitted key for Distinct.
    pending: Option<Tuple>,
}

impl MergeState {
    fn new(
        storage: StorageRef,
        runs: &[FileId],
        codec: RecordCodec,
        keys: Rc<Vec<usize>>,
        mode: SortMode,
    ) -> Result<Self> {
        let mut state = MergeState {
            runs: runs
                .iter()
                .map(|&f| RunCursor {
                    cursor: ScanCursor::new(f),
                })
                .collect(),
            heap: BinaryHeap::new(),
            keys,
            mode,
            codec,
            pending: None,
        };
        for i in 0..state.runs.len() {
            state.advance(&storage, i)?;
        }
        Ok(state)
    }

    /// Pulls the next tuple from run `i` into the heap.
    fn advance(&mut self, storage: &StorageRef, i: usize) -> Result<()> {
        let mut sm = storage.borrow_mut();
        if let Some((_, record)) = self.runs[i].cursor.next(&mut sm)? {
            let tuple = self.codec.decode(&record)?;
            self.heap.push(HeapEntry {
                tuple,
                run: i,
                keys: self.keys.clone(),
            });
        }
        Ok(())
    }

    fn pop(&mut self, storage: &StorageRef) -> Result<Option<Tuple>> {
        match self.heap.pop() {
            Some(HeapEntry { tuple, run, .. }) => {
                self.advance(storage, run)?;
                Ok(Some(tuple))
            }
            None => Ok(None),
        }
    }

    fn next(&mut self, storage: &StorageRef) -> Result<Option<Tuple>> {
        match self.mode {
            SortMode::Plain => self.pop(storage),
            SortMode::Distinct => loop {
                let Some(t) = self.pop(storage)? else {
                    return Ok(None);
                };
                let dup = self
                    .pending
                    .as_ref()
                    .is_some_and(|p| p.eq_on(&self.keys, &t, &self.keys));
                if !dup {
                    self.pending = Some(t.clone());
                    return Ok(Some(t));
                }
            },
            SortMode::CountAggregate => {
                let count_col = self.codec.schema().arity() - 1;
                loop {
                    let Some(t) = self.pop(storage)? else {
                        return Ok(self.pending.take());
                    };
                    match self.pending.take() {
                        None => self.pending = Some(t),
                        Some(p) if p.eq_on(&self.keys, &t, &self.keys) => {
                            let sum = p.value(count_col).as_int().unwrap_or(0)
                                + t.value(count_col).as_int().unwrap_or(0);
                            let mut vals = p.into_values();
                            vals[count_col] = Value::Int(sum);
                            self.pending = Some(Tuple::new(vals));
                        }
                        Some(p) => {
                            self.pending = Some(t);
                            return Ok(Some(p));
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::collect;
    use crate::scan::MemScan;
    use reldiv_rel::schema::Field;
    use reldiv_rel::tuple::ints;
    use reldiv_rel::Relation;
    use reldiv_storage::manager::StorageConfig;

    fn storage() -> StorageRef {
        StorageManager::shared(StorageConfig::paper())
    }

    fn rel2(rows: &[[i64; 2]]) -> Relation {
        let schema = Schema::new(vec![Field::int("a"), Field::int("b")]);
        Relation::from_tuples(schema, rows.iter().map(|r| ints(r)).collect()).unwrap()
    }

    fn sort_of(rel: Relation, keys: Vec<usize>, mode: SortMode, config: SortConfig) -> Relation {
        let s = Sort::new(storage(), Box::new(MemScan::new(rel)), keys, mode, config).unwrap();
        collect(Box::new(s)).unwrap()
    }

    #[test]
    fn in_memory_sort_orders_major_minor() {
        let out = sort_of(
            rel2(&[[2, 1], [1, 2], [1, 1], [2, 0]]),
            vec![0, 1],
            SortMode::Plain,
            SortConfig::default(),
        );
        let got: Vec<String> = out.tuples().iter().map(|t| t.to_string()).collect();
        assert_eq!(got, vec!["(1, 1)", "(1, 2)", "(2, 0)", "(2, 1)"]);
    }

    #[test]
    fn in_memory_sort_costs_no_io() {
        let st = storage();
        let rel = rel2(&(0..100).map(|i| [100 - i, i]).collect::<Vec<_>>());
        let s = Sort::new(
            st.clone(),
            Box::new(MemScan::new(rel)),
            vec![0],
            SortMode::Plain,
            SortConfig::default(),
        )
        .unwrap();
        let out = collect(Box::new(s)).unwrap();
        assert_eq!(out.cardinality(), 100);
        assert_eq!(st.borrow().io_stats().transfers(), 0);
    }

    #[test]
    fn external_sort_with_tiny_memory_is_correct() {
        // Force many runs: memory for ~16 tuples, 10,000 input tuples.
        let mut rows: Vec<[i64; 2]> = (0..10_000).map(|i| [(i * 7919) % 10_000, i]).collect();
        let config = SortConfig {
            memory_bytes: 16 * 40,
            fan_in: 8,
        };
        let out = sort_of(rel2(&rows), vec![0, 1], SortMode::Plain, config);
        rows.sort();
        let expected: Vec<Tuple> = rows.iter().map(|r| ints(r)).collect();
        assert_eq!(out.tuples(), expected.as_slice());
    }

    #[test]
    fn external_sort_merges_multiple_passes() {
        // fan_in 2 with many runs forces several merge passes.
        let rows: Vec<[i64; 2]> = (0..2000).map(|i| [1999 - i, i]).collect();
        let config = SortConfig {
            memory_bytes: 16 * 40,
            fan_in: 2,
        };
        let out = sort_of(rel2(&rows), vec![0], SortMode::Plain, config);
        assert_eq!(out.cardinality(), 2000);
        for (i, t) in out.tuples().iter().enumerate() {
            assert_eq!(t.value(0).as_int().unwrap(), i as i64);
        }
    }

    #[test]
    fn distinct_mode_eliminates_duplicates_across_runs() {
        let rows: Vec<[i64; 2]> = (0..3000).map(|i| [i % 10, 0]).collect();
        let config = SortConfig {
            memory_bytes: 16 * 40,
            fan_in: 4,
        };
        let out = sort_of(rel2(&rows), vec![0, 1], SortMode::Distinct, config);
        assert_eq!(out.cardinality(), 10);
    }

    #[test]
    fn distinct_keeps_first_tuple_per_key() {
        // Key column 0; payload column 1 differs. First-in wins (stable).
        let out = sort_of(
            rel2(&[[5, 100], [5, 200], [3, 7]]),
            vec![0],
            SortMode::Distinct,
            SortConfig::default(),
        );
        assert_eq!(out.tuples(), &[ints(&[3, 7]), ints(&[5, 100])]);
    }

    #[test]
    fn count_aggregate_sums_trailing_counts() {
        // (group, count=1) tuples; groups of different sizes.
        let mut rows = Vec::new();
        for g in 0..5i64 {
            for _ in 0..=g {
                rows.push([g, 1]);
            }
        }
        let out = sort_of(
            rel2(&rows),
            vec![0],
            SortMode::CountAggregate,
            SortConfig::default(),
        );
        assert_eq!(out.cardinality(), 5);
        for (g, t) in out.tuples().iter().enumerate() {
            assert_eq!(t.value(1).as_int().unwrap(), g as i64 + 1, "group {g}");
        }
    }

    #[test]
    fn count_aggregate_spilling_runs_still_sums() {
        let rows: Vec<[i64; 2]> = (0..5000).map(|i| [i % 25, 1]).collect();
        let config = SortConfig {
            memory_bytes: 16 * 40,
            fan_in: 4,
        };
        let out = sort_of(rel2(&rows), vec![0], SortMode::CountAggregate, config);
        assert_eq!(out.cardinality(), 25);
        assert!(out
            .tuples()
            .iter()
            .all(|t| t.value(1).as_int().unwrap() == 200));
    }

    #[test]
    fn external_sort_performs_io_and_releases_runs() {
        let st = storage();
        let rows: Vec<[i64; 2]> = (0..20_000).map(|i| [(i * 31) % 20_000, i]).collect();
        let schema = Schema::new(vec![Field::int("a"), Field::int("b")]);
        let rel = Relation::from_tuples(schema, rows.iter().map(|r| ints(r)).collect()).unwrap();
        let mut s = Sort::new(
            st.clone(),
            Box::new(MemScan::new(rel)),
            vec![0],
            SortMode::Plain,
            SortConfig {
                memory_bytes: 8 * 1024,
                fan_in: 4,
            },
        )
        .unwrap();
        s.open().unwrap();
        let mut n = 0;
        while s.next().unwrap().is_some() {
            n += 1;
        }
        s.close().unwrap();
        assert_eq!(n, 20_000);
        // 20k tuples * 16 B = 320 KB exceed the 256 KB pool: real I/O.
        assert!(st.borrow().io_stats().transfers() > 0);
        // Close must have deleted every run file.
        let sm = st.borrow();
        assert_eq!(sm.disk_stats(StorageManager::RUN_DISK).bytes % 1024, 0);
    }

    #[test]
    fn sort_counts_comparisons() {
        reldiv_rel::counters::reset();
        let _ = sort_of(
            rel2(&(0..64).map(|i| [63 - i, 0]).collect::<Vec<_>>()),
            vec![0],
            SortMode::Plain,
            SortConfig::default(),
        );
        let comps = reldiv_rel::counters::snapshot().comparisons;
        // ~ n log n comparisons; must be at least n-1 and far less than n^2.
        assert!(comps >= 63, "comps = {comps}");
        assert!(comps <= 64 * 64, "comps = {comps}");
    }

    #[test]
    fn invalid_sort_key_is_a_plan_error() {
        let s = Sort::new(
            storage(),
            Box::new(MemScan::new(rel2(&[[1, 2]]))),
            vec![5],
            SortMode::Plain,
            SortConfig::default(),
        );
        assert!(matches!(s, Err(ExecError::Plan(_))));
    }

    #[test]
    fn count_aggregate_rejects_count_column_as_key() {
        let s = Sort::new(
            storage(),
            Box::new(MemScan::new(rel2(&[[1, 2]]))),
            vec![0, 1],
            SortMode::CountAggregate,
            SortConfig::default(),
        );
        assert!(matches!(s, Err(ExecError::Plan(_))));
    }

    #[test]
    fn empty_input_sorts_to_empty() {
        let out = sort_of(rel2(&[]), vec![0], SortMode::Plain, SortConfig::default());
        assert!(out.is_empty());
    }
}
