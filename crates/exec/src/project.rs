//! Projection (bag semantics — no duplicate elimination).
//!
//! Duplicate elimination is deliberately a separate concern: the paper
//! stresses that it "can be quite expensive, making an algorithm very
//! desirable that is insensitive to duplicates in its inputs". When a
//! duplicate-free projection is required, compose [`Project`] with a
//! distinct sort ([`crate::sort::Sort`] in `Distinct` mode) or rely on
//! hash-division's built-in insensitivity.

use reldiv_rel::{Schema, Tuple};

use crate::op::{BoxedOp, Operator};
use crate::{ExecError, Result};

/// Projects tuples onto a list of column indices (with reordering).
pub struct Project {
    input: BoxedOp,
    columns: Vec<usize>,
    schema: Schema,
}

impl Project {
    /// Creates a projection of `input` onto `columns`.
    pub fn new(input: BoxedOp, columns: Vec<usize>) -> Result<Self> {
        let schema = input
            .schema()
            .project(&columns)
            .map_err(|e| ExecError::Plan(format!("projection: {e}")))?;
        Ok(Project {
            input,
            columns,
            schema,
        })
    }
}

impl Operator for Project {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.input.open()
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        Ok(self.input.next()?.map(|t| t.project(&self.columns)))
    }

    fn close(&mut self) -> Result<()> {
        self.input.close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::collect;
    use crate::scan::MemScan;
    use reldiv_rel::schema::Field;
    use reldiv_rel::tuple::ints;
    use reldiv_rel::Relation;

    fn rel() -> Relation {
        let schema = Schema::new(vec![
            Field::int("sid"),
            Field::int("cno"),
            Field::int("grade"),
        ]);
        Relation::from_tuples(
            schema,
            vec![ints(&[1, 10, 4]), ints(&[2, 10, 3]), ints(&[1, 20, 4])],
        )
        .unwrap()
    }

    #[test]
    fn project_selects_and_reorders_columns() {
        let p = Project::new(Box::new(MemScan::new(rel())), vec![1, 0]).unwrap();
        let out = collect(Box::new(p)).unwrap();
        assert_eq!(out.schema().fields()[0].name, "cno");
        assert_eq!(out.tuples()[0], ints(&[10, 1]));
    }

    #[test]
    fn projection_keeps_duplicates() {
        // Projecting transcripts onto course-no yields a bag with repeats.
        let p = Project::new(Box::new(MemScan::new(rel())), vec![1]).unwrap();
        let out = collect(Box::new(p)).unwrap();
        assert_eq!(out.cardinality(), 3);
    }

    #[test]
    fn invalid_column_is_a_plan_error() {
        assert!(matches!(
            Project::new(Box::new(MemScan::new(rel())), vec![7]),
            Err(ExecError::Plan(_))
        ));
    }
}
