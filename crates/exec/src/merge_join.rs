//! Merge join and merge semi-join over sorted inputs.
//!
//! "Merge join consists of a merging scan of both inputs, in which tuples
//! from the inner relation with equal key values are kept in a linked list
//! of tuples pinned in the buffer pool. For semi-joins in which the outer
//! relation produces the result, no linked lists are used." (Section 5.1.)
//!
//! The outer (left) input drives the join; the inner (right) input's
//! equal-key groups are buffered so that every outer tuple of a key meets
//! every inner tuple of that key.

use reldiv_rel::{Schema, Tuple};

use crate::op::{BoxedOp, OpState, Operator};
use crate::{ExecError, Result};

/// Join variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinMode {
    /// Emit `outer ++ inner` for every matching pair.
    Inner,
    /// Emit each outer tuple once if it has at least one match
    /// (semi-join) — what the aggregate division plans need to restrict
    /// the dividend to valid divisor values.
    LeftSemi,
}

/// Merge (semi-)join of two inputs sorted on their join keys.
pub struct MergeJoin {
    outer: BoxedOp,
    inner: BoxedOp,
    outer_keys: Vec<usize>,
    inner_keys: Vec<usize>,
    mode: JoinMode,
    schema: Schema,
    state: OpState,
    outer_current: Option<Tuple>,
    inner_lookahead: Option<Tuple>,
    /// Buffered inner group with keys equal to `group_key` (Inner mode).
    group: Vec<Tuple>,
    group_pos: usize,
}

impl MergeJoin {
    /// Creates a merge join. Both inputs must arrive sorted on their key
    /// lists (ascending); this is asserted during execution in debug
    /// builds.
    pub fn new(
        outer: BoxedOp,
        inner: BoxedOp,
        outer_keys: Vec<usize>,
        inner_keys: Vec<usize>,
        mode: JoinMode,
    ) -> Result<Self> {
        if outer_keys.len() != inner_keys.len() {
            return Err(ExecError::Plan(
                "merge join: key lists differ in length".into(),
            ));
        }
        if outer_keys.iter().any(|&k| k >= outer.schema().arity())
            || inner_keys.iter().any(|&k| k >= inner.schema().arity())
        {
            return Err(ExecError::Plan("merge join: key out of range".into()));
        }
        let schema = match mode {
            JoinMode::Inner => {
                let mut fields = outer.schema().fields().to_vec();
                fields.extend(inner.schema().fields().iter().cloned());
                Schema::new(fields)
            }
            JoinMode::LeftSemi => outer.schema().clone(),
        };
        Ok(MergeJoin {
            outer,
            inner,
            outer_keys,
            inner_keys,
            mode,
            schema,
            state: OpState::Created,
            outer_current: None,
            inner_lookahead: None,
            group: Vec::new(),
            group_pos: 0,
        })
    }

    fn advance_outer(&mut self) -> Result<()> {
        self.outer_current = self.outer.next()?;
        self.group_pos = 0;
        Ok(())
    }

    fn advance_inner(&mut self) -> Result<()> {
        self.inner_lookahead = self.inner.next()?;
        Ok(())
    }
}

impl Operator for MergeJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.outer.open()?;
        self.inner.open()?;
        self.outer_current = self.outer.next()?;
        self.inner_lookahead = self.inner.next()?;
        self.group.clear();
        self.group_pos = 0;
        self.state = OpState::Open;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        self.state.require_open()?;
        loop {
            let Some(outer) = self.outer_current.clone() else {
                return Ok(None);
            };

            // Serve remaining pairs from the buffered inner group.
            if self.group_pos < self.group.len() {
                let matches_group = self.group_pos > 0
                    || outer.cmp_on(&self.outer_keys, &self.group[0], &self.inner_keys)
                        == std::cmp::Ordering::Equal;
                if matches_group {
                    match self.mode {
                        JoinMode::Inner => {
                            let inner = &self.group[self.group_pos];
                            self.group_pos += 1;
                            let mut vals = outer.clone().into_values();
                            vals.extend(inner.clone().into_values());
                            if self.group_pos == self.group.len() {
                                // Exhausted the group for this outer tuple;
                                // the next outer may reuse the same group.
                                self.advance_outer()?;
                                self.group_pos = 0;
                                // Keep group: cleared when keys move past it.
                            }
                            return Ok(Some(Tuple::new(vals)));
                        }
                        JoinMode::LeftSemi => unreachable!("semi-join never buffers groups"),
                    }
                } else {
                    self.group.clear();
                    self.group_pos = 0;
                    continue;
                }
            } else if !self.group.is_empty() {
                // group_pos == len: check whether the (new) outer tuple
                // still matches the buffered group.
                if outer.cmp_on(&self.outer_keys, &self.group[0], &self.inner_keys)
                    == std::cmp::Ordering::Equal
                {
                    self.group_pos = 0;
                    continue;
                }
                self.group.clear();
                continue;
            }

            // No active group: advance the merging scan.
            let Some(inner) = self.inner_lookahead.clone() else {
                // Inner exhausted: remaining outer tuples have no match.
                return Ok(None);
            };
            match outer.cmp_on(&self.outer_keys, &inner, &self.inner_keys) {
                std::cmp::Ordering::Less => {
                    self.advance_outer()?;
                }
                std::cmp::Ordering::Greater => {
                    self.advance_inner()?;
                }
                std::cmp::Ordering::Equal => match self.mode {
                    JoinMode::LeftSemi => {
                        // Emit the outer tuple; do not consume the inner,
                        // which may match further outer tuples.
                        self.advance_outer()?;
                        return Ok(Some(outer));
                    }
                    JoinMode::Inner => {
                        // Buffer the inner group with this key ("a linked
                        // list of tuples pinned in the buffer pool").
                        self.group.clear();
                        self.group_pos = 0;
                        self.group.push(inner.clone());
                        self.advance_inner()?;
                        while let Some(peek) = self.inner_lookahead.clone() {
                            if peek.cmp_on(&self.inner_keys, &inner, &self.inner_keys)
                                == std::cmp::Ordering::Equal
                            {
                                self.group.push(peek);
                                self.advance_inner()?;
                            } else {
                                break;
                            }
                        }
                    }
                },
            }
        }
    }

    fn close(&mut self) -> Result<()> {
        self.outer.close()?;
        self.inner.close()?;
        self.group.clear();
        self.state = OpState::Closed;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::collect;
    use crate::scan::MemScan;
    use reldiv_rel::schema::Field;
    use reldiv_rel::tuple::ints;
    use reldiv_rel::Relation;

    fn rel(names: &[&str], rows: &[&[i64]]) -> Relation {
        let schema = Schema::new(names.iter().map(|n| Field::int(*n)).collect());
        Relation::from_tuples(schema, rows.iter().map(|r| ints(r)).collect()).unwrap()
    }

    fn join(
        outer: Relation,
        inner: Relation,
        ok: Vec<usize>,
        ik: Vec<usize>,
        mode: JoinMode,
    ) -> Relation {
        let j = MergeJoin::new(
            Box::new(MemScan::new(outer)),
            Box::new(MemScan::new(inner)),
            ok,
            ik,
            mode,
        )
        .unwrap();
        collect(Box::new(j)).unwrap()
    }

    #[test]
    fn inner_join_matches_pairs() {
        // Transcript (sid, cno) sorted by cno; Courses (cno) sorted.
        let t = rel(&["sid", "cno"], &[&[1, 10], &[2, 10], &[1, 20], &[3, 30]]);
        let c = rel(&["cno"], &[&[10], &[20], &[40]]);
        let mut tt = t.clone();
        tt.sort_by_keys(&[1, 0]);
        let out = join(tt, c, vec![1], vec![0], JoinMode::Inner);
        let got: Vec<String> = out.tuples().iter().map(|t| t.to_string()).collect();
        assert_eq!(got, vec!["(1, 10, 10)", "(2, 10, 10)", "(1, 20, 20)"]);
    }

    #[test]
    fn inner_join_produces_cross_product_per_key() {
        let l = rel(&["k", "x"], &[&[1, 100], &[1, 101]]);
        let r = rel(&["k", "y"], &[&[1, 7], &[1, 8], &[1, 9]]);
        let out = join(l, r, vec![0], vec![0], JoinMode::Inner);
        assert_eq!(out.cardinality(), 6);
    }

    #[test]
    fn semi_join_emits_each_outer_once() {
        let t = rel(&["sid", "cno"], &[&[1, 10], &[2, 10], &[1, 20], &[3, 30]]);
        let c = rel(&["cno"], &[&[10], &[20]]);
        let mut tt = t.clone();
        tt.sort_by_keys(&[1, 0]);
        let out = join(tt, c, vec![1], vec![0], JoinMode::LeftSemi);
        assert_eq!(out.cardinality(), 3, "the optics/30 tuple is dropped");
        assert!(out
            .tuples()
            .iter()
            .all(|t| t.value(1).as_int().unwrap() != 30));
        assert_eq!(out.schema().arity(), 2, "semi-join keeps the outer schema");
    }

    #[test]
    fn semi_join_keeps_outer_duplicates() {
        // Duplicates in the outer survive a semi-join (it is not distinct).
        let l = rel(&["k"], &[&[5], &[5], &[6]]);
        let r = rel(&["k"], &[&[5]]);
        let out = join(l, r, vec![0], vec![0], JoinMode::LeftSemi);
        assert_eq!(out.cardinality(), 2);
    }

    #[test]
    fn disjoint_inputs_join_to_empty() {
        let l = rel(&["k"], &[&[1], &[2]]);
        let r = rel(&["k"], &[&[3], &[4]]);
        assert!(join(l.clone(), r.clone(), vec![0], vec![0], JoinMode::Inner).is_empty());
        assert!(join(l, r, vec![0], vec![0], JoinMode::LeftSemi).is_empty());
    }

    #[test]
    fn empty_inputs_are_handled() {
        let l = rel(&["k"], &[&[1]]);
        let e = rel(&["k"], &[]);
        assert!(join(l.clone(), e.clone(), vec![0], vec![0], JoinMode::Inner).is_empty());
        assert!(join(e, l, vec![0], vec![0], JoinMode::Inner).is_empty());
    }

    #[test]
    fn mismatched_key_lists_are_a_plan_error() {
        let l = MemScan::new(rel(&["k"], &[&[1]]));
        let r = MemScan::new(rel(&["k"], &[&[1]]));
        assert!(matches!(
            MergeJoin::new(
                Box::new(l),
                Box::new(r),
                vec![0, 1],
                vec![0],
                JoinMode::Inner
            ),
            Err(ExecError::Plan(_))
        ));
    }

    #[test]
    fn multi_column_keys_join_correctly() {
        let l = rel(&["a", "b", "x"], &[&[1, 1, 10], &[1, 2, 20], &[2, 1, 30]]);
        let r = rel(&["a", "b"], &[&[1, 2], &[2, 1]]);
        let out = join(l, r, vec![0, 1], vec![0, 1], JoinMode::LeftSemi);
        let got: Vec<i64> = out
            .tuples()
            .iter()
            .map(|t| t.value(2).as_int().unwrap())
            .collect();
        assert_eq!(got, vec![20, 30]);
    }
}
