//! The bucket-chained hash table shared by all hash-based operators.
//!
//! "In our implementation of hash-based algorithms, we use bucket chaining
//! as conflict resolution in hash tables. The hash algorithms use the file
//! system's memory manager to allocate space for hash tables, bit maps, and
//! chain elements." (Section 5.1.)
//!
//! The table accounts every bucket header and chain element against a
//! [`MemoryPool`]; a failed reservation surfaces as
//! [`StorageError::MemoryExhausted`](reldiv_storage::StorageError), the
//! signal for hash-table overflow handling. Lookups walk the whole bucket
//! chain and apply the caller's predicate to each element, so tuple
//! comparisons are counted exactly as the paper's model prices them ("the
//! tuple is compared with all tuples in this bucket, on the average two
//! tuples").

use reldiv_storage::memory::{sizes, Reservation};
use reldiv_storage::MemoryPool;

use crate::Result;

/// Target average bucket-chain length before the directory doubles.
///
/// The paper's analytical model assumes an average hash-bucket size
/// (`hbs`) of 2.
pub const TARGET_CHAIN_LEN: usize = 2;

const NIL: u32 = u32::MAX;

struct Entry<T> {
    hash: u64,
    next: u32,
    item: T,
}

/// A bucket-chained hash table with memory accounting.
pub struct ChainedTable<T> {
    buckets: Vec<u32>,
    entries: Vec<Entry<T>>,
    reservation: Reservation,
}

impl<T> ChainedTable<T> {
    /// Creates a table with `initial_buckets` buckets (rounded up to a
    /// power of two), reserving their memory from `pool`.
    pub fn new(pool: &MemoryPool, initial_buckets: usize) -> Result<Self> {
        let n = initial_buckets.max(4).next_power_of_two();
        let reservation = pool.reserve(n * sizes::BUCKET)?;
        Ok(ChainedTable {
            buckets: vec![NIL; n],
            entries: Vec::new(),
            reservation,
        })
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Bytes of accounted memory (buckets + chain elements).
    pub fn accounted_bytes(&self) -> usize {
        self.reservation.bytes()
    }

    fn bucket_of(&self, hash: u64) -> usize {
        (hash as usize) & (self.buckets.len() - 1)
    }

    /// Inserts an element, returning its stable entry index.
    ///
    /// Fails with `MemoryExhausted` (leaving the table unchanged) when the
    /// memory pool cannot cover the new chain element — the caller's cue to
    /// start overflow handling.
    pub fn insert(&mut self, hash: u64, item: T) -> Result<u32> {
        self.maybe_grow()?;
        self.reservation.grow(sizes::CHAIN_ELEMENT)?;
        let bucket = self.bucket_of(hash);
        let idx = self.entries.len() as u32;
        self.entries.push(Entry {
            hash,
            next: self.buckets[bucket],
            item,
        });
        self.buckets[bucket] = idx;
        Ok(idx)
    }

    /// Doubles the bucket directory when chains exceed the target length.
    fn maybe_grow(&mut self) -> Result<()> {
        if self.entries.len() < self.buckets.len() * TARGET_CHAIN_LEN {
            return Ok(());
        }
        let new_len = self.buckets.len() * 2;
        self.reservation
            .grow((new_len - self.buckets.len()) * sizes::BUCKET)?;
        self.buckets = vec![NIL; new_len];
        for (i, e) in self.entries.iter_mut().enumerate() {
            let bucket = (e.hash as usize) & (new_len - 1);
            e.next = self.buckets[bucket];
            self.buckets[bucket] = i as u32;
        }
        Ok(())
    }

    /// Walks the bucket for `hash`, returning the index of the first
    /// element satisfying `pred`.
    ///
    /// The predicate is applied to *every* element of the chain until a
    /// match, mirroring the paper's "scan hash bucket for a matching
    /// tuple" — callers compare tuples inside `pred`, which counts the
    /// comparisons.
    pub fn find(&self, hash: u64, mut pred: impl FnMut(&T) -> bool) -> Option<u32> {
        let mut cur = self.buckets[self.bucket_of(hash)];
        while cur != NIL {
            let e = &self.entries[cur as usize];
            if pred(&e.item) {
                return Some(cur);
            }
            cur = e.next;
        }
        None
    }

    /// [`ChainedTable::find`] with a packed-key prefilter: the predicate
    /// runs only on chain elements whose stored 64-bit hash equals
    /// `hash`. Because equal keys hash equally, this returns exactly the
    /// element `find` would for key-equality predicates while skipping
    /// the comparison on every hash-distinct collision in the chain —
    /// the probe the vectorized kernels use.
    pub fn find_hashed(&self, hash: u64, mut pred: impl FnMut(&T) -> bool) -> Option<u32> {
        let mut cur = self.buckets[self.bucket_of(hash)];
        while cur != NIL {
            let e = &self.entries[cur as usize];
            if e.hash == hash && pred(&e.item) {
                return Some(cur);
            }
            cur = e.next;
        }
        None
    }

    /// The element at a previously returned entry index.
    pub fn get(&self, idx: u32) -> &T {
        &self.entries[idx as usize].item
    }

    /// Mutable access to the element at an entry index.
    pub fn get_mut(&mut self, idx: u32) -> &mut T {
        &mut self.entries[idx as usize].item
    }

    /// Iterates all elements in insertion order.
    pub fn items(&self) -> impl Iterator<Item = &T> {
        self.entries.iter().map(|e| &e.item)
    }

    /// Consumes the table, yielding elements in insertion order and
    /// releasing the memory reservation.
    pub fn into_items(self) -> impl Iterator<Item = T> {
        self.entries.into_iter().map(|e| e.item)
    }

    /// Average chain length (the paper's `hbs`).
    pub fn average_chain_len(&self) -> f64 {
        if self.buckets.is_empty() {
            return 0.0;
        }
        self.entries.len() as f64 / self.buckets.iter().filter(|&&b| b != NIL).count().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reldiv_storage::StorageError;

    fn pool() -> MemoryPool {
        MemoryPool::new(1 << 20)
    }

    #[test]
    fn insert_and_find() {
        let mut t = ChainedTable::new(&pool(), 4).unwrap();
        let a = t.insert(10, "alpha").unwrap();
        let _b = t.insert(11, "beta").unwrap();
        assert_eq!(t.find(10, |s| *s == "alpha"), Some(a));
        assert_eq!(t.find(10, |s| *s == "beta"), None, "different bucket");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn collisions_chain_within_a_bucket() {
        let mut t = ChainedTable::new(&pool(), 4).unwrap();
        // Same bucket (hash & 3 identical), different items.
        t.insert(4, 1).unwrap();
        t.insert(8, 2).unwrap();
        t.insert(12, 3).unwrap();
        let mut seen = Vec::new();
        t.find(4, |&v| {
            seen.push(v);
            false
        });
        // The chain is walked newest-first and completely.
        assert_eq!(seen.len(), 3);
        assert!(t.find(4, |&v| v == 1).is_some());
    }

    #[test]
    fn growth_keeps_all_elements_findable() {
        let mut t = ChainedTable::new(&pool(), 4).unwrap();
        let hashes: Vec<u64> = (0..1000).map(|i| i * 2654435761 % 100003).collect();
        for (i, &h) in hashes.iter().enumerate() {
            t.insert(h, i).unwrap();
        }
        assert!(t.bucket_count() >= 1000 / TARGET_CHAIN_LEN);
        for (i, &h) in hashes.iter().enumerate() {
            assert!(
                t.find(h, |&v| v == i).is_some(),
                "element {i} lost in resize"
            );
        }
    }

    #[test]
    fn average_chain_len_stays_near_target() {
        let mut t = ChainedTable::new(&pool(), 4).unwrap();
        for i in 0..10_000u64 {
            // A multiplicative hash spreads keys well.
            t.insert(i.wrapping_mul(0x9E3779B97F4A7C15), i).unwrap();
        }
        assert!(
            t.average_chain_len() <= 2.5,
            "hbs ~ 2, got {}",
            t.average_chain_len()
        );
    }

    #[test]
    fn memory_exhaustion_fails_cleanly() {
        let small = MemoryPool::new(sizes::BUCKET * 8 + sizes::CHAIN_ELEMENT * 3);
        let mut t = ChainedTable::new(&small, 8).unwrap();
        t.insert(1, 1).unwrap();
        t.insert(2, 2).unwrap();
        t.insert(3, 3).unwrap();
        let err = t.insert(4, 4).unwrap_err();
        assert!(matches!(
            err,
            crate::ExecError::Storage(StorageError::MemoryExhausted { .. })
        ));
        // Table still consistent after the failed insert.
        assert_eq!(t.len(), 3);
        assert!(t.find(2, |&v| v == 2).is_some());
    }

    #[test]
    fn dropping_the_table_releases_memory() {
        let p = pool();
        {
            let mut t = ChainedTable::new(&p, 4).unwrap();
            for i in 0..100 {
                t.insert(i, i).unwrap();
            }
            assert!(p.used() > 0);
        }
        assert_eq!(p.used(), 0);
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut t = ChainedTable::new(&pool(), 4).unwrap();
        let idx = t.insert(5, vec![0u8; 4]).unwrap();
        t.get_mut(idx)[2] = 9;
        assert_eq!(t.get(idx)[2], 9);
    }

    #[test]
    fn into_items_preserves_insertion_order() {
        let mut t = ChainedTable::new(&pool(), 4).unwrap();
        for i in 0..10 {
            t.insert(i * 7, i).unwrap();
        }
        let items: Vec<u64> = t.into_items().collect();
        assert_eq!(items, (0..10).collect::<Vec<_>>());
    }
}
