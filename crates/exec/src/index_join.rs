//! Index join and index semi-join over a B+-tree.
//!
//! The paper lists the join options for the aggregate division plans as
//! "typically merge join, index join, or their semi-join versions if they
//! exist" (Section 2.2.1). This operator probes a B+-tree index on the
//! inner relation for every outer tuple; matched RIDs are fetched from
//! the inner's record file (Inner mode) or merely tested for existence
//! (LeftSemi mode — no fetch at all, just the index probe).
//!
//! Keys use the order-preserving [`reldiv_rel::codec::index_key`]
//! encoding, so the same index also serves range scans.

use reldiv_rel::codec::index_key;
use reldiv_rel::{RecordCodec, Schema, Tuple};
use reldiv_storage::btree::BTree;
use reldiv_storage::{FileId, StorageRef};

use crate::merge_join::JoinMode;
use crate::op::{BoxedOp, OpState, Operator};
use crate::{ExecError, Result};

/// The indexed inner relation: a B+-tree mapping the join key to RIDs in
/// a record file.
pub struct IndexedRelation {
    /// Index over `key_columns` of the inner relation.
    pub index: BTree,
    /// The record file holding the inner tuples.
    pub file: FileId,
    /// Schema of the inner relation.
    pub schema: Schema,
    /// Inner columns the index keys are built from.
    pub key_columns: Vec<usize>,
}

/// Builds a B+-tree index over `key_columns` of every record in `file`.
pub fn build_index(
    storage: &StorageRef,
    file: FileId,
    schema: Schema,
    key_columns: Vec<usize>,
) -> Result<IndexedRelation> {
    let codec = RecordCodec::new(schema.clone());
    let mut sm = storage.borrow_mut();
    let disk = sm.file_disk(file)?;
    let mut index = BTree::create(&mut sm, disk)?;
    let mut cursor = reldiv_storage::file::ScanCursor::new(file);
    while let Some((rid, record)) = cursor.next(&mut sm)? {
        let t = codec.decode(&record)?;
        index.insert(&mut sm, &index_key(&t, &key_columns), rid)?;
    }
    Ok(IndexedRelation {
        index,
        file,
        schema,
        key_columns,
    })
}

/// Index (semi-)join: probes the inner's index with each outer tuple.
pub struct IndexJoin {
    outer: BoxedOp,
    inner: IndexedRelation,
    outer_keys: Vec<usize>,
    mode: JoinMode,
    storage: StorageRef,
    codec: RecordCodec,
    schema: Schema,
    state: OpState,
    /// Pending joined tuples for the current outer (Inner mode).
    pending: Vec<Tuple>,
}

impl IndexJoin {
    /// Creates an index join of `outer` against the indexed `inner`.
    pub fn new(
        storage: StorageRef,
        outer: BoxedOp,
        inner: IndexedRelation,
        outer_keys: Vec<usize>,
        mode: JoinMode,
    ) -> Result<Self> {
        if outer_keys.len() != inner.key_columns.len() {
            return Err(ExecError::Plan(
                "index join: key lists differ in length".into(),
            ));
        }
        if outer_keys.iter().any(|&k| k >= outer.schema().arity()) {
            return Err(ExecError::Plan("index join: outer key out of range".into()));
        }
        let schema = match mode {
            JoinMode::Inner => {
                let mut fields = outer.schema().fields().to_vec();
                fields.extend(inner.schema.fields().iter().cloned());
                Schema::new(fields)
            }
            JoinMode::LeftSemi => outer.schema().clone(),
        };
        Ok(IndexJoin {
            codec: RecordCodec::new(inner.schema.clone()),
            outer,
            inner,
            outer_keys,
            mode,
            storage,
            schema,
            state: OpState::Created,
            pending: Vec::new(),
        })
    }
}

impl Operator for IndexJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.outer.open()?;
        self.pending.clear();
        self.state = OpState::Open;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        self.state.require_open()?;
        loop {
            if let Some(t) = self.pending.pop() {
                return Ok(Some(t));
            }
            let Some(outer) = self.outer.next()? else {
                return Ok(None);
            };
            // The index key is built from the outer's join columns but
            // must look exactly like an inner key: index_key is value-
            // based, so matching values produce matching bytes.
            let key = index_key(&outer, &self.outer_keys);
            let mut sm = self.storage.borrow_mut();
            let rids = self.inner.index.search(&mut sm, &key)?;
            match self.mode {
                JoinMode::LeftSemi => {
                    if !rids.is_empty() {
                        drop(sm);
                        return Ok(Some(outer));
                    }
                }
                JoinMode::Inner => {
                    for rid in rids {
                        let record = sm.get(rid)?;
                        let inner_tuple = self.codec.decode(&record)?;
                        let mut vals = outer.clone().into_values();
                        vals.extend(inner_tuple.into_values());
                        self.pending.push(Tuple::new(vals));
                    }
                }
            }
        }
    }

    fn close(&mut self) -> Result<()> {
        self.outer.close()?;
        self.pending.clear();
        self.state = OpState::Closed;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::collect;
    use crate::scan::{load_relation, MemScan};
    use reldiv_rel::schema::Field;
    use reldiv_rel::tuple::ints;
    use reldiv_rel::Relation;
    use reldiv_storage::manager::{StorageConfig, StorageManager};

    fn rel(names: &[&str], rows: &[&[i64]]) -> Relation {
        let schema = Schema::new(names.iter().map(|n| Field::int(*n)).collect());
        Relation::from_tuples(schema, rows.iter().map(|r| ints(r)).collect()).unwrap()
    }

    fn indexed(storage: &StorageRef, relation: &Relation, keys: Vec<usize>) -> IndexedRelation {
        let file = load_relation(storage, relation).unwrap();
        build_index(storage, file, relation.schema().clone(), keys).unwrap()
    }

    #[test]
    fn semi_join_probes_without_fetching() {
        let storage = StorageManager::shared(StorageConfig::large());
        let courses = rel(&["cno"], &[&[10], &[20]]);
        let inner = indexed(&storage, &courses, vec![0]);
        let transcript = rel(&["sid", "cno"], &[&[1, 10], &[2, 10], &[1, 20], &[3, 30]]);
        let j = IndexJoin::new(
            storage,
            Box::new(MemScan::new(transcript)),
            inner,
            vec![1],
            JoinMode::LeftSemi,
        )
        .unwrap();
        let out = collect(Box::new(j)).unwrap();
        assert_eq!(out.cardinality(), 3, "the course-30 tuple is dropped");
        assert_eq!(out.schema().arity(), 2);
    }

    #[test]
    fn inner_join_fetches_all_matches() {
        let storage = StorageManager::shared(StorageConfig::large());
        let inner_rel = rel(&["k", "x"], &[&[1, 100], &[1, 101], &[2, 200]]);
        let inner = indexed(&storage, &inner_rel, vec![0]);
        let outer = rel(&["k", "y"], &[&[1, 7], &[2, 8], &[3, 9]]);
        let j = IndexJoin::new(
            storage,
            Box::new(MemScan::new(outer)),
            inner,
            vec![0],
            JoinMode::Inner,
        )
        .unwrap();
        let out = collect(Box::new(j)).unwrap();
        // k=1 matches 2 inners, k=2 matches 1, k=3 matches none.
        assert_eq!(out.cardinality(), 3);
        assert_eq!(out.schema().arity(), 4);
    }

    #[test]
    fn large_index_join_matches_hash_join() {
        let storage = StorageManager::shared(StorageConfig::large());
        let inner_rows: Vec<Vec<i64>> = (0..500).map(|i| vec![i % 50, i]).collect();
        let inner_refs: Vec<&[i64]> = inner_rows.iter().map(|r| r.as_slice()).collect();
        let inner_rel = rel(&["k", "x"], &inner_refs);
        let outer_rows: Vec<Vec<i64>> = (0..200).map(|i| vec![i % 80, i]).collect();
        let outer_refs: Vec<&[i64]> = outer_rows.iter().map(|r| r.as_slice()).collect();
        let outer_rel = rel(&["k", "y"], &outer_refs);

        let inner = indexed(&storage, &inner_rel, vec![0]);
        let ij = IndexJoin::new(
            storage,
            Box::new(MemScan::new(outer_rel.clone())),
            inner,
            vec![0],
            JoinMode::Inner,
        )
        .unwrap();
        let via_index = collect(Box::new(ij)).unwrap();

        let hj = crate::hash_join::HashJoin::new(
            Box::new(MemScan::new(outer_rel)),
            Box::new(MemScan::new(inner_rel)),
            vec![0],
            vec![0],
            JoinMode::Inner,
        )
        .unwrap()
        .with_pool(reldiv_storage::MemoryPool::unbounded());
        let via_hash = collect(Box::new(hj)).unwrap();
        assert_eq!(via_index.bag_counts(), via_hash.bag_counts());
    }

    #[test]
    fn mismatched_keys_are_a_plan_error() {
        let storage = StorageManager::shared(StorageConfig::large());
        let inner = indexed(&storage, &rel(&["k"], &[&[1]]), vec![0]);
        let outer = MemScan::new(rel(&["k"], &[&[1]]));
        assert!(matches!(
            IndexJoin::new(storage, Box::new(outer), inner, vec![0, 0], JoinMode::Inner),
            Err(ExecError::Plan(_))
        ));
    }
}
