//! Error type for the execution engine.

use std::fmt;

use reldiv_rel::RelError;
use reldiv_storage::StorageError;

/// Errors raised by query operators.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// Error from the data layer (schemas, codecs).
    Rel(RelError),
    /// Error from the storage layer (disks, buffer, files).
    Storage(StorageError),
    /// An operator was used outside the open-next-close protocol
    /// (e.g. `next` before `open`).
    Protocol(&'static str),
    /// A plan was malformed (mismatched key lists, wrong arities).
    Plan(String),
    /// The query was cooperatively cancelled (its deadline expired). Not a
    /// data error: the inputs are fine, the caller just stopped waiting.
    Cancelled,
    /// Adaptive-hybrid overflow recursion exceeded its depth bound: a
    /// partition still did not fit after `depth` re-partitioning levels.
    /// Distinct from `MemoryExhausted` so the overflow ladder does not
    /// keep retrying a strategy that cannot converge (e.g. one quotient
    /// group that alone exceeds the memory budget).
    RecursionLimit {
        /// The depth bound that was exceeded.
        depth: u32,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Rel(e) => write!(f, "data-layer error: {e}"),
            ExecError::Storage(e) => write!(f, "storage error: {e}"),
            ExecError::Protocol(msg) => write!(f, "iterator protocol violation: {msg}"),
            ExecError::Plan(msg) => write!(f, "malformed plan: {msg}"),
            ExecError::Cancelled => write!(f, "query cancelled: deadline exceeded"),
            ExecError::RecursionLimit { depth } => write!(
                f,
                "overflow recursion limit: a partition still exceeds the \
                 memory budget after {depth} re-partitioning levels"
            ),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Rel(e) => Some(e),
            ExecError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelError> for ExecError {
    fn from(e: RelError) -> Self {
        ExecError::Rel(e)
    }
}

impl From<StorageError> for ExecError {
    fn from(e: StorageError) -> Self {
        ExecError::Storage(e)
    }
}

impl ExecError {
    /// Whether this error is the memory-pool-exhausted signal that should
    /// trigger hash-table overflow handling rather than failing the query.
    pub fn is_memory_exhausted(&self) -> bool {
        matches!(
            self,
            ExecError::Storage(StorageError::MemoryExhausted { .. })
        )
    }

    /// Whether this error is a cooperative cancellation (deadline expiry)
    /// rather than a failure of the query itself.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, ExecError::Cancelled)
    }

    /// Whether this error wraps a transient storage fault whose retries
    /// were exhausted — the class of failure a client may retry whole.
    pub fn is_transient(&self) -> bool {
        matches!(self, ExecError::Storage(e) if e.is_transient())
    }

    /// Whether this error is the overflow-recursion depth bound.
    pub fn is_recursion_limit(&self) -> bool {
        matches!(self, ExecError::RecursionLimit { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: ExecError = RelError::Decode("bad".into()).into();
        assert!(e.to_string().contains("bad"));
        let e: ExecError = StorageError::NoSuchFile(3).into();
        assert!(e.to_string().contains("file: 3"));
        assert!(ExecError::Protocol("next before open")
            .to_string()
            .contains("protocol"));
        assert!(ExecError::Plan("x".into())
            .to_string()
            .contains("malformed"));
    }

    #[test]
    fn memory_exhaustion_is_detectable() {
        let e: ExecError = StorageError::MemoryExhausted {
            requested: 10,
            available: 0,
        }
        .into();
        assert!(e.is_memory_exhausted());
        assert!(!ExecError::Protocol("x").is_memory_exhausted());
    }

    #[test]
    fn cancellation_and_transience_are_detectable() {
        assert!(ExecError::Cancelled.is_cancelled());
        assert!(ExecError::Cancelled.to_string().contains("deadline"));
        assert!(!ExecError::Cancelled.is_memory_exhausted());
        let e: ExecError = StorageError::Transient {
            op: "read",
            page: 1,
        }
        .into();
        assert!(e.is_transient());
        assert!(!ExecError::Cancelled.is_transient());
    }
}
