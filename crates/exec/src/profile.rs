//! Per-operator query profiling — the engine half of `EXPLAIN ANALYZE`.
//!
//! A [`ProfileSink`] collects a tree of spans while a plan executes. Every
//! profiled operator (wrapped in [`ProfiledOp`]) and every profiled region
//! (a [`SpanScope`]) contributes one span recording wall time, tuples
//! produced, the abstract-operation deltas of [`reldiv_rel::counters`]
//! (comparisons, hashes, moves, bit operations), physical page reads and
//! writes attributed from the buffer manager's statistics, spill bytes,
//! network bytes (for the parallel engine), and free-form phase notes
//! (the Section 3.4 partitioning ladder). When the query finishes,
//! [`ProfileSink::finish`] freezes the spans into a plain-data
//! [`QueryProfile`] tree that is `Send`, serializable, and renderable.
//!
//! **Zero cost when disabled.** Profiling is driven entirely by an
//! `Option<ProfileSink>` in the division configuration: when it is `None`
//! no wrapper operators are constructed and the plan is byte-for-byte the
//! unprofiled plan — there are no dormant branches in the per-tuple loops.
//! The `profiling_overhead` bench gates this at < 5 % on the Table 4
//! workloads.
//!
//! **Metric semantics.** Span metrics are *inclusive*: a sort's span
//! includes the work of the scan feeding it. The renderer and
//! [`ProfileNode::self_wall_micros`] derive exclusive ("self") figures by
//! subtracting the children's inclusive totals. Page writebacks are
//! attributed to the span during which the buffer manager performed them,
//! which for deferred writebacks can be a later span than the one that
//! dirtied the page — the totals over the whole profile are exact.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;
use std::time::Instant;

use reldiv_rel::counters::{self, OpSnapshot};
use reldiv_rel::{Schema, Tuple};
use reldiv_storage::buffer::BufferStats;
use reldiv_storage::StorageRef;

use crate::op::{BoxedOp, Operator};
use crate::Result;

/// What kind of work a span measures; mirrors the operator taxonomy of the
/// paper's plans plus the service-side bookkeeping spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A whole division query (the root span).
    Query,
    /// A file or memory scan.
    Scan,
    /// An external merge sort (possibly with duplicate elimination).
    Sort,
    /// A merge join / merge semi-join.
    MergeJoin,
    /// A hash join / hash semi-join.
    HashJoin,
    /// An aggregation (sort- or hash-based, scalar or grouped).
    Aggregation,
    /// The hash-division operator (Section 3).
    HashDivision,
    /// The naive merge-scan division step (Section 2.1).
    NaiveDivision,
    /// An overflow-partitioning phase (Section 3.4).
    Partition,
    /// Materialization of an intermediate result to a record file.
    Materialize,
    /// Network shipment in the parallel engine.
    Network,
    /// One node of the parallel cluster.
    Node,
    /// Anything else (queue wait, service bookkeeping, ...).
    Other,
    /// A selection in a composed plan.
    Filter,
    /// A projection in a composed plan.
    Project,
    /// Duplicate elimination in a composed plan.
    Distinct,
    /// A `HAVING COUNT` post-filter in a composed plan.
    Having,
    /// An adaptive-hybrid spill: a victim partition's table written to a
    /// cluster file mid-build, or a spilled partition's post-pass merge.
    Spill,
    /// An adaptive-hybrid revive: a spilled partition re-admitted to
    /// memory after the pool freed up.
    Revive,
}

impl SpanKind {
    /// Stable wire/JSON code.
    pub fn code(self) -> u8 {
        match self {
            SpanKind::Query => 0,
            SpanKind::Scan => 1,
            SpanKind::Sort => 2,
            SpanKind::MergeJoin => 3,
            SpanKind::HashJoin => 4,
            SpanKind::Aggregation => 5,
            SpanKind::HashDivision => 6,
            SpanKind::NaiveDivision => 7,
            SpanKind::Partition => 8,
            SpanKind::Materialize => 9,
            SpanKind::Network => 10,
            SpanKind::Node => 11,
            SpanKind::Other => 12,
            SpanKind::Filter => 13,
            SpanKind::Project => 14,
            SpanKind::Distinct => 15,
            SpanKind::Having => 16,
            SpanKind::Spill => 17,
            SpanKind::Revive => 18,
        }
    }

    /// Decodes a wire/JSON code; unknown codes map to [`SpanKind::Other`]
    /// so old readers tolerate new span kinds.
    pub fn from_code(code: u8) -> SpanKind {
        match code {
            0 => SpanKind::Query,
            1 => SpanKind::Scan,
            2 => SpanKind::Sort,
            3 => SpanKind::MergeJoin,
            4 => SpanKind::HashJoin,
            5 => SpanKind::Aggregation,
            6 => SpanKind::HashDivision,
            7 => SpanKind::NaiveDivision,
            8 => SpanKind::Partition,
            9 => SpanKind::Materialize,
            10 => SpanKind::Network,
            11 => SpanKind::Node,
            13 => SpanKind::Filter,
            14 => SpanKind::Project,
            15 => SpanKind::Distinct,
            16 => SpanKind::Having,
            17 => SpanKind::Spill,
            18 => SpanKind::Revive,
            _ => SpanKind::Other,
        }
    }

    /// Short lowercase label for rendering.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Query => "query",
            SpanKind::Scan => "scan",
            SpanKind::Sort => "sort",
            SpanKind::MergeJoin => "merge-join",
            SpanKind::HashJoin => "hash-join",
            SpanKind::Aggregation => "aggregation",
            SpanKind::HashDivision => "hash-division",
            SpanKind::NaiveDivision => "naive-division",
            SpanKind::Partition => "partition",
            SpanKind::Materialize => "materialize",
            SpanKind::Network => "network",
            SpanKind::Node => "node",
            SpanKind::Other => "other",
            SpanKind::Filter => "filter",
            SpanKind::Project => "project",
            SpanKind::Distinct => "distinct",
            SpanKind::Having => "having",
            SpanKind::Spill => "spill",
            SpanKind::Revive => "revive",
        }
    }
}

/// The measured quantities of one span. All figures are inclusive of the
/// span's children.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanMetrics {
    /// Wall time spent inside the span, microseconds.
    pub wall_micros: u64,
    /// Tuples the span produced (for operators: `next()` yields).
    pub tuples_out: u64,
    /// Abstract operations (comparisons, hashes, moves, bitops).
    pub ops: OpSnapshot,
    /// Physical page reads (buffer misses) during the span.
    pub pages_read: u64,
    /// Physical page writes (writebacks) during the span.
    pub pages_written: u64,
    /// Bytes spilled to cluster/run files.
    pub spill_bytes: u64,
    /// Bytes shipped over the (simulated) network.
    pub network_bytes: u64,
    /// Free-form phase notes (the overflow degradation ladder).
    pub phases: Vec<String>,
}

impl SpanMetrics {
    fn absorb(&mut self, other: &SpanMetrics) {
        self.wall_micros += other.wall_micros;
        self.tuples_out += other.tuples_out;
        self.ops = self.ops.merge(&other.ops);
        self.pages_read += other.pages_read;
        self.pages_written += other.pages_written;
        self.spill_bytes += other.spill_bytes;
        self.network_bytes += other.network_bytes;
        self.phases.extend(other.phases.iter().cloned());
    }
}

/// Identifies a span within its sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(usize);

struct SpanData {
    label: String,
    kind: SpanKind,
    parent: Option<usize>,
    metrics: SpanMetrics,
}

#[derive(Default)]
struct Builder {
    spans: Vec<SpanData>,
    /// Stack of currently-active spans: a newly created span's parent is
    /// the top of this stack, which is how the tree structure is
    /// discovered at runtime without threading parent handles through
    /// every plan builder.
    active: Vec<usize>,
}

/// A handle collecting spans for one query execution. Cheap to clone
/// (reference-counted); single-threaded like the execution engine itself —
/// workers build the profile locally and ship the finished (plain-data)
/// [`QueryProfile`] across threads.
#[derive(Clone, Default)]
pub struct ProfileSink {
    inner: Rc<RefCell<Builder>>,
}

impl std::fmt::Debug for ProfileSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProfileSink")
            .field("spans", &self.inner.borrow().spans.len())
            .finish()
    }
}

impl ProfileSink {
    /// An empty sink.
    pub fn new() -> ProfileSink {
        ProfileSink::default()
    }

    /// Registers a new span whose parent is the currently active span (if
    /// any). Does not activate it — pair with [`ProfileSink::push`].
    pub fn create_span(&self, label: impl Into<String>, kind: SpanKind) -> SpanId {
        let mut b = self.inner.borrow_mut();
        let parent = b.active.last().copied();
        b.spans.push(SpanData {
            label: label.into(),
            kind,
            parent,
            metrics: SpanMetrics::default(),
        });
        SpanId(b.spans.len() - 1)
    }

    /// Makes `id` the active span: spans created until the matching
    /// [`ProfileSink::pop`] become its children.
    pub fn push(&self, id: SpanId) {
        self.inner.borrow_mut().active.push(id.0);
    }

    /// Deactivates `id` (and anything pushed above it that was leaked by
    /// an error path).
    pub fn pop(&self, id: SpanId) {
        let mut b = self.inner.borrow_mut();
        while let Some(top) = b.active.pop() {
            if top == id.0 {
                break;
            }
        }
    }

    /// Accumulates measured quantities into a span.
    pub fn add(&self, id: SpanId, delta: &SpanMetrics) {
        self.inner.borrow_mut().spans[id.0].metrics.absorb(delta);
    }

    /// Appends a phase note to a span.
    pub fn note_phase(&self, id: SpanId, phase: impl Into<String>) {
        self.inner.borrow_mut().spans[id.0]
            .metrics
            .phases
            .push(phase.into());
    }

    /// Adds spill bytes to a span.
    pub fn add_spill(&self, id: SpanId, bytes: u64) {
        self.inner.borrow_mut().spans[id.0].metrics.spill_bytes += bytes;
    }

    /// Adds network bytes to a span.
    pub fn add_network(&self, id: SpanId, bytes: u64) {
        self.inner.borrow_mut().spans[id.0].metrics.network_bytes += bytes;
    }

    /// Number of spans registered so far.
    pub fn span_count(&self) -> usize {
        self.inner.borrow().spans.len()
    }

    /// Freezes the collected spans into a profile tree. Spans without a
    /// parent become children of a synthesized root when there is more
    /// than one of them; a single parentless span *is* the root. An empty
    /// sink yields an empty root.
    pub fn finish(&self) -> QueryProfile {
        let b = self.inner.borrow();
        // children[i] = indices of spans whose parent is i, in creation
        // order (creation order is open order, which reads naturally).
        let n = b.spans.len();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut roots: Vec<usize> = Vec::new();
        for (i, s) in b.spans.iter().enumerate() {
            match s.parent {
                Some(p) => children[p].push(i),
                None => roots.push(i),
            }
        }
        fn build(i: usize, spans: &[SpanData], children: &[Vec<usize>]) -> ProfileNode {
            let kids: Vec<ProfileNode> = children[i]
                .iter()
                .map(|&c| build(c, spans, children))
                .collect();
            let tuples_in = kids.iter().map(|k| k.tuples_out).sum();
            let s = &spans[i];
            ProfileNode {
                label: s.label.clone(),
                kind: s.kind,
                wall_micros: s.metrics.wall_micros,
                tuples_in,
                tuples_out: s.metrics.tuples_out,
                ops: s.metrics.ops,
                pages_read: s.metrics.pages_read,
                pages_written: s.metrics.pages_written,
                spill_bytes: s.metrics.spill_bytes,
                network_bytes: s.metrics.network_bytes,
                phases: s.metrics.phases.clone(),
                children: kids,
            }
        }
        let root = match roots.len() {
            0 => ProfileNode::empty("empty profile"),
            1 => build(roots[0], &b.spans, &children),
            _ => {
                let kids: Vec<ProfileNode> = roots
                    .iter()
                    .map(|&r| build(r, &b.spans, &children))
                    .collect();
                let mut root = ProfileNode::empty("query");
                root.wall_micros = kids.iter().map(|k| k.wall_micros).sum();
                root.tuples_in = kids.iter().map(|k| k.tuples_out).sum();
                root.children = kids;
                root
            }
        };
        QueryProfile { root }
    }
}

/// One node of a finished profile tree. Plain data: `Send`, cloneable,
/// serializable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileNode {
    /// Human-readable operator/region label.
    pub label: String,
    /// Span taxonomy.
    pub kind: SpanKind,
    /// Inclusive wall time, microseconds.
    pub wall_micros: u64,
    /// Tuples consumed (sum of the children's `tuples_out`; 0 for leaves).
    pub tuples_in: u64,
    /// Tuples produced.
    pub tuples_out: u64,
    /// Inclusive abstract operations.
    pub ops: OpSnapshot,
    /// Inclusive physical page reads.
    pub pages_read: u64,
    /// Inclusive physical page writes.
    pub pages_written: u64,
    /// Inclusive bytes spilled to cluster/run files.
    pub spill_bytes: u64,
    /// Inclusive bytes shipped over the network.
    pub network_bytes: u64,
    /// Phase notes (the overflow ladder, queue wait, ...).
    pub phases: Vec<String>,
    /// Child spans, in open order.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    fn empty(label: &str) -> ProfileNode {
        ProfileNode {
            label: label.to_owned(),
            kind: SpanKind::Query,
            wall_micros: 0,
            tuples_in: 0,
            tuples_out: 0,
            ops: OpSnapshot::default(),
            pages_read: 0,
            pages_written: 0,
            spill_bytes: 0,
            network_bytes: 0,
            phases: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Exclusive wall time: this span minus its children (clamped at 0 —
    /// children measured around their own calls can slightly exceed the
    /// parent's clock due to timer granularity).
    pub fn self_wall_micros(&self) -> u64 {
        self.wall_micros
            .saturating_sub(self.children.iter().map(|c| c.wall_micros).sum())
    }

    /// Number of nodes in this subtree (including self).
    pub fn node_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(ProfileNode::node_count)
            .sum::<usize>()
    }

    fn render_into(&self, out: &mut String, prefix: &str, last: bool, is_root: bool) {
        let (branch, child_prefix) = if is_root {
            (String::new(), String::new())
        } else if last {
            (format!("{prefix}└─ "), format!("{prefix}   "))
        } else {
            (format!("{prefix}├─ "), format!("{prefix}│  "))
        };
        let _ = write!(out, "{branch}{} [{}]", self.label, self.kind.label());
        let _ = write!(
            out,
            "  wall={} self={} rows={}",
            fmt_micros(self.wall_micros),
            fmt_micros(self.self_wall_micros()),
            self.tuples_out
        );
        if self.ops != OpSnapshot::default() {
            let _ = write!(
                out,
                "  cmp={} hash={} move={} bit={}",
                self.ops.comparisons, self.ops.hashes, self.ops.moves, self.ops.bitops
            );
        }
        if self.pages_read > 0 || self.pages_written > 0 {
            let _ = write!(out, "  pages={}r/{}w", self.pages_read, self.pages_written);
        }
        if self.spill_bytes > 0 {
            let _ = write!(out, "  spill={}B", self.spill_bytes);
        }
        if self.network_bytes > 0 {
            let _ = write!(out, "  net={}B", self.network_bytes);
        }
        out.push('\n');
        for phase in &self.phases {
            let _ = writeln!(
                out,
                "{}{} phase: {phase}",
                child_prefix,
                if self.children.is_empty() { " " } else { "│" }
            );
        }
        for (i, child) in self.children.iter().enumerate() {
            child.render_into(out, &child_prefix, i + 1 == self.children.len(), false);
        }
    }

    fn json_into(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"label\":{},\"kind\":\"{}\",\"wall_micros\":{},\"tuples_in\":{},\
             \"tuples_out\":{},\"comparisons\":{},\"hashes\":{},\"moves\":{},\"bitops\":{},\
             \"pages_read\":{},\"pages_written\":{},\"spill_bytes\":{},\"network_bytes\":{}",
            json_str(&self.label),
            self.kind.label(),
            self.wall_micros,
            self.tuples_in,
            self.tuples_out,
            self.ops.comparisons,
            self.ops.hashes,
            self.ops.moves,
            self.ops.bitops,
            self.pages_read,
            self.pages_written,
            self.spill_bytes,
            self.network_bytes,
        );
        out.push_str(",\"phases\":[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_str(p));
        }
        out.push_str("],\"children\":[");
        for (i, c) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            c.json_into(out);
        }
        out.push_str("]}");
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn fmt_micros(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{us}us")
    }
}

/// A finished per-query profile: the `EXPLAIN ANALYZE` result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryProfile {
    /// The root span (the whole query).
    pub root: ProfileNode,
}

impl QueryProfile {
    /// Total (root) wall time in microseconds.
    pub fn total_wall_micros(&self) -> u64 {
        self.root.wall_micros
    }

    /// Renders the profile as an ASCII tree, one span per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.root.render_into(&mut out, "", true, true);
        out
    }

    /// Hand-rolled JSON serialization (the workspace deliberately carries
    /// no serialization dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.root.json_into(&mut out);
        out
    }
}

pub(crate) fn buffer_stats(storage: &Option<StorageRef>) -> BufferStats {
    match storage {
        Some(s) => s.borrow().buffer_stats(),
        None => BufferStats::default(),
    }
}

pub(crate) fn io_delta(before: &BufferStats, after: &BufferStats) -> (u64, u64) {
    let d = after.since(before);
    (d.misses, d.writebacks)
}

/// A scoped (non-operator) span: covers a region of straight-line code —
/// the query root, an overflow-partitioning phase, a materialization.
/// Measures wall time, abstract ops, and buffer I/O between construction
/// and [`SpanScope::finish`] (or drop, on error paths).
pub struct SpanScope {
    sink: ProfileSink,
    id: SpanId,
    start: Instant,
    ops0: OpSnapshot,
    io0: BufferStats,
    storage: Option<StorageRef>,
    finished: bool,
}

impl SpanScope {
    /// Opens a span under the sink's currently active span and activates
    /// it. `storage` enables physical-I/O attribution.
    pub fn enter(
        sink: &ProfileSink,
        label: impl Into<String>,
        kind: SpanKind,
        storage: Option<StorageRef>,
    ) -> SpanScope {
        let id = sink.create_span(label, kind);
        sink.push(id);
        SpanScope {
            sink: sink.clone(),
            id,
            start: Instant::now(),
            ops0: counters::snapshot(),
            io0: buffer_stats(&storage),
            storage,
            finished: false,
        }
    }

    /// The span this scope measures (for phase notes and spill bytes).
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// Appends a phase note to this span.
    pub fn note_phase(&self, phase: impl Into<String>) {
        self.sink.note_phase(self.id, phase);
    }

    fn flush(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let (pages_read, pages_written) = io_delta(&self.io0, &buffer_stats(&self.storage));
        self.sink.add(
            self.id,
            &SpanMetrics {
                wall_micros: self.start.elapsed().as_micros() as u64,
                tuples_out: 0,
                ops: counters::snapshot().since(&self.ops0),
                pages_read,
                pages_written,
                spill_bytes: 0,
                network_bytes: 0,
                phases: Vec::new(),
            },
        );
        self.sink.pop(self.id);
    }

    /// Closes the span, recording its measurements.
    pub fn finish(mut self) {
        self.flush();
    }
}

impl Drop for SpanScope {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Wraps an operator so that every `open`/`next`/`close` call is measured
/// into a span of `sink`. The span's parent is whichever span is active
/// when the operator is first opened, and the operator activates its own
/// span around calls into its input — so a plan of wrapped operators
/// reconstructs its tree shape at runtime, including children that are
/// only opened lazily from `next()`.
pub struct ProfiledOp {
    inner: BoxedOp,
    sink: ProfileSink,
    storage: Option<StorageRef>,
    label: String,
    kind: SpanKind,
    id: Option<SpanId>,
}

impl ProfiledOp {
    /// Wraps `inner`.
    pub fn new(
        inner: BoxedOp,
        sink: ProfileSink,
        label: impl Into<String>,
        kind: SpanKind,
        storage: Option<StorageRef>,
    ) -> ProfiledOp {
        ProfiledOp {
            inner,
            sink,
            storage,
            label: label.into(),
            kind,
            id: None,
        }
    }

    fn measured<T>(&mut self, f: impl FnOnce(&mut BoxedOp) -> Result<T>) -> Result<(T, u64)> {
        let id = self.id.expect("span created in open");
        let start = Instant::now();
        let ops0 = counters::snapshot();
        let io0 = buffer_stats(&self.storage);
        self.sink.push(id);
        let result = f(&mut self.inner);
        self.sink.pop(id);
        let (pages_read, pages_written) = io_delta(&io0, &buffer_stats(&self.storage));
        let wall = start.elapsed().as_micros() as u64;
        self.sink.add(
            id,
            &SpanMetrics {
                wall_micros: wall,
                tuples_out: 0,
                ops: counters::snapshot().since(&ops0),
                pages_read,
                pages_written,
                spill_bytes: 0,
                network_bytes: 0,
                phases: Vec::new(),
            },
        );
        result.map(|v| (v, wall))
    }
}

impl Operator for ProfiledOp {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn open(&mut self) -> Result<()> {
        if self.id.is_none() {
            self.id = Some(self.sink.create_span(self.label.clone(), self.kind));
        }
        self.measured(|op| op.open()).map(|(v, _)| v)
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        let id = self.id.expect("span created in open");
        let (tuple, _) = self.measured(|op| op.next())?;
        if tuple.is_some() {
            self.sink.add(
                id,
                &SpanMetrics {
                    tuples_out: 1,
                    ..SpanMetrics::default()
                },
            );
        }
        Ok(tuple)
    }

    fn close(&mut self) -> Result<()> {
        self.measured(|op| op.close()).map(|(v, _)| v)
    }
}

/// Wraps `op` in a [`ProfiledOp`] when profiling is on; returns it
/// untouched (and allocation-free) when `sink` is `None`. Plan builders
/// call this at every operator boundary — the disabled path is the
/// identity function, which is what makes profiling zero-cost when off.
pub fn maybe_profile(
    op: BoxedOp,
    sink: Option<&ProfileSink>,
    label: impl Into<String>,
    kind: SpanKind,
    storage: Option<&StorageRef>,
) -> BoxedOp {
    match sink {
        None => op,
        Some(sink) => Box::new(ProfiledOp::new(
            op,
            sink.clone(),
            label,
            kind,
            storage.cloned(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::collect;
    use crate::scan::MemScan;
    use reldiv_rel::schema::Field;
    use reldiv_rel::tuple::ints;
    use reldiv_rel::Relation;

    fn rel(n: i64) -> Relation {
        let schema = Schema::new(vec![Field::int("x")]);
        Relation::from_tuples(schema, (0..n).map(|i| ints(&[i])).collect()).unwrap()
    }

    #[test]
    fn profiled_scan_counts_tuples_and_nests() {
        let sink = ProfileSink::new();
        let root = SpanScope::enter(&sink, "query", SpanKind::Query, None);
        let scan: BoxedOp = Box::new(MemScan::new(rel(5)));
        let wrapped = maybe_profile(scan, Some(&sink), "memscan", SpanKind::Scan, None);
        let out = collect(wrapped).unwrap();
        root.finish();
        assert_eq!(out.cardinality(), 5);
        let profile = sink.finish();
        assert_eq!(profile.root.label, "query");
        assert_eq!(profile.root.children.len(), 1);
        let scan = &profile.root.children[0];
        assert_eq!(scan.label, "memscan");
        assert_eq!(scan.kind, SpanKind::Scan);
        assert_eq!(scan.tuples_out, 5);
        assert_eq!(profile.root.tuples_in, 5);
    }

    #[test]
    fn disabled_profiling_is_the_identity() {
        let scan: BoxedOp = Box::new(MemScan::new(rel(3)));
        let wrapped = maybe_profile(scan, None, "memscan", SpanKind::Scan, None);
        // No sink: the plan runs exactly as before, nothing is recorded.
        assert_eq!(collect(wrapped).unwrap().cardinality(), 3);
    }

    #[test]
    fn multiple_roots_are_gathered_under_a_synthetic_root() {
        let sink = ProfileSink::new();
        SpanScope::enter(&sink, "first", SpanKind::Other, None).finish();
        SpanScope::enter(&sink, "second", SpanKind::Other, None).finish();
        let profile = sink.finish();
        assert_eq!(profile.root.label, "query");
        assert_eq!(profile.root.children.len(), 2);
    }

    #[test]
    fn empty_sink_yields_empty_profile() {
        let profile = ProfileSink::new().finish();
        assert_eq!(profile.root.node_count(), 1);
        assert_eq!(profile.total_wall_micros(), 0);
    }

    #[test]
    fn span_scope_records_ops_and_phases() {
        let sink = ProfileSink::new();
        let scope = SpanScope::enter(&sink, "work", SpanKind::Partition, None);
        scope.note_phase("in-memory");
        counters::count_comparisons(7);
        counters::count_bitops(2);
        scope.finish();
        let profile = sink.finish();
        assert!(profile.root.ops.comparisons >= 7);
        assert!(profile.root.ops.bitops >= 2);
        assert_eq!(profile.root.phases, vec!["in-memory".to_owned()]);
    }

    #[test]
    fn error_paths_still_close_spans_via_drop() {
        let sink = ProfileSink::new();
        {
            let _scope = SpanScope::enter(&sink, "doomed", SpanKind::Other, None);
            // Dropped without finish(), as an error return would.
        }
        let profile = sink.finish();
        assert_eq!(profile.root.label, "doomed");
    }

    #[test]
    fn render_and_json_contain_the_labels() {
        let sink = ProfileSink::new();
        let root = SpanScope::enter(&sink, "division \"q\"", SpanKind::Query, None);
        SpanScope::enter(&sink, "child", SpanKind::Sort, None).finish();
        root.finish();
        let profile = sink.finish();
        let rendered = profile.render();
        assert!(rendered.contains("division \"q\""), "{rendered}");
        assert!(rendered.contains("└─ child [sort]"), "{rendered}");
        let json = profile.to_json();
        assert!(json.contains("\"division \\\"q\\\"\""), "{json}");
        assert!(json.contains("\"kind\":\"sort\""), "{json}");
    }

    #[test]
    fn kind_codes_round_trip() {
        for kind in [
            SpanKind::Query,
            SpanKind::Scan,
            SpanKind::Sort,
            SpanKind::MergeJoin,
            SpanKind::HashJoin,
            SpanKind::Aggregation,
            SpanKind::HashDivision,
            SpanKind::NaiveDivision,
            SpanKind::Partition,
            SpanKind::Materialize,
            SpanKind::Network,
            SpanKind::Node,
            SpanKind::Other,
            SpanKind::Filter,
            SpanKind::Project,
            SpanKind::Distinct,
            SpanKind::Having,
            SpanKind::Spill,
            SpanKind::Revive,
        ] {
            assert_eq!(SpanKind::from_code(kind.code()), kind);
        }
        assert_eq!(SpanKind::from_code(200), SpanKind::Other);
    }

    #[test]
    fn self_wall_subtracts_children() {
        let mut parent = ProfileNode::empty("p");
        parent.wall_micros = 100;
        let mut child = ProfileNode::empty("c");
        child.wall_micros = 30;
        parent.children.push(child);
        assert_eq!(parent.self_wall_micros(), 70);
    }
}
