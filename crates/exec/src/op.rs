//! The open-next-close iterator protocol.

use reldiv_rel::{Relation, Schema, Tuple};

use crate::{ExecError, Result};

/// A relational operator in a demand-driven dataflow plan.
///
/// The protocol follows the paper exactly: `open` prepares the operator
/// (for a stop-and-go operator like sort this consumes the input), `next`
/// produces one output tuple at a time, and `close` releases resources.
/// Operators own their children, forming the tree-structured plan.
pub trait Operator {
    /// The schema of tuples this operator produces.
    fn schema(&self) -> &Schema;

    /// Prepares the operator (and, recursively, its inputs).
    fn open(&mut self) -> Result<()>;

    /// Produces the next output tuple, or `None` when exhausted.
    fn next(&mut self) -> Result<Option<Tuple>>;

    /// Releases resources (and closes inputs). Idempotent.
    fn close(&mut self) -> Result<()>;
}

/// A boxed operator — the edge type of plan trees.
pub type BoxedOp = Box<dyn Operator>;

/// Runs an operator to completion: open, drain, close; returns a relation.
///
/// `close` runs on **every** exit, including when `open`, `next`, or the
/// output push fails mid-drain — operators release resources (pinned
/// buffer pages, run files, pool reservations) in `close`, so skipping it
/// on the error path leaks them for the rest of the session.
pub fn collect(mut op: BoxedOp) -> Result<Relation> {
    fn drain(op: &mut BoxedOp) -> Result<Relation> {
        op.open()?;
        let mut out = Relation::empty(op.schema().clone());
        while let Some(t) = op.next()? {
            out.push(t).map_err(ExecError::from)?;
        }
        Ok(out)
    }
    let result = drain(&mut op);
    let closed = op.close();
    let rel = result?;
    closed?;
    Ok(rel)
}

/// Guards against protocol misuse; embedded by operators with phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpState {
    /// Constructed, not yet opened.
    Created,
    /// Open and producing.
    Open,
    /// Closed.
    Closed,
}

impl OpState {
    /// Asserts the operator is open, for `next` implementations.
    pub fn require_open(self) -> Result<()> {
        match self {
            OpState::Open => Ok(()),
            OpState::Created => Err(ExecError::Protocol("next before open")),
            OpState::Closed => Err(ExecError::Protocol("next after close")),
        }
    }
}
