//! Aggregation operators: sort-based, hash-based, scalar, and the
//! `HAVING count = N` filter.
//!
//! Together these express division by aggregation, the paper's Section 2.2:
//! "First, the courses offered by the university are counted using a scalar
//! aggregate operator. Second, for each student, the courses taken are
//! counted using an aggregate function operator. Third, only those students
//! whose number of courses taken is equal to the number of courses offered
//! are selected."

use reldiv_rel::schema::Field;
use reldiv_rel::{counters, ColumnType, Schema, Tuple, Value};
use reldiv_storage::{MemoryPool, StorageRef};

use crate::cancel::CancelToken;
use crate::hash_table::ChainedTable;
use crate::op::{BoxedOp, OpState, Operator};
use crate::sort::{Sort, SortConfig, SortMode};
use crate::{ExecError, Result};

/// Appends a constant `count = 1` column; internal adapter feeding
/// [`SortCountAggregate`]'s `CountAggregate` sort.
struct AppendOne {
    input: BoxedOp,
    schema: Schema,
}

impl AppendOne {
    fn new(input: BoxedOp) -> Self {
        let mut fields = input.schema().fields().to_vec();
        fields.push(Field::new("count", ColumnType::Int));
        AppendOne {
            input,
            schema: Schema::new(fields),
        }
    }
}

impl Operator for AppendOne {
    fn schema(&self) -> &Schema {
        &self.schema
    }
    fn open(&mut self) -> Result<()> {
        self.input.open()
    }
    fn next(&mut self) -> Result<Option<Tuple>> {
        Ok(self.input.next()?.map(|t| {
            let mut vals = t.into_values();
            vals.push(Value::Int(1));
            Tuple::new(vals)
        }))
    }
    fn close(&mut self) -> Result<()> {
        self.input.close()
    }
}

/// Sort-based `COUNT(*) GROUP BY` with the aggregation performed during
/// sorting (run generation and merging), as the paper's sort does.
///
/// Output schema: the group columns followed by an `Int` count column.
pub struct SortCountAggregate {
    sort: Sort,
    schema: Schema,
}

impl SortCountAggregate {
    /// Groups `input` on `group_keys`, counting tuples per group.
    ///
    /// If `distinct_within_group` is set, duplicate tuples (same *full*
    /// input tuple) count once — the "explicitly request uniqueness"
    /// footnote of the paper. This is realized by a distinct sort on all
    /// columns before the counting sort.
    pub fn new(
        storage: StorageRef,
        input: BoxedOp,
        group_keys: Vec<usize>,
        distinct_within_group: bool,
        config: SortConfig,
    ) -> Result<Self> {
        let source: BoxedOp = if distinct_within_group {
            let all: Vec<usize> = (0..input.schema().arity()).collect();
            Box::new(Sort::new(
                storage.clone(),
                input,
                all,
                SortMode::Distinct,
                config,
            )?)
        } else {
            input
        };
        let appended = AppendOne::new(source);
        let schema = appended.schema.clone();
        // The trailing count column is not a sort key.
        let sort = Sort::new(
            storage,
            Box::new(appended),
            group_keys.clone(),
            SortMode::CountAggregate,
            config,
        )?;
        // Output schema: group columns then count.
        let mut fields: Vec<Field> = group_keys
            .iter()
            .map(|&k| schema.fields()[k].clone())
            .collect();
        fields.push(Field::new("count", ColumnType::Int));
        Ok(SortCountAggregate {
            sort,
            schema: Schema::new(fields),
        })
    }

    fn group_keys(&self) -> Vec<usize> {
        // The sort's keys are the group keys.
        (0..self.schema.arity() - 1).collect()
    }

    /// Polls `cancel` inside the counting sort's run-generation and merge
    /// loops.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.sort.set_cancel(cancel);
        self
    }
}

impl Operator for SortCountAggregate {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.sort.open()
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        // Sorted tuples are (all input columns..., count); project to
        // (group columns..., count). The sort's keys are the group keys in
        // their original positions of the widened schema.
        let Some(t) = self.sort.next()? else {
            return Ok(None);
        };
        let n = self.group_keys().len();
        let sort_keys = self.sort_keys();
        let mut vals = Vec::with_capacity(n + 1);
        for &k in &sort_keys {
            vals.push(t.value(k).clone());
        }
        vals.push(t.value(t.arity() - 1).clone());
        Ok(Some(Tuple::new(vals)))
    }

    fn close(&mut self) -> Result<()> {
        self.sort.close()
    }
}

impl SortCountAggregate {
    fn sort_keys(&self) -> Vec<usize> {
        self.sort.keys().to_vec()
    }
}

/// Hash-based `COUNT(*) GROUP BY`.
///
/// "Hash-based aggregate functions keep the tuples of the output relation
/// in a main memory hash-table. ... since the hash table contains only the
/// aggregation output, it is not necessary that the aggregation input fit
/// into main memory." (Section 2.2.2.)
///
/// Note the limitation the paper stresses: hash aggregation counts
/// duplicates; it *cannot* eliminate them on the fly, because only one
/// tuple per group is kept. Callers needing distinct counts must
/// pre-process — exactly the weakness hash-division removes.
pub struct HashCountAggregate {
    input: BoxedOp,
    group_keys: Vec<usize>,
    schema: Schema,
    pool: MemoryPool,
    /// When set, the aggregation table spills partial aggregates to
    /// temporary cluster files on exhaustion instead of failing — the
    /// GAMMA-style partitioned ("hybrid") aggregation.
    spill: Option<reldiv_storage::StorageRef>,
    /// Group-hash clusters for the spill path.
    spill_partitions: usize,
    cancel: CancelToken,
    state: OpState,
    drain: Option<std::vec::IntoIter<Tuple>>,
}

impl HashCountAggregate {
    /// Groups `input` on `group_keys`, counting tuples per group. The hash
    /// table draws from `pool`; exhaustion is an error (see
    /// [`HashCountAggregate::with_spill`]).
    pub fn new(input: BoxedOp, group_keys: Vec<usize>, pool: MemoryPool) -> Result<Self> {
        if group_keys.iter().any(|&k| k >= input.schema().arity()) {
            return Err(ExecError::Plan(
                "hash aggregate: group key out of range".into(),
            ));
        }
        let mut fields: Vec<Field> = group_keys
            .iter()
            .map(|&k| input.schema().fields()[k].clone())
            .collect();
        fields.push(Field::new("count", ColumnType::Int));
        Ok(HashCountAggregate {
            input,
            group_keys,
            schema: Schema::new(fields),
            pool,
            spill: None,
            spill_partitions: 8,
            cancel: CancelToken::none(),
            state: OpState::Created,
            drain: None,
        })
    }

    /// Polls `cancel` every checkpoint stride of tuples while `open`
    /// drains the input into the aggregation table (and while spill
    /// clusters are re-aggregated) — the whole aggregation happens before
    /// the first `next`, so without this a deadline cannot interrupt it.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Enables partitioned overflow handling: when the aggregation table
    /// exhausts the memory pool, partial aggregates are spooled to
    /// group-hash cluster files on `storage`'s data disk and each cluster
    /// is aggregated in its own phase — the aggregation analogue of
    /// hash-division's quotient partitioning.
    pub fn with_spill(mut self, storage: reldiv_storage::StorageRef) -> Self {
        self.spill = Some(storage);
        self
    }

    /// Output key list (group columns of the output schema).
    fn out_keys(&self) -> Vec<usize> {
        (0..self.group_keys.len()).collect()
    }

    /// Widens a group tuple with its count into an output-schema tuple.
    fn widen(group: Tuple, count: i64) -> Tuple {
        let mut vals = group.into_values();
        vals.push(Value::Int(count));
        Tuple::new(vals)
    }

    /// Aggregates `(group, count)` pairs into `table`; the caller handles
    /// a `MemoryExhausted` error by spilling.
    fn absorb(
        table: &mut ChainedTable<(Tuple, i64)>,
        out_keys: &[usize],
        group: Tuple,
        count: i64,
    ) -> Result<()> {
        let h = group.hash_on(out_keys);
        match table.find(h, |(g, _)| group.eq_on(out_keys, g, out_keys)) {
            Some(idx) => {
                table.get_mut(idx).1 += count;
                Ok(())
            }
            None => table.insert(h, (group, count)).map(|_| ()),
        }
    }
}

impl Operator for HashCountAggregate {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        use reldiv_storage::file::ScanCursor;
        use reldiv_storage::StorageManager;

        self.input.open()?;
        let out_keys = self.out_keys();
        let codec = reldiv_rel::RecordCodec::new(self.schema.clone());
        // `None` once spilling has begun (the table's memory is released
        // back to the pool before the phase tables need it).
        let mut table: Option<ChainedTable<(Tuple, i64)>> =
            Some(ChainedTable::new(&self.pool, 16)?);
        // Spill state: cluster files of widened (group..., count) records.
        let mut clusters: Option<Vec<reldiv_storage::FileId>> = None;
        let k = self.spill_partitions;

        let route = |storage: &reldiv_storage::StorageRef,
                     clusters: &mut Vec<reldiv_storage::FileId>,
                     group: Tuple,
                     count: i64|
         -> Result<()> {
            let cluster = (group.hash_on(&out_keys) as usize) % k;
            let record = codec.encode(&Self::widen(group, count))?;
            storage.borrow_mut().append(clusters[cluster], &record)?;
            Ok(())
        };

        let mut budget = 0u32;
        while let Some(t) = self.input.next()? {
            self.cancel.checkpoint(&mut budget)?;
            let group = t.project(&self.group_keys);
            if let Some(files) = &mut clusters {
                // Already spilling: route directly to the clusters.
                let storage = self.spill.as_ref().expect("clusters imply spill");
                route(storage, files, group, 1)?;
                continue;
            }
            let live = table.as_mut().expect("table present until spilling starts");
            match Self::absorb(live, &out_keys, group.clone(), 1) {
                Ok(()) => {}
                Err(e) if e.is_memory_exhausted() && self.spill.is_some() => {
                    // Overflow: open the cluster files, drain the partial
                    // aggregates into them (releasing the table's pool
                    // memory), and route from now on.
                    let storage = self.spill.as_ref().expect("checked");
                    let mut files: Vec<reldiv_storage::FileId> = {
                        let mut sm = storage.borrow_mut();
                        (0..k)
                            .map(|_| sm.create_file(StorageManager::DATA_DISK))
                            .collect()
                    };
                    let old = table.take().expect("table present");
                    for (g, c) in old.into_items() {
                        route(storage, &mut files, g, c)?;
                    }
                    route(storage, &mut files, group, 1)?;
                    clusters = Some(files);
                }
                Err(e) => return Err(e),
            }
        }
        self.input.close()?;

        let out: Vec<Tuple> = match clusters {
            None => table
                .take()
                .expect("no spill: table still present")
                .into_items()
                .map(|(g, c)| Self::widen(g, c))
                .collect(),
            Some(files) => {
                debug_assert!(table.is_none(), "spilling released the table");
                let storage = self.spill.as_ref().expect("clusters imply spill").clone();
                let mut out = Vec::new();
                for &file in &files {
                    let mut phase: ChainedTable<(Tuple, i64)> = ChainedTable::new(&self.pool, 16)?;
                    let mut cursor = ScanCursor::new(file);
                    loop {
                        self.cancel.checkpoint(&mut budget)?;
                        let next = {
                            let mut sm = storage.borrow_mut();
                            cursor.next(&mut sm)?
                        };
                        let Some((_, record)) = next else { break };
                        let t = codec.decode(&record)?;
                        let count_col = t.arity() - 1;
                        let count = t.value(count_col).as_int().unwrap_or(0);
                        let group = t.project(&out_keys);
                        // A cluster that still exhausts memory means the
                        // group population defeats k-way partitioning;
                        // surface that honestly.
                        Self::absorb(&mut phase, &out_keys, group, count)?;
                    }
                    out.extend(phase.into_items().map(|(g, c)| Self::widen(g, c)));
                }
                let mut sm = storage.borrow_mut();
                for file in files {
                    sm.delete_file(file)?;
                }
                out
            }
        };
        self.drain = Some(out.into_iter());
        self.state = OpState::Open;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        self.state.require_open()?;
        Ok(self.drain.as_mut().expect("open sets drain").next())
    }

    fn close(&mut self) -> Result<()> {
        self.drain = None;
        self.state = OpState::Closed;
        Ok(())
    }
}

/// Scalar `COUNT(*)`: consumes the input, emits one `(count)` tuple.
///
/// "The scalar aggregate operator can be implemented quite easily, e.g.,
/// using a file scan." With `distinct`, duplicate input tuples count once
/// (using a lightweight in-memory set — appropriate because the scalar
/// aggregate of a division plan counts the small divisor).
pub struct ScalarCount {
    input: BoxedOp,
    distinct: bool,
    schema: Schema,
    cancel: CancelToken,
    state: OpState,
    produced: bool,
    count: i64,
}

impl ScalarCount {
    /// Counts tuples of `input` (distinct tuples if `distinct`).
    pub fn new(input: BoxedOp, distinct: bool) -> Self {
        ScalarCount {
            input,
            distinct,
            schema: Schema::new(vec![Field::new("count", ColumnType::Int)]),
            cancel: CancelToken::none(),
            state: OpState::Created,
            produced: false,
            count: 0,
        }
    }

    /// Polls `cancel` every checkpoint stride while `open` counts.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }
}

impl Operator for ScalarCount {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.input.open()?;
        self.count = 0;
        self.produced = false;
        let mut seen = std::collections::HashSet::new();
        let mut budget = 0u32;
        while let Some(t) = self.input.next()? {
            self.cancel.checkpoint(&mut budget)?;
            if self.distinct {
                if seen.insert(t) {
                    self.count += 1;
                }
            } else {
                self.count += 1;
            }
        }
        self.input.close()?;
        self.state = OpState::Open;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        self.state.require_open()?;
        if self.produced {
            return Ok(None);
        }
        self.produced = true;
        Ok(Some(Tuple::new(vec![Value::Int(self.count)])))
    }

    fn close(&mut self) -> Result<()> {
        self.state = OpState::Closed;
        Ok(())
    }
}

/// Hash-based duplicate elimination.
///
/// The paper notes that "efficient duplicate elimination schemes based on
/// hashing exist \[Gerber1986a\], they require that the entire input must
/// be kept in main memory hash tables or in overflow files. Thus,
/// duplicate elimination based on hashing may be impractical for a very
/// large dividend relation." This operator is that scheme: the whole input
/// lives in the accounted hash table, so a large input exhausts the pool —
/// which is the point the paper makes when motivating hash-division's
/// built-in duplicate insensitivity.
pub struct HashDistinct {
    input: BoxedOp,
    pool: MemoryPool,
    cancel: CancelToken,
    state: OpState,
    drain: Option<std::vec::IntoIter<Tuple>>,
}

impl HashDistinct {
    /// Creates a distinct over all columns of `input`.
    pub fn new(input: BoxedOp, pool: MemoryPool) -> Self {
        HashDistinct {
            input,
            pool,
            cancel: CancelToken::none(),
            state: OpState::Created,
            drain: None,
        }
    }

    /// Polls `cancel` every checkpoint stride while `open` builds the
    /// distinct table.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }
}

impl Operator for HashDistinct {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn open(&mut self) -> Result<()> {
        self.input.open()?;
        let all: Vec<usize> = (0..self.input.schema().arity()).collect();
        let width = self.input.schema().record_width();
        let mut table: ChainedTable<Tuple> = ChainedTable::new(&self.pool, 16)?;
        let mut payload = self.pool.reserve(0)?;
        let mut budget = 0u32;
        while let Some(t) = self.input.next()? {
            self.cancel.checkpoint(&mut budget)?;
            let h = t.hash_on(&all);
            if table.find(h, |cand| t.eq_on(&all, cand, &all)).is_none() {
                payload.grow(width)?;
                table.insert(h, t)?;
            }
        }
        self.input.close()?;
        let out: Vec<Tuple> = table.into_items().collect();
        self.drain = Some(out.into_iter());
        self.state = OpState::Open;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        self.state.require_open()?;
        Ok(self.drain.as_mut().expect("open sets drain").next())
    }

    fn close(&mut self) -> Result<()> {
        self.drain = None;
        self.state = OpState::Closed;
        Ok(())
    }
}

/// Selects groups whose trailing count equals `target` and projects the
/// count away — the final step of division by aggregation.
pub struct HavingCount {
    input: BoxedOp,
    target: i64,
    schema: Schema,
    cancel: CancelToken,
    budget: u32,
}

impl HavingCount {
    /// Filters `(group..., count)` tuples to those with `count == target`.
    pub fn new(input: BoxedOp, target: i64) -> Result<Self> {
        let arity = input.schema().arity();
        if arity < 2 {
            return Err(ExecError::Plan(
                "HavingCount: input needs group + count columns".into(),
            ));
        }
        let cols: Vec<usize> = (0..arity - 1).collect();
        let schema = input.schema().project(&cols).map_err(ExecError::from)?;
        Ok(HavingCount {
            input,
            target,
            schema,
            cancel: CancelToken::none(),
            budget: 0,
        })
    }

    /// Polls `cancel` every checkpoint stride of rejected groups.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }
}

impl Operator for HavingCount {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.input.open()
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        let count_col = self.input.schema().arity() - 1;
        while let Some(t) = self.input.next()? {
            counters::count_comparisons(1);
            if t.value(count_col).as_int() == Some(self.target) {
                let cols: Vec<usize> = (0..count_col).collect();
                return Ok(Some(t.project(&cols)));
            }
            self.cancel.checkpoint(&mut self.budget)?;
        }
        Ok(None)
    }

    fn close(&mut self) -> Result<()> {
        self.input.close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::collect;
    use crate::scan::MemScan;
    use reldiv_rel::tuple::ints;
    use reldiv_rel::Relation;
    use reldiv_storage::manager::{StorageConfig, StorageManager};

    fn transcript() -> Relation {
        let schema = Schema::new(vec![Field::int("sid"), Field::int("cno")]);
        Relation::from_tuples(
            schema,
            vec![
                ints(&[1, 10]),
                ints(&[1, 20]),
                ints(&[2, 10]),
                ints(&[3, 10]),
                ints(&[3, 20]),
                ints(&[3, 30]),
            ],
        )
        .unwrap()
    }

    fn counts_of(rel: Relation) -> std::collections::BTreeMap<i64, i64> {
        rel.tuples()
            .iter()
            .map(|t| (t.value(0).as_int().unwrap(), t.value(1).as_int().unwrap()))
            .collect()
    }

    #[test]
    fn sort_aggregate_counts_courses_per_student() {
        let storage = StorageManager::shared(StorageConfig::paper());
        let agg = SortCountAggregate::new(
            storage,
            Box::new(MemScan::new(transcript())),
            vec![0],
            false,
            SortConfig::default(),
        )
        .unwrap();
        let out = collect(Box::new(agg)).unwrap();
        assert_eq!(counts_of(out), [(1, 2), (2, 1), (3, 3)].into());
    }

    #[test]
    fn sort_aggregate_distinct_collapses_duplicates() {
        let storage = StorageManager::shared(StorageConfig::paper());
        let mut rel = transcript();
        rel.push(ints(&[1, 10])).unwrap(); // duplicate transcript row
        rel.push(ints(&[1, 10])).unwrap();
        let agg = SortCountAggregate::new(
            storage,
            Box::new(MemScan::new(rel)),
            vec![0],
            true,
            SortConfig::default(),
        )
        .unwrap();
        let out = collect(Box::new(agg)).unwrap();
        assert_eq!(counts_of(out)[&1], 2, "duplicates counted once");
    }

    #[test]
    fn hash_aggregate_counts_courses_per_student() {
        let agg = HashCountAggregate::new(
            Box::new(MemScan::new(transcript())),
            vec![0],
            MemoryPool::unbounded(),
        )
        .unwrap();
        let out = collect(Box::new(agg)).unwrap();
        assert_eq!(counts_of(out), [(1, 2), (2, 1), (3, 3)].into());
    }

    #[test]
    fn hash_aggregate_counts_duplicates_twice() {
        // The documented limitation: hash aggregation does NOT eliminate
        // duplicates.
        let mut rel = transcript();
        rel.push(ints(&[2, 10])).unwrap();
        let agg = HashCountAggregate::new(
            Box::new(MemScan::new(rel)),
            vec![0],
            MemoryPool::unbounded(),
        )
        .unwrap();
        let out = collect(Box::new(agg)).unwrap();
        assert_eq!(counts_of(out)[&2], 2);
    }

    #[test]
    fn hash_aggregate_table_holds_groups_not_input() {
        // 10,000 input tuples, 5 groups: the pool must only pay for ~5
        // entries (the paper's 500-students-of-10,000-transcripts point).
        let schema = Schema::new(vec![Field::int("sid"), Field::int("cno")]);
        let rel = Relation::from_tuples(schema, (0..10_000).map(|i| ints(&[i % 5, i])).collect())
            .unwrap();
        let pool = MemoryPool::new(4096);
        let agg =
            HashCountAggregate::new(Box::new(MemScan::new(rel)), vec![0], pool.clone()).unwrap();
        let out = collect(Box::new(agg)).unwrap();
        assert_eq!(out.cardinality(), 5);
        assert!(out
            .tuples()
            .iter()
            .all(|t| t.value(1).as_int().unwrap() == 2000));
    }

    #[test]
    fn scalar_count_plain_and_distinct() {
        let schema = Schema::new(vec![Field::int("cno")]);
        let rel =
            Relation::from_tuples(schema, vec![ints(&[10]), ints(&[20]), ints(&[10])]).unwrap();
        let plain = collect(Box::new(ScalarCount::new(
            Box::new(MemScan::new(rel.clone())),
            false,
        )))
        .unwrap();
        assert_eq!(plain.tuples()[0], ints(&[3]));
        let distinct = collect(Box::new(ScalarCount::new(
            Box::new(MemScan::new(rel)),
            true,
        )))
        .unwrap();
        assert_eq!(distinct.tuples()[0], ints(&[2]));
    }

    #[test]
    fn scalar_count_of_empty_input_is_zero() {
        let schema = Schema::new(vec![Field::int("x")]);
        let rel = Relation::empty(schema);
        let out = collect(Box::new(ScalarCount::new(
            Box::new(MemScan::new(rel)),
            false,
        )))
        .unwrap();
        assert_eq!(out.tuples()[0], ints(&[0]));
    }

    #[test]
    fn having_count_selects_full_groups() {
        // Students with count == 2 of 2 courses: division's final step.
        let schema = Schema::new(vec![Field::int("sid"), Field::int("count")]);
        let rel = Relation::from_tuples(schema, vec![ints(&[1, 2]), ints(&[2, 1]), ints(&[3, 2])])
            .unwrap();
        let out = collect(Box::new(
            HavingCount::new(Box::new(MemScan::new(rel)), 2).unwrap(),
        ))
        .unwrap();
        let sids: Vec<i64> = out
            .tuples()
            .iter()
            .map(|t| t.value(0).as_int().unwrap())
            .collect();
        assert_eq!(sids, vec![1, 3]);
        assert_eq!(out.schema().arity(), 1, "count column projected away");
    }

    #[test]
    fn hash_distinct_removes_exact_duplicates() {
        let schema = Schema::new(vec![Field::int("a"), Field::int("b")]);
        let rel = Relation::from_tuples(
            schema,
            vec![ints(&[1, 2]), ints(&[1, 2]), ints(&[1, 3]), ints(&[1, 2])],
        )
        .unwrap();
        let d = HashDistinct::new(Box::new(MemScan::new(rel)), MemoryPool::unbounded());
        let out = collect(Box::new(d)).unwrap();
        assert_eq!(out.cardinality(), 2);
    }

    #[test]
    fn hash_distinct_holds_whole_input_and_can_exhaust_memory() {
        let schema = Schema::new(vec![Field::int("a")]);
        let rel = Relation::from_tuples(schema, (0..10_000).map(|i| ints(&[i])).collect()).unwrap();
        let mut d = HashDistinct::new(Box::new(MemScan::new(rel)), MemoryPool::new(2048));
        assert!(d.open().unwrap_err().is_memory_exhausted());
    }

    #[test]
    fn having_count_zero_matches_nothing_from_counts() {
        // Aggregation never yields zero-count groups — the subtle semantic
        // difference from true division with an empty divisor.
        let schema = Schema::new(vec![Field::int("sid"), Field::int("count")]);
        let rel = Relation::from_tuples(schema, vec![ints(&[1, 1])]).unwrap();
        let out = collect(Box::new(
            HavingCount::new(Box::new(MemScan::new(rel)), 0).unwrap(),
        ))
        .unwrap();
        assert!(out.is_empty());
    }
}

#[cfg(test)]
mod spill_tests {
    use super::*;
    use crate::op::collect;
    use crate::scan::MemScan;
    use reldiv_rel::tuple::ints;
    use reldiv_rel::Relation;
    use reldiv_storage::manager::{StorageConfig, StorageManager};

    fn groups(n: i64, per_group: i64) -> Relation {
        let schema = Schema::new(vec![Field::int("g"), Field::int("x")]);
        Relation::from_tuples(
            schema,
            (0..n * per_group).map(|i| ints(&[i % n, i])).collect(),
        )
        .unwrap()
    }

    #[test]
    fn spill_produces_the_same_counts_as_in_memory() {
        let rel = groups(3000, 4);
        // In-memory reference with an unbounded pool.
        let reference = collect(Box::new(
            HashCountAggregate::new(
                Box::new(MemScan::new(rel.clone())),
                vec![0],
                MemoryPool::unbounded(),
            )
            .unwrap(),
        ))
        .unwrap();
        // Spilling run: a pool too small for 3000 groups.
        let storage = StorageManager::shared(StorageConfig {
            buffer_bytes: 1 << 22,
            ..StorageConfig::paper()
        });
        let pool = MemoryPool::new(32 * 1024);
        let spilled = collect(Box::new(
            HashCountAggregate::new(Box::new(MemScan::new(rel)), vec![0], pool)
                .unwrap()
                .with_spill(storage.clone()),
        ))
        .unwrap();
        assert_eq!(reference.bag_counts(), spilled.bag_counts());
        assert_eq!(spilled.cardinality(), 3000);
        assert!(
            spilled
                .tuples()
                .iter()
                .all(|t| t.value(1).as_int().unwrap() == 4),
            "every group counts 4"
        );
    }

    #[test]
    fn without_spill_the_same_pressure_is_an_error() {
        let rel = groups(3000, 4);
        let mut agg = HashCountAggregate::new(
            Box::new(MemScan::new(rel)),
            vec![0],
            MemoryPool::new(32 * 1024),
        )
        .unwrap();
        assert!(agg.open().unwrap_err().is_memory_exhausted());
    }

    #[test]
    fn spill_is_a_noop_when_the_table_fits() {
        let rel = groups(10, 5);
        let storage = StorageManager::shared(StorageConfig::large());
        let out = collect(Box::new(
            HashCountAggregate::new(
                Box::new(MemScan::new(rel)),
                vec![0],
                MemoryPool::new(1 << 20),
            )
            .unwrap()
            .with_spill(storage.clone()),
        ))
        .unwrap();
        assert_eq!(out.cardinality(), 10);
        // No temporary files were written.
        assert_eq!(storage.borrow().io_stats().transfers(), 0);
        assert_eq!(storage.borrow().buffer_stats().peak_bytes, 0);
    }
}
