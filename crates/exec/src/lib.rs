//! # reldiv-exec — the query execution engine
//!
//! The paper's engine: "All relational algebra operators are implemented as
//! iterators, i.e., they support a simple open-next-close protocol. A
//! tree-structured query evaluation plan is used to execute queries by
//! demand-driven dataflow."
//!
//! This crate provides that engine:
//!
//! * [`op::Operator`] — the open-next-close iterator protocol,
//! * [`scan`] — file scans over record files and in-memory scans,
//! * [`filter`] / [`project`] — selection and projection,
//! * [`sort`] — external merge sort with early aggregation and duplicate
//!   elimination ("no intermediate run contains duplicate sort keys"), run
//!   files on the 1 KB-page run disk for high fan-in, and an on-demand
//!   final merge ("opening a sort operator prepares sorted runs and merges
//!   them until only one merge step is left; the final merge is performed
//!   on demand by the next function"),
//! * [`merge_join`] — merge join and merge semi-join over sorted inputs,
//! * [`hash_join`] — hash join and hash semi-join with bucket chaining,
//! * [`index_join`] — index join and index semi-join over B+-trees (the
//!   paper's third join option),
//! * [`agg`] — sort-based aggregation, hash-based aggregation, scalar
//!   aggregates, and the `HAVING count = N` filter used to express
//!   division by aggregation,
//! * [`hash_table`] — the bucket-chained hash table shared by the
//!   hash-based operators and by hash-division in `reldiv-core`,
//! * [`profile`] — per-operator `EXPLAIN ANALYZE` spans (wall time,
//!   tuples, abstract ops, physical page I/O), zero-cost when disabled,
//! * [`batch`] — the vectorized execution path: [`batch::BatchOperator`]
//!   processes fixed-size columnar [`reldiv_rel::Batch`]es through the
//!   packed-key hash and compare kernels, with per-batch cancellation and
//!   profiling checkpoints, plus adapters bridging to the tuple path.
//!
//! All operators draw scratch memory from the storage manager's
//! [`reldiv_storage::MemoryPool`] and count abstract operations through
//! [`reldiv_rel::counters`], so executions can be priced with the paper's
//! analytical cost units as well as measured.

#![deny(missing_docs)]

pub mod agg;
pub mod batch;
pub mod cancel;
pub mod error;
pub mod filter;
pub mod hash_join;
pub mod hash_table;
pub mod index_join;
pub mod merge_join;
pub mod op;
pub mod profile;
pub mod project;
pub mod scan;
pub mod sort;

pub use batch::{collect_batches, BatchOperator, BoxedBatchOp, ExecMode};
pub use cancel::CancelToken;
pub use error::ExecError;
pub use op::{collect, BoxedOp, Operator};
pub use profile::{ProfileSink, QueryProfile, SpanKind};

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, ExecError>;
