//! Selection.

use reldiv_rel::{Schema, Tuple, Value};

use crate::cancel::CancelToken;
use crate::op::{BoxedOp, Operator};
use crate::Result;

/// A selection predicate.
pub type Predicate = Box<dyn Fn(&Tuple) -> bool>;

/// Filters tuples by a predicate.
///
/// The paper's second example restricts the divisor by "a prior selection"
/// (courses whose title contains `"database"`); [`str_contains`] builds
/// that predicate.
///
/// The rejection loop in `next` checkpoints its [`CancelToken`] every
/// stride of rejected tuples — without it, a highly selective predicate
/// over a large input drains arbitrarily long between the caller's
/// per-returned-tuple cancellation polls.
pub struct Filter {
    input: BoxedOp,
    predicate: Predicate,
    cancel: CancelToken,
    budget: u32,
}

impl Filter {
    /// Creates a filter over `input`.
    pub fn new(input: BoxedOp, predicate: Predicate) -> Self {
        Filter {
            input,
            predicate,
            cancel: CancelToken::none(),
            budget: 0,
        }
    }

    /// Polls `cancel` every checkpoint stride of rejected tuples.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }
}

impl Operator for Filter {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn open(&mut self) -> Result<()> {
        self.input.open()
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        while let Some(t) = self.input.next()? {
            if (self.predicate)(&t) {
                return Ok(Some(t));
            }
            self.cancel.checkpoint(&mut self.budget)?;
        }
        Ok(None)
    }

    fn close(&mut self) -> Result<()> {
        self.input.close()
    }
}

/// Predicate: string column `column` contains `needle` (case-insensitive).
///
/// Mirrors the paper's "courses for which the title attribute contains the
/// string 'database'".
pub fn str_contains(column: usize, needle: &str) -> Predicate {
    let needle = needle.to_ascii_lowercase();
    Box::new(move |t: &Tuple| match t.value(column) {
        Value::Str(s) => s.to_ascii_lowercase().contains(&needle),
        Value::Int(_) => false,
    })
}

/// Predicate: integer column `column` equals `target`.
pub fn int_equals(column: usize, target: i64) -> Predicate {
    Box::new(move |t: &Tuple| t.value(column).as_int() == Some(target))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::collect;
    use crate::scan::MemScan;
    use reldiv_rel::schema::Field;
    use reldiv_rel::Relation;

    fn courses() -> Relation {
        let schema = Schema::new(vec![Field::int("course-no"), Field::str("title", 32)]);
        let rows = [
            (1, "Intro to Database Systems"),
            (2, "Optics"),
            (3, "database implementation"),
            (4, "Compilers"),
        ];
        Relation::from_tuples(
            schema,
            rows.iter()
                .map(|&(no, title)| Tuple::new(vec![Value::Int(no), Value::from(title)]))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn str_contains_selects_database_courses() {
        let filtered = collect(Box::new(Filter::new(
            Box::new(MemScan::new(courses())),
            str_contains(1, "database"),
        )))
        .unwrap();
        let nos: Vec<i64> = filtered
            .tuples()
            .iter()
            .map(|t| t.value(0).as_int().unwrap())
            .collect();
        assert_eq!(nos, vec![1, 3]);
    }

    #[test]
    fn int_equals_selects_one_course() {
        let filtered = collect(Box::new(Filter::new(
            Box::new(MemScan::new(courses())),
            int_equals(0, 2),
        )))
        .unwrap();
        assert_eq!(filtered.cardinality(), 1);
    }

    #[test]
    fn str_contains_on_int_column_matches_nothing() {
        let filtered = collect(Box::new(Filter::new(
            Box::new(MemScan::new(courses())),
            str_contains(0, "1"),
        )))
        .unwrap();
        assert!(filtered.is_empty());
    }

    #[test]
    fn filter_preserves_schema() {
        let f = Filter::new(Box::new(MemScan::new(courses())), int_equals(0, 1));
        assert_eq!(f.schema().arity(), 2);
    }
}
