//! Cooperative cancellation for long-running operators.
//!
//! Queries in the service run under per-query deadlines. Operators cannot
//! be preempted — they cooperate by polling a [`CancelToken`] inside their
//! tuple loops. To keep the fault-free overhead negligible the hot loops
//! use [`CancelToken::checkpoint`], which only consults the clock once
//! every [`CHECK_STRIDE`] calls.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use crate::{ExecError, Result};

/// How many `checkpoint` calls elapse between actual clock reads.
///
/// `Instant::now` costs tens of nanoseconds; at one check per 1024 tuples
/// the cancellation overhead is unmeasurable while the reaction latency
/// stays far below any realistic deadline granularity.
pub const CHECK_STRIDE: u32 = 1024;

/// A deadline carried through an operator tree.
///
/// The token is `Copy` plain data (an optional [`Instant`] plus an
/// optional abort flag reference), so plumbing it through configs and
/// operators costs nothing. A token without a deadline or abort flag
/// never cancels, which keeps non-service callers unaffected.
///
/// The abort flag is a `&'static AtomicBool` rather than an `Arc` so the
/// token stays `Copy`; the owner (e.g. a service being hard-killed) leaks
/// one flag for its lifetime and trips it to cancel every in-flight
/// execution at the next checkpoint.
#[derive(Debug, Clone, Copy, Default)]
pub struct CancelToken {
    deadline: Option<Instant>,
    abort: Option<&'static AtomicBool>,
}

// Manual equality: two tokens are equal when they share the same deadline
// and the same abort flag *object* (pointer identity — an `AtomicBool`'s
// current value is not part of the token's identity).
impl PartialEq for CancelToken {
    fn eq(&self, other: &CancelToken) -> bool {
        self.deadline == other.deadline
            && match (self.abort, other.abort) {
                (None, None) => true,
                (Some(a), Some(b)) => std::ptr::eq(a, b),
                _ => false,
            }
    }
}

impl Eq for CancelToken {}

impl CancelToken {
    /// A token that never cancels (the default).
    pub fn none() -> CancelToken {
        CancelToken {
            deadline: None,
            abort: None,
        }
    }

    /// A token that cancels once `timeout` has elapsed from now.
    pub fn after(timeout: Duration) -> CancelToken {
        CancelToken {
            deadline: Some(Instant::now() + timeout),
            abort: None,
        }
    }

    /// A token that cancels at the given instant.
    pub fn at(deadline: Instant) -> CancelToken {
        CancelToken {
            deadline: Some(deadline),
            abort: None,
        }
    }

    /// The same token, additionally cancelled whenever `flag` is set.
    ///
    /// Composes with any deadline already on the token: whichever trips
    /// first cancels the execution.
    pub fn with_abort(self, flag: &'static AtomicBool) -> CancelToken {
        CancelToken {
            deadline: self.deadline,
            abort: Some(flag),
        }
    }

    /// The deadline, if one is set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Whether the deadline has passed or the abort flag is set. Reads
    /// the clock; use [`CancelToken::checkpoint`] in per-tuple loops.
    pub fn expired(&self) -> bool {
        if let Some(flag) = self.abort {
            if flag.load(Ordering::Relaxed) {
                return true;
            }
        }
        match self.deadline {
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }

    /// Returns `Err(ExecError::Cancelled)` if the deadline has passed.
    pub fn check(&self) -> Result<()> {
        if self.expired() {
            Err(ExecError::Cancelled)
        } else {
            Ok(())
        }
    }

    /// Strided check for hot loops: consults the clock only when `*budget`
    /// reaches zero (resetting it to [`CHECK_STRIDE`]), so calling this
    /// per tuple costs a decrement in the common case.
    ///
    /// ```
    /// # use reldiv_exec::cancel::CancelToken;
    /// let token = CancelToken::none();
    /// let mut budget = 0u32;
    /// for _tuple in 0..10_000 {
    ///     token.checkpoint(&mut budget).expect("no deadline set");
    /// }
    /// ```
    #[inline]
    pub fn checkpoint(&self, budget: &mut u32) -> Result<()> {
        if self.deadline.is_none() && self.abort.is_none() {
            return Ok(());
        }
        if *budget == 0 {
            *budget = CHECK_STRIDE;
            self.check()
        } else {
            *budget -= 1;
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_expires() {
        let t = CancelToken::none();
        assert!(!t.expired());
        assert!(t.check().is_ok());
        assert_eq!(t.deadline(), None);
        let mut budget = 0;
        for _ in 0..(CHECK_STRIDE * 3) {
            assert!(t.checkpoint(&mut budget).is_ok());
        }
    }

    #[test]
    fn elapsed_deadline_cancels() {
        let t = CancelToken::after(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        assert!(t.expired());
        assert_eq!(t.check(), Err(ExecError::Cancelled));
    }

    #[test]
    fn future_deadline_does_not_cancel_yet() {
        let t = CancelToken::after(Duration::from_secs(3600));
        assert!(!t.expired());
        assert!(t.check().is_ok());
    }

    #[test]
    fn abort_flag_cancels_without_a_deadline() {
        let flag: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
        let t = CancelToken::none().with_abort(flag);
        assert!(!t.expired());
        assert!(t.check().is_ok());
        flag.store(true, Ordering::Relaxed);
        assert!(t.expired());
        assert_eq!(t.check(), Err(ExecError::Cancelled));
    }

    #[test]
    fn abort_flag_composes_with_a_future_deadline() {
        let flag: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
        let t = CancelToken::after(Duration::from_secs(3600)).with_abort(flag);
        assert!(!t.expired());
        flag.store(true, Ordering::Relaxed);
        // The deadline is an hour away but the abort flag trips first,
        // and a checkpoint observes it within one stride.
        let mut budget = CHECK_STRIDE;
        let mut cancelled = false;
        for _ in 0..=(CHECK_STRIDE + 1) {
            if t.checkpoint(&mut budget).is_err() {
                cancelled = true;
                break;
            }
        }
        assert!(
            cancelled,
            "a tripped abort flag must cancel within one stride"
        );
    }

    #[test]
    fn checkpoint_reaches_the_clock_within_one_stride() {
        let t = CancelToken::at(Instant::now() - Duration::from_millis(1));
        let mut budget = CHECK_STRIDE;
        let mut cancelled = false;
        for _ in 0..=(CHECK_STRIDE + 1) {
            if t.checkpoint(&mut budget).is_err() {
                cancelled = true;
                break;
            }
        }
        assert!(cancelled, "an expired token must cancel within one stride");
    }
}
