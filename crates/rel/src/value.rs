//! Attribute values.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A single attribute value.
///
/// The paper's experiments used fixed-width binary records (8-byte divisor
/// and quotient records, 16-byte dividend records); integers cover that case
/// exactly. Strings support the paper's motivating examples (course titles
/// restricted to contain `"database"`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// Short name of the value's type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "Int",
            Value::Str(_) => "Str",
        }
    }

    /// Returns the integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Str(_) => None,
        }
    }

    /// Returns the string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Str(s) => Some(s),
        }
    }

    /// Total order across values.
    ///
    /// Values of the same type compare naturally; across types, integers
    /// order before strings. A total order (rather than a partial one) keeps
    /// sort-based operators total and panic-free even on heterogeneous
    /// columns, which simplifies property testing.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Int(_), Value::Str(_)) => Ordering::Less,
            (Value::Str(_), Value::Int(_)) => Ordering::Greater,
        }
    }

    /// Feeds this value into a hasher, with a type tag so that `Int(0)` and
    /// `Str("")` cannot collide structurally.
    pub fn hash_into<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Int(i) => {
                state.write_u8(0);
                i.hash(state);
            }
            Value::Str(s) => {
                state.write_u8(1);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash_into(&mut h);
        h.finish()
    }

    #[test]
    fn int_ordering_is_natural() {
        assert_eq!(Value::Int(1).total_cmp(&Value::Int(2)), Ordering::Less);
        assert_eq!(Value::Int(2).total_cmp(&Value::Int(2)), Ordering::Equal);
        assert_eq!(Value::Int(3).total_cmp(&Value::Int(2)), Ordering::Greater);
    }

    #[test]
    fn str_ordering_is_lexicographic() {
        assert_eq!(
            Value::from("apple").total_cmp(&Value::from("banana")),
            Ordering::Less
        );
        assert_eq!(
            Value::from("banana").total_cmp(&Value::from("banana")),
            Ordering::Equal
        );
    }

    #[test]
    fn cross_type_order_is_total_and_antisymmetric() {
        let i = Value::Int(10);
        let s = Value::from("10");
        assert_eq!(i.total_cmp(&s), Ordering::Less);
        assert_eq!(s.total_cmp(&i), Ordering::Greater);
    }

    #[test]
    fn type_tag_prevents_structural_hash_collisions() {
        // Not a guarantee for arbitrary inputs, but the tagged encoding must
        // at least separate the all-zero int from the empty string.
        assert_ne!(hash_of(&Value::Int(0)), hash_of(&Value::from("")));
    }

    #[test]
    fn accessors_roundtrip() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_str(), None);
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from("x").as_int(), None);
    }

    #[test]
    fn display_formats_payload_only() {
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::from("db").to_string(), "db");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(5i32), Value::Int(5));
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from(String::from("a")), Value::Str("a".into()));
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::Int(0).type_name(), "Int");
        assert_eq!(Value::from("").type_name(), "Str");
    }
}
