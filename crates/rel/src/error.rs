//! Error type for the data layer.

use std::fmt;

/// Errors raised by schema, tuple, and record-codec operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelError {
    /// A tuple's arity does not match the schema it is used with.
    ArityMismatch {
        /// Number of fields the schema declares.
        expected: usize,
        /// Number of values the tuple carries.
        actual: usize,
    },
    /// A value's type does not match the column type declared by the schema.
    TypeMismatch {
        /// Zero-based column index where the mismatch occurred.
        column: usize,
        /// Declared column type, rendered for display.
        expected: String,
        /// Actual value variant, rendered for display.
        actual: String,
    },
    /// A fixed-width string column received a string longer than its width.
    StringTooLong {
        /// Zero-based column index.
        column: usize,
        /// Declared fixed width in bytes.
        width: usize,
        /// Length of the offending string in bytes.
        len: usize,
    },
    /// A record could not be decoded (truncated or corrupt bytes).
    Decode(String),
    /// An attribute index referenced a column outside the schema.
    ColumnOutOfRange {
        /// The offending column index.
        index: usize,
        /// Number of columns in the schema.
        arity: usize,
    },
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::ArityMismatch { expected, actual } => {
                write!(
                    f,
                    "arity mismatch: schema has {expected} fields, tuple has {actual}"
                )
            }
            RelError::TypeMismatch {
                column,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "type mismatch in column {column}: expected {expected}, got {actual}"
                )
            }
            RelError::StringTooLong { column, width, len } => {
                write!(
                    f,
                    "string too long for column {column}: width {width}, got {len} bytes"
                )
            }
            RelError::Decode(msg) => write!(f, "record decode error: {msg}"),
            RelError::ColumnOutOfRange { index, arity } => {
                write!(
                    f,
                    "column index {index} out of range for schema of arity {arity}"
                )
            }
        }
    }
}

impl std::error::Error for RelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = RelError::ArityMismatch {
            expected: 2,
            actual: 3,
        };
        assert!(e.to_string().contains("arity mismatch"));
        let e = RelError::TypeMismatch {
            column: 1,
            expected: "Int".into(),
            actual: "Str".into(),
        };
        assert!(e.to_string().contains("column 1"));
        let e = RelError::StringTooLong {
            column: 0,
            width: 8,
            len: 12,
        };
        assert!(e.to_string().contains("width 8"));
        let e = RelError::Decode("truncated".into());
        assert!(e.to_string().contains("truncated"));
        let e = RelError::ColumnOutOfRange { index: 5, arity: 2 };
        assert!(e.to_string().contains("out of range"));
    }
}
