//! Fixed-width record encoding of tuples.
//!
//! The paper's storage substrate is record-oriented: relations live in
//! extent-based files of fixed-width binary records (8-byte divisor and
//! quotient records, 16-byte dividend records). [`RecordCodec`] converts
//! between [`Tuple`]s and those byte records according to a [`Schema`].
//!
//! Integers are encoded little-endian in 8 bytes; strings are zero-padded
//! to their declared fixed width (embedded NUL bytes are therefore not
//! representable, which the encoder rejects).

use bytes::{Buf, BufMut};

use crate::error::RelError;
use crate::schema::{ColumnType, Schema};
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Result;

/// Encoder/decoder for fixed-width records of one schema.
#[derive(Debug, Clone)]
pub struct RecordCodec {
    schema: Schema,
}

impl RecordCodec {
    /// Creates a codec for `schema`.
    pub fn new(schema: Schema) -> Self {
        RecordCodec { schema }
    }

    /// The codec's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Encoded record size in bytes.
    pub fn record_width(&self) -> usize {
        self.schema.record_width()
    }

    /// Encodes `tuple` into a fresh byte vector.
    pub fn encode(&self, tuple: &Tuple) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(self.record_width());
        self.encode_into(tuple, &mut out)?;
        Ok(out)
    }

    /// Encodes `tuple`, appending to `out`.
    pub fn encode_into(&self, tuple: &Tuple, out: &mut Vec<u8>) -> Result<()> {
        self.schema.validate(tuple.values())?;
        for (i, (field, value)) in self.schema.fields().iter().zip(tuple.values()).enumerate() {
            match (&field.ty, value) {
                (ColumnType::Int, Value::Int(v)) => out.put_i64_le(*v),
                (ColumnType::Str(w), Value::Str(s)) => {
                    if s.as_bytes().contains(&0) {
                        return Err(RelError::Decode(format!(
                            "column {i}: embedded NUL not representable in fixed-width string"
                        )));
                    }
                    out.put_slice(s.as_bytes());
                    out.put_bytes(0, w - s.len());
                }
                // validate() above guarantees type agreement.
                _ => unreachable!("schema validation admitted a mismatched value"),
            }
        }
        Ok(())
    }

    /// Decodes one record from the front of `bytes`.
    pub fn decode(&self, mut bytes: &[u8]) -> Result<Tuple> {
        if bytes.len() < self.record_width() {
            return Err(RelError::Decode(format!(
                "record truncated: need {} bytes, have {}",
                self.record_width(),
                bytes.len()
            )));
        }
        let mut values = Vec::with_capacity(self.schema.arity());
        for field in self.schema.fields() {
            match field.ty {
                ColumnType::Int => values.push(Value::Int(bytes.get_i64_le())),
                ColumnType::Str(w) => {
                    let raw = &bytes[..w];
                    let end = raw.iter().position(|&b| b == 0).unwrap_or(w);
                    let s = std::str::from_utf8(&raw[..end])
                        .map_err(|e| RelError::Decode(format!("invalid UTF-8: {e}")))?;
                    values.push(Value::Str(s.to_owned()));
                    bytes.advance(w);
                }
            }
        }
        Ok(Tuple::new(values))
    }
}

/// Encodes the columns `cols` of `tuple` as an **order-preserving** byte
/// string: byte-wise comparison of two encodings orders exactly like
/// [`Tuple::cmp_keys`] on the same columns.
///
/// This is the key format for B+-tree indexes: equality search needs only
/// injectivity, range scans need order preservation.
///
/// * `Int(v)`: tag `0x01`, then `v` with the sign bit flipped, big-endian
///   (so negative values order before positive ones byte-wise),
/// * `Str(s)`: tag `0x02`, then the bytes, then a `0x00` terminator
///   (strings containing NUL are not representable, matching the
///   fixed-width codec's restriction).
pub fn index_key(tuple: &Tuple, cols: &[usize]) -> Vec<u8> {
    let mut out = Vec::with_capacity(cols.len() * 9);
    for &c in cols {
        match tuple.value(c) {
            Value::Int(v) => {
                out.push(0x01);
                out.extend_from_slice(&((*v as u64) ^ (1 << 63)).to_be_bytes());
            }
            Value::Str(s) => {
                out.push(0x02);
                out.extend_from_slice(s.as_bytes());
                out.push(0x00);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::tuple::ints;

    #[test]
    fn index_key_preserves_integer_order() {
        let values = [i64::MIN, -5, -1, 0, 1, 42, i64::MAX];
        let keys: Vec<Vec<u8>> = values
            .iter()
            .map(|&v| index_key(&ints(&[v]), &[0]))
            .collect();
        for w in keys.windows(2) {
            assert!(w[0] < w[1], "byte order must match numeric order");
        }
    }

    #[test]
    fn index_key_preserves_string_order_and_is_prefix_free() {
        let a = Tuple::new(vec![Value::from("ab"), Value::Int(0)]);
        let b = Tuple::new(vec![Value::from("abc"), Value::Int(0)]);
        let ka = index_key(&a, &[0, 1]);
        let kb = index_key(&b, &[0, 1]);
        assert!(ka < kb);
        // The terminator keeps ("ab", big-int) from colliding with
        // ("abc", ...) prefixes.
        assert!(!kb.starts_with(&ka));
    }

    #[test]
    fn index_key_is_injective_across_types() {
        let i = index_key(&Tuple::new(vec![Value::Int(0x61)]), &[0]);
        let s = index_key(&Tuple::new(vec![Value::from("a")]), &[0]);
        assert_ne!(i, s, "type tags keep Int(0x61) and \"a\" apart");
    }

    #[test]
    fn index_key_respects_column_selection_and_order() {
        let t = ints(&[7, 8]);
        assert_ne!(index_key(&t, &[0, 1]), index_key(&t, &[1, 0]));
        assert_eq!(index_key(&t, &[1]), index_key(&ints(&[99, 8]), &[1]));
    }

    fn codec(fields: Vec<Field>) -> RecordCodec {
        RecordCodec::new(Schema::new(fields))
    }

    #[test]
    fn int_roundtrip_is_exact_and_16_bytes() {
        let c = codec(vec![Field::int("student-id"), Field::int("course-no")]);
        assert_eq!(c.record_width(), 16);
        let t = ints(&[i64::MIN, i64::MAX]);
        let bytes = c.encode(&t).unwrap();
        assert_eq!(bytes.len(), 16);
        assert_eq!(c.decode(&bytes).unwrap(), t);
    }

    #[test]
    fn string_roundtrip_pads_and_trims() {
        let c = codec(vec![Field::str("title", 10)]);
        let t = Tuple::new(vec![Value::from("db")]);
        let bytes = c.encode(&t).unwrap();
        assert_eq!(bytes.len(), 10);
        assert_eq!(&bytes[..2], b"db");
        assert!(bytes[2..].iter().all(|&b| b == 0));
        assert_eq!(c.decode(&bytes).unwrap(), t);
    }

    #[test]
    fn full_width_string_roundtrips_without_terminator() {
        let c = codec(vec![Field::str("s", 3)]);
        let t = Tuple::new(vec![Value::from("abc")]);
        let bytes = c.encode(&t).unwrap();
        assert_eq!(c.decode(&bytes).unwrap(), t);
    }

    #[test]
    fn mixed_schema_roundtrip() {
        let c = codec(vec![
            Field::int("id"),
            Field::str("name", 6),
            Field::int("x"),
        ]);
        let t = Tuple::new(vec![Value::Int(7), Value::from("ann"), Value::Int(-1)]);
        let bytes = c.encode(&t).unwrap();
        assert_eq!(bytes.len(), 22);
        assert_eq!(c.decode(&bytes).unwrap(), t);
    }

    #[test]
    fn decode_rejects_truncated_records() {
        let c = codec(vec![Field::int("id")]);
        assert!(matches!(c.decode(&[0u8; 4]), Err(RelError::Decode(_))));
    }

    #[test]
    fn encode_rejects_oversized_strings_and_type_mismatch() {
        let c = codec(vec![Field::str("s", 2)]);
        assert!(matches!(
            c.encode(&Tuple::new(vec![Value::from("abc")])),
            Err(RelError::StringTooLong { .. })
        ));
        assert!(matches!(
            c.encode(&ints(&[1])),
            Err(RelError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn encode_rejects_embedded_nul() {
        let c = codec(vec![Field::str("s", 4)]);
        let t = Tuple::new(vec![Value::from("a\0b")]);
        assert!(matches!(c.encode(&t), Err(RelError::Decode(_))));
    }

    #[test]
    fn decode_rejects_invalid_utf8() {
        let c = codec(vec![Field::str("s", 2)]);
        assert!(matches!(c.decode(&[0xff, 0xfe]), Err(RelError::Decode(_))));
    }
}
