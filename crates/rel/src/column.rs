//! Columnar batches and the packed-key kernels of the vectorized path.
//!
//! A [`Batch`] holds up to a fixed number of rows of one schema in
//! column-major [`ColumnVec`]s. The batch operators in `reldiv-exec`
//! process whole batches at a time, paying one virtual call, one cancel
//! poll, and one profile-span update per batch instead of per tuple.
//!
//! The kernels here are **bit-identical** to the tuple-at-a-time entry
//! points on [`Tuple`]:
//!
//! * [`Batch::hash_rows`] folds exactly the byte stream of
//!   [`Tuple::hash_on`] (the tagged FNV-1a encoding of each key value),
//!   so hash-table bucket layouts — and therefore output orders — are
//!   identical between the two execution paths;
//! * [`Batch::row_eq_tuple`] applies the same total order as
//!   [`Tuple::eq_on`].
//!
//! Abstract-operation accounting is bulk but equal in total: hashing a
//! batch of `n` rows counts `n` `Hash` operations, the same as `n` calls
//! to `hash_on`; each row-vs-tuple equality counts one `Comp`.

use std::hash::{Hash, Hasher};

use crate::counters;
use crate::schema::{ColumnType, Schema};
use crate::tuple::{Fnv1a, Tuple};
use crate::value::Value;

/// One column of a [`Batch`], in row order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnVec {
    /// A column of 64-bit integers.
    Int(Vec<i64>),
    /// A column of strings.
    Str(Vec<String>),
}

impl ColumnVec {
    /// An empty column of the given type, with room for `capacity` rows.
    pub fn with_capacity(ty: ColumnType, capacity: usize) -> ColumnVec {
        match ty {
            ColumnType::Int => ColumnVec::Int(Vec::with_capacity(capacity)),
            ColumnType::Str(_) => ColumnVec::Str(Vec::with_capacity(capacity)),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnVec::Int(v) => v.len(),
            ColumnVec::Str(v) => v.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at `row`, cloned out of the column.
    pub fn value(&self, row: usize) -> Value {
        match self {
            ColumnVec::Int(v) => Value::Int(v[row]),
            ColumnVec::Str(v) => Value::Str(v[row].clone()),
        }
    }

    /// Appends a value; panics on a type mismatch (batch construction
    /// sites validate against the schema).
    pub fn push(&mut self, value: &Value) {
        match (self, value) {
            (ColumnVec::Int(v), Value::Int(i)) => v.push(*i),
            (ColumnVec::Str(v), Value::Str(s)) => v.push(s.clone()),
            (col, value) => panic!(
                "column/value type mismatch: {} into {} column",
                value.type_name(),
                match col {
                    ColumnVec::Int(_) => "Int",
                    ColumnVec::Str(_) => "Str",
                }
            ),
        }
    }

    fn push_from(&mut self, other: &ColumnVec, row: usize) {
        match (self, other) {
            (ColumnVec::Int(dst), ColumnVec::Int(src)) => dst.push(src[row]),
            (ColumnVec::Str(dst), ColumnVec::Str(src)) => dst.push(src[row].clone()),
            _ => panic!("column type mismatch in push_from"),
        }
    }
}

/// A fixed-capacity columnar chunk of rows sharing one schema.
///
/// The unit of work of the vectorized execution path: operators consume
/// and produce batches, and the hash/compare kernels below run over a
/// batch's key columns in tight per-column loops.
#[derive(Debug, Clone)]
pub struct Batch {
    schema: Schema,
    columns: Vec<ColumnVec>,
    len: usize,
}

impl Batch {
    /// An empty batch for `schema`, with per-column room for `capacity`
    /// rows.
    pub fn with_capacity(schema: Schema, capacity: usize) -> Batch {
        let columns = schema
            .fields()
            .iter()
            .map(|f| ColumnVec::with_capacity(f.ty, capacity))
            .collect();
        Batch {
            schema,
            columns,
            len: 0,
        }
    }

    /// The batch's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The columns, in schema order.
    pub fn columns(&self) -> &[ColumnVec] {
        &self.columns
    }

    /// The column at `index`.
    pub fn column(&self, index: usize) -> &ColumnVec {
        &self.columns[index]
    }

    /// Appends one row from a tuple; the tuple must conform to the
    /// batch's schema.
    #[inline]
    pub fn push_tuple(&mut self, tuple: &Tuple) {
        debug_assert_eq!(tuple.arity(), self.schema.arity());
        for (col, value) in self.columns.iter_mut().zip(tuple.values()) {
            col.push(value);
        }
        self.len += 1;
    }

    /// Appends row `row` of `other`; the schemas must have identical
    /// column types (checked per column in debug builds).
    #[inline]
    pub fn push_row_from(&mut self, other: &Batch, row: usize) {
        for (dst, src) in self.columns.iter_mut().zip(&other.columns) {
            dst.push_from(src, row);
        }
        self.len += 1;
    }

    /// Materializes row `row` as a [`Tuple`].
    #[inline]
    pub fn tuple(&self, row: usize) -> Tuple {
        Tuple::new(self.columns.iter().map(|c| c.value(row)).collect())
    }

    /// Materializes row `row` projected onto `keys`, in that order —
    /// the batch analogue of [`Tuple::project`].
    #[inline]
    pub fn tuple_projected(&self, keys: &[usize], row: usize) -> Tuple {
        Tuple::new(keys.iter().map(|&k| self.columns[k].value(row)).collect())
    }

    /// Drains the batch into tuples, in row order.
    pub fn into_tuples(self) -> Vec<Tuple> {
        (0..self.len).map(|row| self.tuple(row)).collect()
    }

    /// A new batch with the columns at `keys`, in that order (row count
    /// unchanged). Fails if an index is out of range.
    pub fn project(&self, keys: &[usize]) -> crate::Result<Batch> {
        let schema = self.schema.project(keys)?;
        let columns = keys.iter().map(|&k| self.columns[k].clone()).collect();
        Ok(Batch {
            schema,
            columns,
            len: self.len,
        })
    }

    /// A new batch keeping only the rows at `rows`, in that order.
    pub fn gather(&self, rows: &[usize]) -> Batch {
        let mut out = Batch::with_capacity(self.schema.clone(), rows.len());
        for &row in rows {
            out.push_row_from(self, row);
        }
        out
    }

    /// The packed-key hash kernel: FNV-1a over the tagged encoding of
    /// the key columns, one output per row.
    ///
    /// Byte-for-byte the stream [`Tuple::hash_on`] folds, so the two
    /// paths agree on every hash value. Counts one `Hash` per row (in
    /// bulk).
    pub fn hash_rows(&self, keys: &[usize]) -> Vec<u64> {
        counters::count_hashes(self.len as u64);
        let mut states: Vec<Fnv1a> = (0..self.len).map(|_| Fnv1a::new()).collect();
        for &k in keys {
            match &self.columns[k] {
                ColumnVec::Int(vs) => {
                    for (state, v) in states.iter_mut().zip(vs) {
                        // Value::hash_into: tag byte 0, then i64::hash
                        // (which writes the native-endian bytes).
                        state.write_u8(0);
                        state.write_u64(*v as u64);
                    }
                }
                ColumnVec::Str(vs) => {
                    for (state, s) in states.iter_mut().zip(vs) {
                        // Value::hash_into: tag byte 1, then str::hash
                        // (bytes plus a 0xff terminator).
                        state.write_u8(1);
                        s.as_str().hash(state);
                    }
                }
            }
        }
        states.into_iter().map(|s| s.finish()).collect()
    }

    /// Hashes a single row's key columns — same stream as
    /// [`Batch::hash_rows`], for the lazy second hash of hash-division
    /// (quotient keys are only hashed for dividend rows that matched a
    /// divisor). Counts one `Hash`.
    #[inline]
    pub fn hash_row(&self, keys: &[usize], row: usize) -> u64 {
        counters::count_hashes(1);
        let mut state = Fnv1a::new();
        for &k in keys {
            match &self.columns[k] {
                ColumnVec::Int(vs) => {
                    state.write_u8(0);
                    state.write_u64(vs[row] as u64);
                }
                ColumnVec::Str(vs) => {
                    state.write_u8(1);
                    vs[row].as_str().hash(&mut state);
                }
            }
        }
        state.finish()
    }

    /// Equality of row `row` on `keys` against `other` on `other_keys`,
    /// with the same cross-type total order as [`Tuple::eq_on`]. Counts
    /// one `Comp`.
    #[inline]
    pub fn row_eq_tuple(
        &self,
        keys: &[usize],
        row: usize,
        other: &Tuple,
        other_keys: &[usize],
    ) -> bool {
        counters::count_comparisons(1);
        debug_assert_eq!(keys.len(), other_keys.len());
        for (&a, &b) in keys.iter().zip(other_keys) {
            let equal = match (&self.columns[a], other.value(b)) {
                (ColumnVec::Int(vs), Value::Int(o)) => vs[row] == *o,
                (ColumnVec::Str(vs), Value::Str(o)) => vs[row] == *o,
                _ => false,
            };
            if !equal {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::tuple::ints;

    fn mixed_schema() -> Schema {
        Schema::new(vec![
            Field::int("id"),
            Field::str("name", 12),
            Field::int("score"),
        ])
    }

    fn mixed_rows() -> Vec<Tuple> {
        vec![
            Tuple::new(vec![Value::Int(1), Value::from("ann"), Value::Int(-7)]),
            Tuple::new(vec![Value::Int(2), Value::from(""), Value::Int(0)]),
            Tuple::new(vec![Value::Int(-3), Value::from("barb"), Value::Int(99)]),
        ]
    }

    fn batch_of(schema: Schema, rows: &[Tuple]) -> Batch {
        let mut b = Batch::with_capacity(schema, rows.len());
        for t in rows {
            b.push_tuple(t);
        }
        b
    }

    #[test]
    fn kernel_hashes_equal_tuple_hash_on() {
        // The load-bearing identity: the vectorized hash kernel must
        // reproduce Tuple::hash_on bit-for-bit on every key subset, so
        // batch-built hash tables lay out identically.
        let rows = mixed_rows();
        let batch = batch_of(mixed_schema(), &rows);
        for keys in [
            vec![0usize],
            vec![1],
            vec![2],
            vec![0, 1],
            vec![1, 0],
            vec![0, 1, 2],
            vec![2, 1],
        ] {
            let kernel = batch.hash_rows(&keys);
            for (row, t) in rows.iter().enumerate() {
                assert_eq!(kernel[row], t.hash_on(&keys), "keys {keys:?} row {row}");
                assert_eq!(batch.hash_row(&keys, row), t.hash_on(&keys));
            }
        }
    }

    #[test]
    fn bulk_hash_counts_one_hash_per_row() {
        let rows = mixed_rows();
        let batch = batch_of(mixed_schema(), &rows);
        counters::reset();
        let _ = batch.hash_rows(&[0, 1]);
        assert_eq!(counters::snapshot().hashes, rows.len() as u64);
    }

    #[test]
    fn row_eq_tuple_matches_eq_on_and_counts_one_comp() {
        let rows = mixed_rows();
        let batch = batch_of(mixed_schema(), &rows);
        let probe = Tuple::new(vec![Value::from("ann"), Value::Int(1)]);
        counters::reset();
        assert!(batch.row_eq_tuple(&[1, 0], 0, &probe, &[0, 1]));
        assert!(!batch.row_eq_tuple(&[1, 0], 1, &probe, &[0, 1]));
        assert_eq!(counters::snapshot().comparisons, 2);
        // Cross-type mismatch is inequality, never a panic.
        assert!(!batch.row_eq_tuple(&[0], 0, &Tuple::new(vec![Value::from("1")]), &[0]));
    }

    #[test]
    fn round_trip_through_tuples() {
        let rows = mixed_rows();
        let batch = batch_of(mixed_schema(), &rows);
        assert_eq!(batch.len(), 3);
        for (row, t) in rows.iter().enumerate() {
            assert_eq!(&batch.tuple(row), t);
        }
        assert_eq!(batch.clone().into_tuples(), rows);
    }

    #[test]
    fn project_and_gather_select_columns_and_rows() {
        let batch = batch_of(mixed_schema(), &mixed_rows());
        let projected = batch.project(&[2, 0]).unwrap();
        assert_eq!(projected.schema().fields()[0].name, "score");
        assert_eq!(projected.tuple(0), ints(&[-7, 1]));
        assert!(batch.project(&[9]).is_err());
        let gathered = batch.gather(&[2, 0]);
        assert_eq!(gathered.len(), 2);
        assert_eq!(gathered.tuple(0), batch.tuple(2));
        assert_eq!(gathered.tuple(1), batch.tuple(0));
    }

    #[test]
    fn tuple_projected_matches_tuple_project() {
        let rows = mixed_rows();
        let batch = batch_of(mixed_schema(), &rows);
        for (row, t) in rows.iter().enumerate() {
            assert_eq!(batch.tuple_projected(&[2, 1], row), t.project(&[2, 1]));
        }
    }
}
