//! # reldiv-rel — tuples, schemas, and record encoding
//!
//! Foundation crate for the `reldiv` reproduction of Goetz Graefe's
//! *"Relational Division: Four Algorithms and Their Performance"* (OGC TR
//! CS/E 88-022, ICDE 1989).
//!
//! This crate models the data layer the paper's record-oriented file system
//! provided:
//!
//! * [`Value`] — a single attribute value (64-bit integer or string),
//! * [`Schema`] / [`Field`] / [`ColumnType`] — relation schemas,
//! * [`Tuple`] — a row of values, with key-subset comparison, hashing, and
//!   projection helpers used by every operator in the system,
//! * [`codec`] — encoding of tuples into byte records (the paper used
//!   8-byte divisor/quotient records and 16-byte dividend records),
//! * [`column`](mod@column) — columnar [`Batch`]es and the packed-key hash/compare
//!   kernels behind the vectorized execution path, bit-identical to the
//!   tuple-at-a-time entry points,
//! * [`Relation`] — an in-memory relation used by workload generators,
//!   tests, and the in-memory division API,
//! * [`counters`] — thread-local counters for the abstract operations the
//!   paper prices in its analytical model (comparisons, hash calculations,
//!   page moves, bit operations), enabling a deterministic "modeled CPU"
//!   reproduction of Table 4.
//!
//! All algorithm functions on records (comparison, hashing, projection) are
//! expressed over attribute index subsets, mirroring the paper's compiled
//! per-query functions passed "by means of pointers to the function entry
//! points".

#![deny(missing_docs)]

pub mod codec;
pub mod column;
pub mod counters;
pub mod error;
pub mod relation;
pub mod schema;
pub mod tuple;
pub mod value;

pub use codec::RecordCodec;
pub use column::{Batch, ColumnVec};
pub use error::RelError;
pub use relation::Relation;
pub use schema::{ColumnType, Field, Schema};
pub use tuple::Tuple;
pub use value::Value;

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, RelError>;
