//! Tuples and the key-subset operations every algorithm is built from.
//!
//! The paper's operators receive compiled comparison and hashing functions
//! "by means of pointers to the function entry points"; here the same role
//! is played by attribute-index slices (`keys: &[usize]`). All comparison
//! and hashing entry points increment the [`crate::counters`] so runs can be
//! priced with the paper's Table 1 cost units.

use std::cmp::Ordering;
use std::hash::Hasher;

use crate::counters;
use crate::value::Value;

/// A row of values.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Creates a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The values, in column order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at column `index`; panics if out of range (operators validate
    /// attribute indices against schemas at plan-construction time).
    pub fn value(&self, index: usize) -> &Value {
        &self.values[index]
    }

    /// Consumes the tuple, returning its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Projects the tuple onto the columns at `indices`, in that order.
    ///
    /// This is the "project dividend tuple into quotient tuple" step of the
    /// hash-division algorithm (Figure 1) and the projection operator of the
    /// execution engine.
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple::new(indices.iter().map(|&i| self.values[i].clone()).collect())
    }

    /// Compares two tuples on the attribute subsets `self_keys` /
    /// `other_keys` (pairwise, lexicographically). Counts one `Comp`.
    ///
    /// The two key lists may differ, which is how a dividend tuple is
    /// matched against a divisor tuple: the dividend's divisor-attribute
    /// columns against all of the divisor's columns.
    pub fn cmp_on(&self, self_keys: &[usize], other: &Tuple, other_keys: &[usize]) -> Ordering {
        counters::count_comparisons(1);
        debug_assert_eq!(self_keys.len(), other_keys.len());
        for (&a, &b) in self_keys.iter().zip(other_keys) {
            let ord = self.values[a].total_cmp(&other.values[b]);
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    }

    /// Equality on attribute subsets. Counts one `Comp`.
    pub fn eq_on(&self, self_keys: &[usize], other: &Tuple, other_keys: &[usize]) -> bool {
        self.cmp_on(self_keys, other, other_keys) == Ordering::Equal
    }

    /// Compares two tuples of the same schema on the same key list.
    pub fn cmp_keys(&self, other: &Tuple, keys: &[usize]) -> Ordering {
        self.cmp_on(keys, other, keys)
    }

    /// Hashes the attribute subset at `keys`. Counts one `Hash`.
    ///
    /// Uses an FNV-1a style fold over the tagged value encoding; a fixed,
    /// dependency-free function keeps hash-table layouts identical across
    /// runs and platforms, which matters for deterministic cost accounting.
    pub fn hash_on(&self, keys: &[usize]) -> u64 {
        counters::count_hashes(1);
        let mut h = Fnv1a::new();
        for &k in keys {
            self.values[k].hash_into(&mut h);
        }
        h.finish()
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

impl std::fmt::Display for Tuple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Builds a tuple of integer values; the workhorse of tests and workloads.
pub fn ints(values: &[i64]) -> Tuple {
    Tuple::new(values.iter().map(|&v| Value::Int(v)).collect())
}

/// Deterministic FNV-1a hasher used for all tuple hashing.
///
/// Crate-visible so the columnar kernels in [`crate::column`] fold the
/// exact same byte stream per row — hash-table layouts (and therefore
/// output orders) are identical between the tuple and batch paths.
pub(crate) struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub(crate) fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters;

    #[test]
    fn project_selects_and_reorders() {
        let t = ints(&[10, 20, 30]);
        assert_eq!(t.project(&[2, 0]), ints(&[30, 10]));
        assert_eq!(t.project(&[]), ints(&[]));
    }

    #[test]
    fn cmp_on_is_lexicographic_over_keys() {
        let a = ints(&[1, 5]);
        let b = ints(&[1, 7]);
        assert_eq!(a.cmp_keys(&b, &[0]), Ordering::Equal);
        assert_eq!(a.cmp_keys(&b, &[0, 1]), Ordering::Less);
        assert_eq!(b.cmp_keys(&a, &[1, 0]), Ordering::Greater);
    }

    #[test]
    fn cmp_on_matches_dividend_against_divisor_columns() {
        // Dividend (student-id, course-no) vs divisor (course-no): the
        // dividend's column 1 is compared against the divisor's column 0.
        let dividend = ints(&[42, 7]);
        let divisor = ints(&[7]);
        assert!(dividend.eq_on(&[1], &divisor, &[0]));
        assert!(!dividend.eq_on(&[0], &divisor, &[0]));
    }

    #[test]
    fn hash_on_agrees_for_equal_keys_and_counts_ops() {
        counters::reset();
        let a = ints(&[1, 2, 99]);
        let b = ints(&[1, 2, -5]);
        assert_eq!(a.hash_on(&[0, 1]), b.hash_on(&[0, 1]));
        assert_ne!(a.hash_on(&[0, 2]), b.hash_on(&[0, 2]));
        let snap = counters::snapshot();
        assert_eq!(snap.hashes, 4);
    }

    #[test]
    fn hash_on_differs_for_key_order() {
        let a = ints(&[1, 2]);
        // (1,2) hashed as [0,1] vs [1,0] sees different byte streams.
        assert_ne!(a.hash_on(&[0, 1]), a.hash_on(&[1, 0]));
    }

    #[test]
    fn comparisons_are_counted() {
        counters::reset();
        let a = ints(&[1]);
        let b = ints(&[2]);
        let _ = a.cmp_keys(&b, &[0]);
        let _ = a.eq_on(&[0], &b, &[0]);
        assert_eq!(counters::snapshot().comparisons, 2);
    }

    #[test]
    fn display_renders_parenthesized_row() {
        let t = Tuple::new(vec![Value::Int(1), Value::from("db")]);
        assert_eq!(t.to_string(), "(1, db)");
    }

    #[test]
    fn mixed_type_tuples_compare_totally() {
        let a = Tuple::new(vec![Value::Int(1)]);
        let b = Tuple::new(vec![Value::from("1")]);
        assert_eq!(a.cmp_keys(&b, &[0]), Ordering::Less);
        assert_eq!(b.cmp_keys(&a, &[0]), Ordering::Greater);
    }
}
