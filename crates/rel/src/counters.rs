//! Thread-local counters for the abstract operations priced by the paper.
//!
//! Section 4 of the paper measures CPU cost in units of tuple comparisons
//! (`Comp`), hash-value calculations (`Hash`), page-size memory moves
//! (`Move`), and bit-map operations (`Bit`); Table 1 assigns each a cost in
//! milliseconds. The experimental study (Section 5) instead measured real
//! CPU time and *computed* I/O cost from file-system statistics.
//!
//! `reldiv` supports both methodologies. Every operator increments these
//! counters as it performs the corresponding abstract operation, so a run
//! can be priced deterministically with Table 1 units (useful for CI-stable
//! reproduction of the paper's rankings) in addition to wall-clock/CPU
//! measurement.
//!
//! Counters are thread-local: the shared-nothing simulation in
//! `reldiv-parallel` snapshots them per worker thread and aggregates.

use std::cell::Cell;

thread_local! {
    static COMPARISONS: Cell<u64> = const { Cell::new(0) };
    static HASHES: Cell<u64> = const { Cell::new(0) };
    static MOVES: Cell<u64> = const { Cell::new(0) };
    static BITOPS: Cell<u64> = const { Cell::new(0) };
}

/// A snapshot of the four abstract-operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpSnapshot {
    /// Tuple comparisons (`Comp` in Table 1, 0.03 ms each).
    pub comparisons: u64,
    /// Hash-value calculations from a tuple (`Hash`, 0.03 ms each).
    pub hashes: u64,
    /// Memory-to-memory copies of one page (`Move`, 0.4 ms each).
    pub moves: u64,
    /// Bit-map operations: setting, clearing, or scanning a bit
    /// (`Bit`, 0.003 ms each).
    pub bitops: u64,
}

impl OpSnapshot {
    /// Component-wise difference `self - earlier`, saturating at zero.
    ///
    /// Used to attribute operations to a region of execution:
    /// `let before = snapshot(); ...; let used = snapshot().since(&before);`
    pub fn since(&self, earlier: &OpSnapshot) -> OpSnapshot {
        OpSnapshot {
            comparisons: self.comparisons.saturating_sub(earlier.comparisons),
            hashes: self.hashes.saturating_sub(earlier.hashes),
            moves: self.moves.saturating_sub(earlier.moves),
            bitops: self.bitops.saturating_sub(earlier.bitops),
        }
    }

    /// Component-wise sum, for aggregating per-thread snapshots.
    pub fn merge(&self, other: &OpSnapshot) -> OpSnapshot {
        OpSnapshot {
            comparisons: self.comparisons + other.comparisons,
            hashes: self.hashes + other.hashes,
            moves: self.moves + other.moves,
            bitops: self.bitops + other.bitops,
        }
    }
}

/// Records `n` tuple comparisons.
#[inline]
pub fn count_comparisons(n: u64) {
    COMPARISONS.with(|c| c.set(c.get() + n));
}

/// Records `n` hash-value calculations.
#[inline]
pub fn count_hashes(n: u64) {
    HASHES.with(|c| c.set(c.get() + n));
}

/// Records `n` page-sized memory moves.
#[inline]
pub fn count_moves(n: u64) {
    MOVES.with(|c| c.set(c.get() + n));
}

/// Records `n` bit-map operations.
#[inline]
pub fn count_bitops(n: u64) {
    BITOPS.with(|c| c.set(c.get() + n));
}

/// Reads the current thread's counters.
pub fn snapshot() -> OpSnapshot {
    OpSnapshot {
        comparisons: COMPARISONS.with(Cell::get),
        hashes: HASHES.with(Cell::get),
        moves: MOVES.with(Cell::get),
        bitops: BITOPS.with(Cell::get),
    }
}

/// Resets the current thread's counters to zero.
pub fn reset() {
    COMPARISONS.with(|c| c.set(0));
    HASHES.with(|c| c.set(0));
    MOVES.with(|c| c.set(0));
    BITOPS.with(|c| c.set(0));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_reset() {
        reset();
        count_comparisons(3);
        count_hashes(2);
        count_moves(1);
        count_bitops(5);
        let s = snapshot();
        assert_eq!(
            s,
            OpSnapshot {
                comparisons: 3,
                hashes: 2,
                moves: 1,
                bitops: 5
            }
        );
        reset();
        assert_eq!(snapshot(), OpSnapshot::default());
    }

    #[test]
    fn since_attributes_a_region() {
        reset();
        count_comparisons(10);
        let before = snapshot();
        count_comparisons(7);
        count_bitops(1);
        let used = snapshot().since(&before);
        assert_eq!(used.comparisons, 7);
        assert_eq!(used.bitops, 1);
        assert_eq!(used.hashes, 0);
    }

    #[test]
    fn merge_sums_componentwise() {
        let a = OpSnapshot {
            comparisons: 1,
            hashes: 2,
            moves: 3,
            bitops: 4,
        };
        let b = OpSnapshot {
            comparisons: 10,
            hashes: 20,
            moves: 30,
            bitops: 40,
        };
        assert_eq!(
            a.merge(&b),
            OpSnapshot {
                comparisons: 11,
                hashes: 22,
                moves: 33,
                bitops: 44
            }
        );
    }

    #[test]
    fn counters_are_thread_local() {
        reset();
        count_comparisons(5);
        let handle = std::thread::spawn(|| {
            // Fresh thread starts at zero and its counts stay local.
            assert_eq!(snapshot(), OpSnapshot::default());
            count_comparisons(100);
            snapshot()
        });
        let other = handle.join().unwrap();
        assert_eq!(other.comparisons, 100);
        assert_eq!(snapshot().comparisons, 5);
    }
}
