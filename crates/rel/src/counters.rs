//! Thread-local counters for the abstract operations priced by the paper.
//!
//! Section 4 of the paper measures CPU cost in units of tuple comparisons
//! (`Comp`), hash-value calculations (`Hash`), page-size memory moves
//! (`Move`), and bit-map operations (`Bit`); Table 1 assigns each a cost in
//! milliseconds. The experimental study (Section 5) instead measured real
//! CPU time and *computed* I/O cost from file-system statistics.
//!
//! `reldiv` supports both methodologies. Every operator increments these
//! counters as it performs the corresponding abstract operation, so a run
//! can be priced deterministically with Table 1 units (useful for CI-stable
//! reproduction of the paper's rankings) in addition to wall-clock/CPU
//! measurement.
//!
//! Counters are thread-local: the shared-nothing simulation in
//! `reldiv-parallel` snapshots them per worker thread and aggregates.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

thread_local! {
    static COMPARISONS: Cell<u64> = const { Cell::new(0) };
    static HASHES: Cell<u64> = const { Cell::new(0) };
    static MOVES: Cell<u64> = const { Cell::new(0) };
    static BITOPS: Cell<u64> = const { Cell::new(0) };
}

/// A snapshot of the four abstract-operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpSnapshot {
    /// Tuple comparisons (`Comp` in Table 1, 0.03 ms each).
    pub comparisons: u64,
    /// Hash-value calculations from a tuple (`Hash`, 0.03 ms each).
    pub hashes: u64,
    /// Memory-to-memory copies of one page (`Move`, 0.4 ms each).
    pub moves: u64,
    /// Bit-map operations: setting, clearing, or scanning a bit
    /// (`Bit`, 0.003 ms each).
    pub bitops: u64,
}

impl OpSnapshot {
    /// Component-wise difference `self - earlier`, saturating at zero.
    ///
    /// Used to attribute operations to a region of execution:
    /// `let before = snapshot(); ...; let used = snapshot().since(&before);`
    pub fn since(&self, earlier: &OpSnapshot) -> OpSnapshot {
        OpSnapshot {
            comparisons: self.comparisons.saturating_sub(earlier.comparisons),
            hashes: self.hashes.saturating_sub(earlier.hashes),
            moves: self.moves.saturating_sub(earlier.moves),
            bitops: self.bitops.saturating_sub(earlier.bitops),
        }
    }

    /// Component-wise sum, for aggregating per-thread snapshots.
    pub fn merge(&self, other: &OpSnapshot) -> OpSnapshot {
        OpSnapshot {
            comparisons: self.comparisons + other.comparisons,
            hashes: self.hashes + other.hashes,
            moves: self.moves + other.moves,
            bitops: self.bitops + other.bitops,
        }
    }
}

/// Records `n` tuple comparisons.
#[inline]
pub fn count_comparisons(n: u64) {
    COMPARISONS.with(|c| c.set(c.get() + n));
}

/// Records `n` hash-value calculations.
#[inline]
pub fn count_hashes(n: u64) {
    HASHES.with(|c| c.set(c.get() + n));
}

/// Records `n` page-sized memory moves.
#[inline]
pub fn count_moves(n: u64) {
    MOVES.with(|c| c.set(c.get() + n));
}

/// Records `n` bit-map operations.
#[inline]
pub fn count_bitops(n: u64) {
    BITOPS.with(|c| c.set(c.get() + n));
}

/// Reads the current thread's counters.
pub fn snapshot() -> OpSnapshot {
    OpSnapshot {
        comparisons: COMPARISONS.with(Cell::get),
        hashes: HASHES.with(Cell::get),
        moves: MOVES.with(Cell::get),
        bitops: BITOPS.with(Cell::get),
    }
}

/// Resets the current thread's counters to zero.
pub fn reset() {
    COMPARISONS.with(|c| c.set(0));
    HASHES.with(|c| c.set(0));
    MOVES.with(|c| c.set(0));
    BITOPS.with(|c| c.set(0));
}

/// A scoped measurement of the current thread's counters.
///
/// Captures a baseline at construction; [`OpScope::delta`] and
/// [`OpScope::finish`] report only the operations performed since then,
/// so a scope never observes counts from earlier work on the same thread
/// — the property that keeps pooled worker threads from leaking one
/// request's operations into the next request's measurement.
///
/// With [`OpScope::with_sink`], the delta is also **published on drop**
/// into a shared [`OpAccumulator`], even if the measured region exits by
/// error or panic; callers that hand-rolled `snapshot()`/`since()` pairs
/// (the bench harness, the parallel nodes, the query service) use this
/// instead.
#[must_use = "an unused scope measures nothing"]
pub struct OpScope<'a> {
    start: OpSnapshot,
    sink: Option<&'a OpAccumulator>,
    published: bool,
}

impl OpScope<'static> {
    /// Starts measuring from the current counter values.
    pub fn begin() -> OpScope<'static> {
        OpScope {
            start: snapshot(),
            sink: None,
            published: false,
        }
    }
}

impl<'a> OpScope<'a> {
    /// Starts measuring; the delta is added to `sink` when the scope
    /// ends (explicitly via [`OpScope::finish`] or implicitly on drop).
    pub fn with_sink(sink: &'a OpAccumulator) -> OpScope<'a> {
        OpScope {
            start: snapshot(),
            sink: Some(sink),
            published: false,
        }
    }

    /// Operations performed since the scope began.
    pub fn delta(&self) -> OpSnapshot {
        snapshot().since(&self.start)
    }

    /// Ends the scope, returning the delta (and publishing it to the
    /// sink, if any).
    pub fn finish(mut self) -> OpSnapshot {
        let delta = self.delta();
        if let Some(sink) = self.sink {
            sink.add(&delta);
        }
        self.published = true;
        delta
    }
}

impl Drop for OpScope<'_> {
    fn drop(&mut self) {
        if !self.published {
            if let Some(sink) = self.sink {
                sink.add(&self.delta());
            }
        }
    }
}

/// Runs `f`, returning its result and the operations it performed.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, OpSnapshot) {
    let scope = OpScope::begin();
    let result = f();
    (result, scope.finish())
}

/// A thread-safe accumulator of [`OpSnapshot`]s, for aggregating
/// measurements across worker threads (the parallel cluster's nodes, the
/// query service's pool).
#[derive(Debug, Default)]
pub struct OpAccumulator {
    comparisons: AtomicU64,
    hashes: AtomicU64,
    moves: AtomicU64,
    bitops: AtomicU64,
}

impl OpAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> OpAccumulator {
        OpAccumulator::default()
    }

    /// Adds a snapshot's counts.
    pub fn add(&self, s: &OpSnapshot) {
        self.comparisons.fetch_add(s.comparisons, Ordering::Relaxed);
        self.hashes.fetch_add(s.hashes, Ordering::Relaxed);
        self.moves.fetch_add(s.moves, Ordering::Relaxed);
        self.bitops.fetch_add(s.bitops, Ordering::Relaxed);
    }

    /// Reads the accumulated totals.
    pub fn totals(&self) -> OpSnapshot {
        OpSnapshot {
            comparisons: self.comparisons.load(Ordering::Relaxed),
            hashes: self.hashes.load(Ordering::Relaxed),
            moves: self.moves.load(Ordering::Relaxed),
            bitops: self.bitops.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_reset() {
        reset();
        count_comparisons(3);
        count_hashes(2);
        count_moves(1);
        count_bitops(5);
        let s = snapshot();
        assert_eq!(
            s,
            OpSnapshot {
                comparisons: 3,
                hashes: 2,
                moves: 1,
                bitops: 5
            }
        );
        reset();
        assert_eq!(snapshot(), OpSnapshot::default());
    }

    #[test]
    fn since_attributes_a_region() {
        reset();
        count_comparisons(10);
        let before = snapshot();
        count_comparisons(7);
        count_bitops(1);
        let used = snapshot().since(&before);
        assert_eq!(used.comparisons, 7);
        assert_eq!(used.bitops, 1);
        assert_eq!(used.hashes, 0);
    }

    #[test]
    fn merge_sums_componentwise() {
        let a = OpSnapshot {
            comparisons: 1,
            hashes: 2,
            moves: 3,
            bitops: 4,
        };
        let b = OpSnapshot {
            comparisons: 10,
            hashes: 20,
            moves: 30,
            bitops: 40,
        };
        assert_eq!(
            a.merge(&b),
            OpSnapshot {
                comparisons: 11,
                hashes: 22,
                moves: 33,
                bitops: 44
            }
        );
    }

    #[test]
    fn scopes_do_not_leak_between_pooled_requests() {
        // Two back-to-back scopes on one (reused) thread: each sees only
        // its own operations, regardless of what ran before it.
        count_comparisons(1000);
        let first = OpScope::begin();
        count_comparisons(3);
        assert_eq!(first.finish().comparisons, 3);
        let second = OpScope::begin();
        count_comparisons(8);
        count_hashes(2);
        let d = second.finish();
        assert_eq!(d.comparisons, 8);
        assert_eq!(d.hashes, 2);
    }

    #[test]
    fn scope_publishes_to_sink_on_drop() {
        let sink = OpAccumulator::new();
        {
            let _scope = OpScope::with_sink(&sink);
            count_moves(4);
            // Dropped without finish(): delta still lands in the sink.
        }
        {
            let scope = OpScope::with_sink(&sink);
            count_moves(1);
            assert_eq!(scope.finish().moves, 1);
            // finish() published; drop must not double-count.
        }
        assert_eq!(sink.totals().moves, 5);
    }

    #[test]
    fn measure_wraps_a_closure() {
        let (value, ops) = measure(|| {
            count_bitops(6);
            "done"
        });
        assert_eq!(value, "done");
        assert_eq!(ops.bitops, 6);
    }

    #[test]
    fn accumulator_merges_across_threads() {
        use std::sync::Arc;
        let sink = Arc::new(OpAccumulator::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let sink = sink.clone();
                std::thread::spawn(move || {
                    let _scope = OpScope::with_sink(&sink);
                    count_comparisons(10);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sink.totals().comparisons, 40);
    }

    #[test]
    fn counters_are_thread_local() {
        reset();
        count_comparisons(5);
        let handle = std::thread::spawn(|| {
            // Fresh thread starts at zero and its counts stay local.
            assert_eq!(snapshot(), OpSnapshot::default());
            count_comparisons(100);
            snapshot()
        });
        let other = handle.join().unwrap();
        assert_eq!(other.comparisons, 100);
        assert_eq!(snapshot().comparisons, 5);
    }
}
