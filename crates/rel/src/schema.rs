//! Relation schemas.

use crate::error::RelError;
use crate::value::Value;
use crate::Result;

/// Type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit signed integer; 8 bytes in the fixed-width record encoding.
    Int,
    /// String stored in a fixed number of bytes (zero-padded). The paper's
    /// record-oriented file system used fixed-width records; the width bound
    /// is enforced at encode time.
    Str(usize),
}

impl ColumnType {
    /// Encoded width of this column in bytes.
    pub fn width(&self) -> usize {
        match self {
            ColumnType::Int => 8,
            ColumnType::Str(n) => *n,
        }
    }

    /// Whether `value` inhabits this column type (ignoring width).
    pub fn admits(&self, value: &Value) -> bool {
        matches!(
            (self, value),
            (ColumnType::Int, Value::Int(_)) | (ColumnType::Str(_), Value::Str(_))
        )
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name, e.g. `student-id`.
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
}

impl Field {
    /// Creates a field.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        Field {
            name: name.into(),
            ty,
        }
    }

    /// Shorthand for an integer field.
    pub fn int(name: impl Into<String>) -> Self {
        Field::new(name, ColumnType::Int)
    }

    /// Shorthand for a fixed-width string field.
    pub fn str(name: impl Into<String>, width: usize) -> Self {
        Field::new(name, ColumnType::Str(width))
    }
}

/// An ordered list of fields describing a relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Creates a schema from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// The fields, in column order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Field at `index`.
    pub fn field(&self, index: usize) -> Result<&Field> {
        self.fields.get(index).ok_or(RelError::ColumnOutOfRange {
            index,
            arity: self.fields.len(),
        })
    }

    /// Resolves a column name to its index.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Total fixed-width record size in bytes.
    ///
    /// The paper's experiments used 8-byte divisor/quotient records and
    /// 16-byte dividend records; record size drives page cardinalities and
    /// hence I/O costs.
    pub fn record_width(&self) -> usize {
        self.fields.iter().map(|f| f.ty.width()).sum()
    }

    /// Byte offset of column `index` within the fixed-width encoding.
    pub fn column_offset(&self, index: usize) -> usize {
        self.fields[..index].iter().map(|f| f.ty.width()).sum()
    }

    /// A schema consisting of the columns at `indices`, in that order.
    ///
    /// Used to derive the quotient schema from dividend and divisor schemas:
    /// the quotient attributes are the dividend attributes not in the
    /// divisor.
    pub fn project(&self, indices: &[usize]) -> Result<Schema> {
        let mut fields = Vec::with_capacity(indices.len());
        for &i in indices {
            fields.push(self.field(i)?.clone());
        }
        Ok(Schema::new(fields))
    }

    /// Checks that a slice of values conforms to this schema.
    pub fn validate(&self, values: &[Value]) -> Result<()> {
        if values.len() != self.fields.len() {
            return Err(RelError::ArityMismatch {
                expected: self.fields.len(),
                actual: values.len(),
            });
        }
        for (i, (f, v)) in self.fields.iter().zip(values).enumerate() {
            if !f.ty.admits(v) {
                return Err(RelError::TypeMismatch {
                    column: i,
                    expected: format!("{:?}", f.ty),
                    actual: v.type_name().to_owned(),
                });
            }
            if let (ColumnType::Str(w), Value::Str(s)) = (f.ty, v) {
                if s.len() > w {
                    return Err(RelError::StringTooLong {
                        column: i,
                        width: w,
                        len: s.len(),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transcript() -> Schema {
        // The paper's running example: Transcript(student-id, course-no),
        // already projected onto its key attributes.
        Schema::new(vec![Field::int("student-id"), Field::int("course-no")])
    }

    #[test]
    fn record_width_matches_paper_sizes() {
        // Dividend records were 16 bytes, divisor/quotient records 8 bytes.
        assert_eq!(transcript().record_width(), 16);
        let divisor = Schema::new(vec![Field::int("course-no")]);
        assert_eq!(divisor.record_width(), 8);
    }

    #[test]
    fn column_offsets_accumulate_widths() {
        let s = Schema::new(vec![Field::int("a"), Field::str("b", 4), Field::int("c")]);
        assert_eq!(s.column_offset(0), 0);
        assert_eq!(s.column_offset(1), 8);
        assert_eq!(s.column_offset(2), 12);
        assert_eq!(s.record_width(), 20);
    }

    #[test]
    fn column_index_by_name() {
        let s = transcript();
        assert_eq!(s.column_index("course-no"), Some(1));
        assert_eq!(s.column_index("grade"), None);
    }

    #[test]
    fn project_reorders_and_checks_bounds() {
        let s = transcript();
        let p = s.project(&[1]).unwrap();
        assert_eq!(p.arity(), 1);
        assert_eq!(p.fields()[0].name, "course-no");
        assert!(matches!(
            s.project(&[2]),
            Err(RelError::ColumnOutOfRange { index: 2, arity: 2 })
        ));
    }

    #[test]
    fn validate_checks_arity_type_and_width() {
        let s = Schema::new(vec![Field::int("id"), Field::str("title", 4)]);
        assert!(s.validate(&[Value::Int(1), Value::from("db")]).is_ok());
        assert!(matches!(
            s.validate(&[Value::Int(1)]),
            Err(RelError::ArityMismatch { .. })
        ));
        assert!(matches!(
            s.validate(&[Value::from("x"), Value::from("db")]),
            Err(RelError::TypeMismatch { column: 0, .. })
        ));
        assert!(matches!(
            s.validate(&[Value::Int(1), Value::from("toolong")]),
            Err(RelError::StringTooLong {
                column: 1,
                width: 4,
                len: 7
            })
        ));
    }

    #[test]
    fn admits_is_type_based() {
        assert!(ColumnType::Int.admits(&Value::Int(0)));
        assert!(!ColumnType::Int.admits(&Value::from("x")));
        assert!(ColumnType::Str(3).admits(&Value::from("abcdef"))); // width checked separately
    }
}
