//! In-memory relations.
//!
//! A [`Relation`] is a schema plus a bag (multiset) of tuples. It is the
//! interchange format between workload generators, the in-memory division
//! API, and the storage layer (which loads relations into record files).

use std::collections::BTreeMap;

use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::Result;

/// A schema and a bag of tuples.
///
/// Relations are bags, not sets: the paper devotes considerable attention to
/// duplicate handling (hash-division ignores dividend duplicates and can
/// eliminate divisor duplicates on the fly, while the other algorithms
/// require duplicate-free inputs).
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    schema: Schema,
    tuples: Vec<Tuple>,
}

impl Relation {
    /// Creates an empty relation with `schema`.
    pub fn empty(schema: Schema) -> Self {
        Relation {
            schema,
            tuples: Vec::new(),
        }
    }

    /// Creates a relation from tuples, validating each against the schema.
    pub fn from_tuples(schema: Schema, tuples: Vec<Tuple>) -> Result<Self> {
        for t in &tuples {
            schema.validate(t.values())?;
        }
        Ok(Relation { schema, tuples })
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Tuple cardinality (`|R|` in the paper's notation).
    pub fn cardinality(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuples, in insertion order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Consumes the relation, returning its tuples.
    pub fn into_tuples(self) -> Vec<Tuple> {
        self.tuples
    }

    /// Appends a tuple after validating it.
    pub fn push(&mut self, tuple: Tuple) -> Result<()> {
        self.schema.validate(tuple.values())?;
        self.tuples.push(tuple);
        Ok(())
    }

    /// Page cardinality given `tuples_per_page` (the paper's `r`, `s`, `q`).
    ///
    /// Fractional pages round up: a relation never occupies part of a page
    /// it has not allocated.
    pub fn pages(&self, tuples_per_page: usize) -> usize {
        self.tuples.len().div_ceil(tuples_per_page)
    }

    /// Sorts tuples in place on `keys` (major to minor), stably.
    pub fn sort_by_keys(&mut self, keys: &[usize]) {
        self.tuples.sort_by(|a, b| a.cmp_keys(b, keys));
    }

    /// Returns a relation with exact duplicates removed (first occurrence
    /// kept), preserving order. Cost of this preprocessing is exactly what
    /// hash-division avoids; tests use it to build duplicate-free oracles.
    pub fn distinct(&self) -> Relation {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for t in &self.tuples {
            if seen.insert(t.clone()) {
                out.push(t.clone());
            }
        }
        Relation {
            schema: self.schema.clone(),
            tuples: out,
        }
    }

    /// Projects the relation onto `indices` (bag projection: duplicates are
    /// not removed, mirroring relational-algebra projection on bags).
    pub fn project(&self, indices: &[usize]) -> Result<Relation> {
        let schema = self.schema.project(indices)?;
        let tuples = self.tuples.iter().map(|t| t.project(indices)).collect();
        Ok(Relation { schema, tuples })
    }

    /// Counts occurrences of each distinct tuple; used by tests to compare
    /// bags irrespective of order.
    pub fn bag_counts(&self) -> BTreeMap<String, usize> {
        let mut m = BTreeMap::new();
        for t in &self.tuples {
            *m.entry(t.to_string()).or_insert(0) += 1;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::tuple::ints;

    fn rel(rows: &[&[i64]]) -> Relation {
        let arity = rows.first().map_or(1, |r| r.len());
        let schema = Schema::new((0..arity).map(|i| Field::int(format!("c{i}"))).collect());
        Relation::from_tuples(schema, rows.iter().map(|r| ints(r)).collect()).unwrap()
    }

    #[test]
    fn from_tuples_validates() {
        let schema = Schema::new(vec![Field::int("a")]);
        assert!(Relation::from_tuples(schema.clone(), vec![ints(&[1, 2])]).is_err());
        assert!(Relation::from_tuples(schema, vec![ints(&[1])]).is_ok());
    }

    #[test]
    fn pages_round_up() {
        let r = rel(&[&[1], &[2], &[3]]);
        // The paper: 10 S/Q tuples per page, 5 R tuples per page.
        assert_eq!(r.pages(10), 1);
        assert_eq!(r.pages(2), 2);
        assert_eq!(r.pages(3), 1);
        assert_eq!(Relation::empty(r.schema().clone()).pages(10), 0);
    }

    #[test]
    fn sort_by_keys_major_minor() {
        // Sort Transcript on student-id major, course-no minor — the naive
        // algorithm's required dividend order.
        let mut r = rel(&[&[2, 1], &[1, 2], &[1, 1], &[2, 0]]);
        r.sort_by_keys(&[0, 1]);
        let got: Vec<_> = r.tuples().iter().map(|t| t.to_string()).collect();
        assert_eq!(got, vec!["(1, 1)", "(1, 2)", "(2, 0)", "(2, 1)"]);
    }

    #[test]
    fn distinct_keeps_first_occurrence() {
        let r = rel(&[&[1], &[2], &[1], &[3], &[2]]);
        let d = r.distinct();
        assert_eq!(d.cardinality(), 3);
        assert_eq!(d.tuples()[0], ints(&[1]));
    }

    #[test]
    fn project_is_bag_projection() {
        let r = rel(&[&[1, 10], &[2, 10], &[1, 20]]);
        let p = r.project(&[1]).unwrap();
        assert_eq!(p.cardinality(), 3); // duplicates retained
        assert_eq!(p.schema().arity(), 1);
    }

    #[test]
    fn bag_counts_ignore_order() {
        let a = rel(&[&[1], &[2], &[1]]);
        let b = rel(&[&[2], &[1], &[1]]);
        assert_eq!(a.bag_counts(), b.bag_counts());
        let c = rel(&[&[1], &[2]]);
        assert_ne!(a.bag_counts(), c.bag_counts());
    }

    #[test]
    fn push_validates() {
        let mut r = rel(&[&[1, 2]]);
        assert!(r.push(ints(&[3])).is_err());
        assert!(r.push(ints(&[3, 4])).is_ok());
        assert_eq!(r.cardinality(), 2);
    }
}
