//! Semantic analysis: [`Plan`] → [`Bound`].
//!
//! Binding resolves column names against the catalog's schemas, checks
//! types, computes every node's output schema, and annotates each node
//! with the two statistics the Section 4 cost model needs downstream:
//! a cardinality estimate and a duplicate-freeness guarantee.
//!
//! Division nodes are normalized during binding: the paper's
//! [`DivisionSpec`](reldiv_core::DivisionSpec) requires the dividend's
//! columns to be exactly quotient ∪ divisor attributes, so a dividend
//! carrying extra columns (or columns in a different order) gets an
//! implicit projection to `(quotient..., on...)` — visible in `EXPLAIN
//! ANALYZE` as a real projection operator.

use reldiv_rel::schema::ColumnType;
use reldiv_rel::Schema;

use crate::ast::{Cmp, ColRef, DivideHints, Lit, Plan, Pred};
use crate::error::{PlanError, Result};

/// Where the validator finds relation schemas and cardinalities. The
/// service implements this over pinned catalog versions; tests and the
/// CLI use [`MemCatalog`](crate::MemCatalog).
pub trait CatalogSource {
    /// The schema and cardinality of `name`, or `None` when unknown.
    fn lookup(&self, name: &str) -> Option<(Schema, u64)>;
}

/// A bound (validated) predicate: columns resolved to indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoundPred {
    /// Compare column `col` against a literal.
    Compare {
        /// Resolved column index.
        col: usize,
        /// The comparison.
        cmp: Cmp,
        /// The literal.
        value: Lit,
    },
    /// Case-insensitive substring match on a string column.
    Contains {
        /// Resolved column index.
        col: usize,
        /// The needle.
        needle: String,
    },
}

impl BoundPred {
    /// A short rendering for span labels.
    pub fn describe(&self, schema: &Schema) -> String {
        match self {
            BoundPred::Compare { col, cmp, value } => {
                let name = &schema.fields()[*col].name;
                match value {
                    Lit::Int(v) => format!("{name} {} {v}", cmp.token()),
                    Lit::Str(s) => format!("{name} {} {s:?}", cmp.token()),
                }
            }
            BoundPred::Contains { col, needle } => {
                format!("{} contains {needle:?}", schema.fields()[*col].name)
            }
        }
    }
}

/// A bound division node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundDivide {
    /// Dividend columns matched against the divisor, in divisor column
    /// order (indices into the bound dividend's schema).
    pub divisor_keys: Vec<usize>,
    /// Dividend columns forming the quotient.
    pub quotient_keys: Vec<usize>,
    /// Planner hints from the plan text.
    pub hints: DivideHints,
    /// The dividend plan (already normalized to cover exactly
    /// `quotient ∪ divisor` columns).
    pub dividend: Box<Bound>,
    /// The divisor plan.
    pub divisor: Box<Bound>,
}

/// A bound plan node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoundNode {
    /// Scan of a catalog relation.
    Scan {
        /// The catalog name.
        relation: String,
    },
    /// Selection.
    Filter {
        /// The bound predicate.
        pred: BoundPred,
        /// The input.
        input: Box<Bound>,
    },
    /// Projection (bag semantics).
    Project {
        /// Resolved column indices, in output order.
        columns: Vec<usize>,
        /// The input.
        input: Box<Bound>,
    },
    /// Duplicate elimination over all columns.
    Distinct {
        /// The input.
        input: Box<Bound>,
    },
    /// Inner equi-join (left fields ++ right fields).
    Join {
        /// Resolved left key columns.
        left_keys: Vec<usize>,
        /// Resolved right key columns.
        right_keys: Vec<usize>,
        /// The left (probe) input.
        left: Box<Bound>,
        /// The right (build) input.
        right: Box<Bound>,
    },
    /// Grouped `COUNT(*)`, appending an integer `count` column.
    GroupCount {
        /// Resolved grouping columns.
        keys: Vec<usize>,
        /// The input.
        input: Box<Bound>,
    },
    /// `HAVING COUNT(*) cmp target`: filter by the trailing count column,
    /// then project it away.
    HavingCount {
        /// The comparison.
        cmp: Cmp,
        /// The target count.
        target: i64,
        /// The input (last column must be an integer count).
        input: Box<Bound>,
    },
    /// Relational division.
    Divide(BoundDivide),
}

/// A validated plan node with its output schema and planner statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bound {
    /// The node.
    pub node: BoundNode,
    /// The node's output schema.
    pub schema: Schema,
    /// Estimated output cardinality (see `docs/PLANS.md` for the
    /// selectivity rules).
    pub rows: u64,
    /// Whether the output is guaranteed duplicate-free.
    pub unique: bool,
}

fn verr(msg: impl Into<String>) -> PlanError {
    PlanError::Validate(msg.into())
}

/// Resolves a column reference against a schema (leftmost name match).
fn resolve(col: &ColRef, schema: &Schema, ctx: &str) -> Result<usize> {
    match col {
        ColRef::Index(i) => {
            if *i < schema.arity() {
                Ok(*i)
            } else {
                Err(verr(format!(
                    "{ctx}: column #{i} out of range for arity {}",
                    schema.arity()
                )))
            }
        }
        ColRef::Name(name) => schema
            .fields()
            .iter()
            .position(|f| &f.name == name)
            .ok_or_else(|| {
                let known: Vec<&str> = schema.fields().iter().map(|f| f.name.as_str()).collect();
                verr(format!("{ctx}: unknown column {name:?} (have {known:?})"))
            }),
    }
}

fn resolve_all(cols: &[ColRef], schema: &Schema, ctx: &str) -> Result<Vec<usize>> {
    cols.iter().map(|c| resolve(c, schema, ctx)).collect()
}

/// Selectivity guesses for filter estimates, in the absence of real
/// statistics. Documented in `docs/PLANS.md`; deliberately crude — the
/// point (Section 5.2) is that the chooser must behave sensibly *despite*
/// estimate error.
fn filter_estimate(rows: u64, pred: &BoundPred) -> u64 {
    let est = match pred {
        BoundPred::Compare { cmp: Cmp::Eq, .. } => rows / 10,
        BoundPred::Compare { cmp: Cmp::Ne, .. } => rows,
        BoundPred::Compare { .. } => rows / 3,
        BoundPred::Contains { .. } => rows / 4,
    };
    est.max(1).min(rows.max(1))
}

/// Validates `plan` against `catalog`, producing a [`Bound`] tree.
pub fn bind(plan: &Plan, catalog: &dyn CatalogSource) -> Result<Bound> {
    match plan {
        Plan::Scan { relation } => {
            let (schema, rows) = catalog
                .lookup(relation)
                .ok_or_else(|| verr(format!("unknown relation {relation:?}")))?;
            if schema.arity() == 0 {
                return Err(verr(format!("relation {relation:?} has no columns")));
            }
            Ok(Bound {
                node: BoundNode::Scan {
                    relation: relation.clone(),
                },
                schema,
                rows,
                unique: false,
            })
        }
        Plan::Filter { pred, input } => {
            let input = bind(input, catalog)?;
            let bound_pred = match pred {
                Pred::Compare { col, cmp, value } => {
                    let col = resolve(col, &input.schema, "filter")?;
                    let ty = input.schema.fields()[col].ty;
                    match (ty, value) {
                        (ColumnType::Int, Lit::Int(_)) | (ColumnType::Str(_), Lit::Str(_)) => {}
                        (ty, value) => {
                            return Err(verr(format!(
                                "filter: cannot compare column of type {ty:?} with {value:?}"
                            )))
                        }
                    }
                    BoundPred::Compare {
                        col,
                        cmp: *cmp,
                        value: value.clone(),
                    }
                }
                Pred::Contains { col, needle } => {
                    let col = resolve(col, &input.schema, "filter")?;
                    if !matches!(input.schema.fields()[col].ty, ColumnType::Str(_)) {
                        return Err(verr("filter: contains needs a string column".to_owned()));
                    }
                    BoundPred::Contains {
                        col,
                        needle: needle.clone(),
                    }
                }
            };
            let rows = filter_estimate(input.rows, &bound_pred);
            Ok(Bound {
                schema: input.schema.clone(),
                rows,
                unique: input.unique,
                node: BoundNode::Filter {
                    pred: bound_pred,
                    input: Box::new(input),
                },
            })
        }
        Plan::Project { columns, input } => {
            let input = bind(input, catalog)?;
            let cols = resolve_all(columns, &input.schema, "project")?;
            let schema = input
                .schema
                .project(&cols)
                .map_err(|e| verr(format!("project: {e}")))?;
            Ok(Bound {
                schema,
                rows: input.rows,
                // A projection can introduce duplicates even over unique
                // input (unless it keeps every column, which we don't
                // bother detecting).
                unique: false,
                node: BoundNode::Project {
                    columns: cols,
                    input: Box::new(input),
                },
            })
        }
        Plan::Distinct { input } => {
            let input = bind(input, catalog)?;
            Ok(Bound {
                schema: input.schema.clone(),
                rows: input.rows,
                unique: true,
                node: BoundNode::Distinct {
                    input: Box::new(input),
                },
            })
        }
        Plan::Join { on, left, right } => {
            let left = bind(left, catalog)?;
            let right = bind(right, catalog)?;
            let mut left_keys = Vec::with_capacity(on.len());
            let mut right_keys = Vec::with_capacity(on.len());
            for (l, r) in on {
                let li = resolve(l, &left.schema, "join left")?;
                let ri = resolve(r, &right.schema, "join right")?;
                let lt = left.schema.fields()[li].ty;
                let rt = right.schema.fields()[ri].ty;
                if lt != rt {
                    return Err(verr(format!("join: key types differ ({lt:?} vs {rt:?})")));
                }
                left_keys.push(li);
                right_keys.push(ri);
            }
            let mut fields = left.schema.fields().to_vec();
            fields.extend(right.schema.fields().iter().cloned());
            let schema = Schema::new(fields);
            // Foreign-key-ish estimate: every tuple of the bigger side
            // matches about once.
            let rows =
                (left.rows.saturating_mul(right.rows) / left.rows.max(right.rows).max(1)).max(1);
            let unique = left.unique && right.unique;
            Ok(Bound {
                schema,
                rows,
                unique,
                node: BoundNode::Join {
                    left_keys,
                    right_keys,
                    left: Box::new(left),
                    right: Box::new(right),
                },
            })
        }
        Plan::GroupCount { keys, input } => {
            let input = bind(input, catalog)?;
            let cols = resolve_all(keys, &input.schema, "group-count")?;
            let mut fields: Vec<_> = cols
                .iter()
                .map(|&c| input.schema.fields()[c].clone())
                .collect();
            fields.push(reldiv_rel::schema::Field::int("count"));
            let schema = Schema::new(fields);
            Ok(Bound {
                schema,
                rows: (input.rows / 2).max(1),
                unique: true,
                node: BoundNode::GroupCount {
                    keys: cols,
                    input: Box::new(input),
                },
            })
        }
        Plan::HavingCount { cmp, target, input } => {
            let input = bind(input, catalog)?;
            let arity = input.schema.arity();
            if arity < 2 {
                return Err(verr(
                    "having-count: input needs group columns plus a count".to_owned(),
                ));
            }
            if input.schema.fields()[arity - 1].ty != ColumnType::Int {
                return Err(verr(
                    "having-count: the input's last column must be an integer count".to_owned(),
                ));
            }
            let keep: Vec<usize> = (0..arity - 1).collect();
            let schema = input
                .schema
                .project(&keep)
                .map_err(|e| verr(format!("having-count: {e}")))?;
            Ok(Bound {
                schema,
                rows: (input.rows / 3).max(1),
                unique: input.unique,
                node: BoundNode::HavingCount {
                    cmp: *cmp,
                    target: *target,
                    input: Box::new(input),
                },
            })
        }
        Plan::Divide {
            on,
            quotient,
            hints,
            dividend,
            divisor,
        } => {
            let mut dividend = bind(dividend, catalog)?;
            let divisor = bind(divisor, catalog)?;
            let on_keys = resolve_all(on, &dividend.schema, "divide (on)")?;
            let quotient_keys = match quotient {
                Some(cols) => resolve_all(cols, &dividend.schema, "divide (quotient)")?,
                None => (0..dividend.schema.arity())
                    .filter(|i| !on_keys.contains(i))
                    .collect(),
            };
            if quotient_keys.is_empty() {
                return Err(verr(
                    "divide: the quotient needs at least one column".to_owned(),
                ));
            }
            for k in &on_keys {
                if quotient_keys.contains(k) {
                    return Err(verr(format!(
                        "divide: column {} is both a divisor and a quotient attribute",
                        dividend.schema.fields()[*k].name
                    )));
                }
            }
            if on_keys.len() != divisor.schema.arity() {
                return Err(verr(format!(
                    "divide: (on ...) names {} columns but the divisor has {}",
                    on_keys.len(),
                    divisor.schema.arity()
                )));
            }
            for (i, &k) in on_keys.iter().enumerate() {
                let dt = dividend.schema.fields()[k].ty;
                let st = divisor.schema.fields()[i].ty;
                if dt != st {
                    return Err(verr(format!(
                        "divide: dividend column {:?} has type {dt:?} but divisor column {i} has {st:?}",
                        dividend.schema.fields()[k].name
                    )));
                }
            }
            // Normalize the dividend to (quotient..., on...) so the spec
            // covers it exactly; skip the projection when it already does.
            let wanted: Vec<usize> = quotient_keys
                .iter()
                .chain(on_keys.iter())
                .copied()
                .collect();
            let identity = wanted.len() == dividend.schema.arity()
                && wanted.iter().enumerate().all(|(i, &c)| i == c);
            let (divisor_keys, quotient_keys) = if identity {
                (on_keys, quotient_keys)
            } else {
                let schema = dividend
                    .schema
                    .project(&wanted)
                    .map_err(|e| verr(format!("divide: {e}")))?;
                let rows = dividend.rows;
                dividend = Bound {
                    schema,
                    rows,
                    unique: false,
                    node: BoundNode::Project {
                        columns: wanted,
                        input: Box::new(dividend),
                    },
                };
                let q = quotient_keys.len();
                ((q..q + on_keys.len()).collect(), (0..q).collect())
            };
            let schema = dividend
                .schema
                .project(&quotient_keys)
                .map_err(|e| verr(format!("divide: {e}")))?;
            let rows = (dividend.rows / divisor.rows.max(1)).max(1);
            Ok(Bound {
                schema,
                rows,
                unique: true,
                node: BoundNode::Divide(BoundDivide {
                    divisor_keys,
                    quotient_keys,
                    hints: *hints,
                    dividend: Box::new(dividend),
                    divisor: Box::new(divisor),
                }),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use crate::MemCatalog;
    use reldiv_rel::schema::Field;
    use reldiv_rel::tuple::ints;
    use reldiv_rel::Relation;

    fn catalog() -> MemCatalog {
        let mut c = MemCatalog::new();
        let transcript = Relation::from_tuples(
            Schema::new(vec![Field::int("student-id"), Field::int("course-no")]),
            vec![ints(&[1, 10]), ints(&[1, 11]), ints(&[2, 10])],
        )
        .unwrap();
        let courses = Relation::from_tuples(
            Schema::new(vec![Field::int("course-no"), Field::str("title", 16)]),
            vec![],
        )
        .unwrap();
        c.insert("transcript", transcript);
        c.insert("courses", courses);
        c
    }

    fn bind_text(text: &str) -> Result<Bound> {
        bind(&parse(text).unwrap(), &catalog())
    }

    #[test]
    fn binds_and_normalizes_the_division() {
        let b = bind_text(
            "(divide (on course-no) (scan transcript) (project (course-no) (scan courses)))",
        )
        .unwrap();
        assert_eq!(b.schema.fields()[0].name, "student-id");
        assert!(b.unique);
        match &b.node {
            BoundNode::Divide(d) => {
                // transcript is already (quotient, on): no implicit project.
                assert!(matches!(d.dividend.node, BoundNode::Scan { .. }));
                assert_eq!(d.divisor_keys, vec![1]);
                assert_eq!(d.quotient_keys, vec![0]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn out_of_order_dividend_gets_an_implicit_projection() {
        let b = bind_text(
            "(divide (on #0) (quotient #1) (scan transcript) (project (student-id) (scan transcript)))",
        )
        .unwrap();
        match &b.node {
            BoundNode::Divide(d) => {
                assert!(matches!(d.dividend.node, BoundNode::Project { .. }));
                assert_eq!(d.quotient_keys, vec![0]);
                assert_eq!(d.divisor_keys, vec![1]);
                assert_eq!(d.dividend.schema.fields()[0].name, "course-no");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_semantic_errors() {
        for (bad, want) in [
            ("(scan nowhere)", "unknown relation"),
            ("(filter (= missing 1) (scan transcript))", "unknown column"),
            (
                "(filter (= student-id \"x\") (scan transcript))",
                "cannot compare",
            ),
            (
                "(filter (contains student-id \"x\") (scan transcript))",
                "string column",
            ),
            ("(project (#7) (scan transcript))", "out of range"),
            (
                "(join (on (student-id title)) (scan transcript) (scan courses))",
                "key types differ",
            ),
            ("(having-count = 2 (scan courses))", "integer count"),
            (
                "(divide (on course-no student-id) (scan transcript) (scan courses))",
                "quotient needs at least one column",
            ),
            (
                "(divide (on course-no) (quotient student-id) (scan transcript) (scan courses))",
                "divisor has",
            ),
            (
                "(divide (on course-no) (quotient course-no) (scan transcript) (project (course-no) (scan courses)))",
                "both a divisor and a quotient",
            ),
        ] {
            let err = bind_text(bad).unwrap_err().to_string();
            assert!(err.contains(want), "{bad}: {err}");
        }
    }

    #[test]
    fn statistics_flow_bottom_up() {
        let b = bind_text("(filter (= course-no 10) (scan transcript))").unwrap();
        assert_eq!(b.rows, 1, "3 rows / 10 clamps to 1");
        let b = bind_text("(distinct (scan transcript))").unwrap();
        assert!(b.unique);
        let b = bind_text("(group-count (student-id) (scan transcript))").unwrap();
        assert_eq!(b.schema.fields().last().unwrap().name, "count");
        assert!(b.unique);
    }
}
