//! Plan-layer errors.

use reldiv_exec::ExecError;

/// Errors from parsing, validating, or executing a plan.
#[derive(Debug)]
pub enum PlanError {
    /// The plan text is not well-formed.
    Parse(String),
    /// The plan is well-formed but does not type-check against the
    /// catalog (unknown relation/column, arity or type mismatch, ...).
    Validate(String),
    /// The engine failed while executing the lowered plan.
    Exec(ExecError),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Parse(msg) => write!(f, "plan parse error: {msg}"),
            PlanError::Validate(msg) => write!(f, "plan validation error: {msg}"),
            PlanError::Exec(e) => write!(f, "plan execution error: {e}"),
        }
    }
}

impl std::error::Error for PlanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlanError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ExecError> for PlanError {
    fn from(e: ExecError) -> PlanError {
        PlanError::Exec(e)
    }
}

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, PlanError>;
