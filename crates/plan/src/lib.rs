//! Composable query plans over the division engine.
//!
//! The paper's algorithms never run in isolation: its motivating query
//! ("students who have taken all courses whose title contains
//! 'database'") divides a base relation by a *selected, projected*
//! subset of another, and Section 5 stresses that the inputs to a
//! division are typically intermediate results of larger plans. This
//! crate supplies that surrounding machinery:
//!
//! * a small s-expression **plan language** ([`parse()`]) with
//!   a canonical printer (parse → print → parse is the identity);
//! * a **validator** ([`bind`]) that resolves names
//!   against a catalog, type-checks, and annotates every node with the
//!   cardinality and duplicate-freeness facts the cost model needs;
//! * a **lowering executor** ([`execute`]) that turns the
//!   bound tree into `reldiv-exec` operators, choosing each division's
//!   algorithm with the Section 4 cost model (or a plan hint), and
//!   reports every choice it made;
//! * a brute-force **reference interpreter**
//!   ([`evaluate`]) serving as the correctness
//!   oracle for all of the above.
//!
//! The example from the paper, in plan text:
//!
//! ```text
//! (divide (on course-no)
//!   (scan transcript)
//!   (project (course-no)
//!     (filter (contains title "database") (scan courses))))
//! ```

#![deny(missing_docs)]

pub mod ast;
pub mod error;
pub mod lower;
pub mod parse;
pub mod reference;
pub mod validate;

use std::collections::HashMap;

use reldiv_core::api::Source;
use reldiv_rel::{Relation, Schema};

pub use ast::{AlgorithmHint, Cmp, ColRef, DivideHints, Lit, Plan, Pred, Tri};
pub use error::{PlanError, Result};
pub use lower::{execute, DivisionChoice, ExecOptions, PlanOutput, SourceProvider};
pub use parse::parse;
pub use reference::{canonical_bytes, evaluate, RelationSource};
pub use reldiv_exec::ExecMode;
pub use validate::{bind, Bound, BoundNode, CatalogSource};

/// An in-memory catalog of named relations, usable as the
/// [`CatalogSource`] for validation, the [`SourceProvider`] for
/// execution, and the [`RelationSource`] for the reference oracle.
#[derive(Debug, Default, Clone)]
pub struct MemCatalog {
    relations: HashMap<String, Relation>,
}

impl MemCatalog {
    /// An empty catalog.
    pub fn new() -> MemCatalog {
        MemCatalog::default()
    }

    /// Adds (or replaces) a relation.
    pub fn insert(&mut self, name: impl Into<String>, relation: Relation) {
        self.relations.insert(name.into(), relation);
    }

    /// Looks up a relation.
    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }
}

impl CatalogSource for MemCatalog {
    fn lookup(&self, name: &str) -> Option<(Schema, u64)> {
        self.relations
            .get(name)
            .map(|r| (r.schema().clone(), r.cardinality() as u64))
    }
}

impl SourceProvider for MemCatalog {
    fn source(&mut self, name: &str) -> Result<Source> {
        self.relations
            .get(name)
            .map(Source::from_relation)
            .ok_or_else(|| PlanError::Validate(format!("unknown relation {name:?}")))
    }
}

impl RelationSource for MemCatalog {
    fn relation(&self, name: &str) -> Option<Relation> {
        self.relations.get(name).cloned()
    }
}

/// Parses, validates, and executes a plan over an in-memory catalog in
/// one call — the convenience entry point for tests and the CLI.
pub fn run_plan(text: &str, catalog: &MemCatalog, opts: &ExecOptions) -> Result<PlanOutput> {
    let plan = parse(text)?;
    let bound = bind(&plan, catalog)?;
    let mut provider = catalog.clone();
    execute(&bound, &mut provider, opts)
}
