//! Brute-force reference evaluation — the oracle the engine is checked
//! against.
//!
//! Every node is interpreted directly over in-memory relations with the
//! most obvious possible implementation (nested-loop join, group maps,
//! set-containment division), sharing no code with the execution engine.
//! Output *order* is unspecified on both sides, so comparisons go through
//! [`canonical_bytes`]: the sorted record encodings of a relation, which
//! are byte-identical exactly when two relations are bag-equal.

use std::collections::BTreeMap;

use reldiv_rel::{RecordCodec, Relation, Tuple, Value};

use crate::error::{PlanError, Result};
use crate::validate::{Bound, BoundNode, BoundPred};

/// Where the oracle finds base relations (in memory — the oracle never
/// touches storage).
pub trait RelationSource {
    /// A copy of relation `name`.
    fn relation(&self, name: &str) -> Option<Relation>;
}

fn pred_holds(pred: &BoundPred, t: &Tuple) -> bool {
    match pred {
        BoundPred::Compare { col, cmp, value } => match (t.value(*col), value) {
            (Value::Int(v), crate::ast::Lit::Int(target)) => cmp.eval(v.cmp(target)),
            (Value::Str(s), crate::ast::Lit::Str(target)) => {
                cmp.eval(s.as_str().cmp(target.as_str()))
            }
            _ => false,
        },
        BoundPred::Contains { col, needle } => match t.value(*col) {
            Value::Str(s) => s
                .to_ascii_lowercase()
                .contains(&needle.to_ascii_lowercase()),
            Value::Int(_) => false,
        },
    }
}

/// A total-order sort key for grouping (mirrors `Value::total_cmp`).
type GroupKey = Vec<(u8, i64, String)>;

fn group_key(t: &Tuple, cols: &[usize]) -> GroupKey {
    cols.iter()
        .map(|&c| match t.value(c) {
            Value::Int(i) => (0u8, *i, String::new()),
            Value::Str(s) => (1u8, 0, s.clone()),
        })
        .collect()
}

/// Evaluates a bound plan by brute force. Quadratic joins and divisions;
/// test-sized inputs only.
pub fn evaluate(bound: &Bound, src: &dyn RelationSource) -> Result<Relation> {
    let tuples = match &bound.node {
        BoundNode::Scan { relation } => src
            .relation(relation)
            .ok_or_else(|| PlanError::Validate(format!("unknown relation {relation:?}")))?
            .into_tuples(),
        BoundNode::Filter { pred, input } => evaluate(input, src)?
            .into_tuples()
            .into_iter()
            .filter(|t| pred_holds(pred, t))
            .collect(),
        BoundNode::Project { columns, input } => evaluate(input, src)?
            .tuples()
            .iter()
            .map(|t| t.project(columns))
            .collect(),
        BoundNode::Distinct { input } => {
            let mut seen = BTreeMap::new();
            for t in evaluate(input, src)?.into_tuples() {
                let all: Vec<usize> = (0..t.arity()).collect();
                seen.entry(group_key(&t, &all)).or_insert(t);
            }
            seen.into_values().collect()
        }
        BoundNode::Join {
            left_keys,
            right_keys,
            left,
            right,
        } => {
            let l = evaluate(left, src)?;
            let r = evaluate(right, src)?;
            let mut out = Vec::new();
            for lt in l.tuples() {
                for rt in r.tuples() {
                    if lt.eq_on(left_keys, rt, right_keys) {
                        let mut values = lt.values().to_vec();
                        values.extend(rt.values().iter().cloned());
                        out.push(Tuple::new(values));
                    }
                }
            }
            out
        }
        BoundNode::GroupCount { keys, input } => {
            let mut groups: BTreeMap<GroupKey, (Tuple, i64)> = BTreeMap::new();
            for t in evaluate(input, src)?.into_tuples() {
                groups
                    .entry(group_key(&t, keys))
                    .or_insert_with(|| (t.project(keys), 0))
                    .1 += 1;
            }
            groups
                .into_values()
                .map(|(rep, count)| {
                    let mut values = rep.into_values();
                    values.push(Value::Int(count));
                    Tuple::new(values)
                })
                .collect()
        }
        BoundNode::HavingCount { cmp, target, input } => {
            let rel = evaluate(input, src)?;
            let count_col = rel.schema().arity() - 1;
            let keep: Vec<usize> = (0..count_col).collect();
            rel.tuples()
                .iter()
                .filter(|t| match t.value(count_col) {
                    Value::Int(c) => cmp.eval(c.cmp(target)),
                    Value::Str(_) => false,
                })
                .map(|t| t.project(&keep))
                .collect()
        }
        BoundNode::Divide(d) => {
            let dividend = evaluate(&d.dividend, src)?;
            let divisor = evaluate(&d.divisor, src)?;
            // S = the distinct divisor tuples; a quotient group qualifies
            // when its set of divisor-attribute combinations covers S.
            // An empty divisor admits every group (universal quantification
            // over the empty set), matching the engine and the workload
            // crate's brute_force_divide.
            let divisor_set: std::collections::BTreeSet<GroupKey> = divisor
                .tuples()
                .iter()
                .map(|t| group_key(t, &(0..t.arity()).collect::<Vec<_>>()))
                .collect();
            let mut groups: BTreeMap<GroupKey, (Tuple, std::collections::BTreeSet<GroupKey>)> =
                BTreeMap::new();
            for t in dividend.tuples() {
                let entry = groups
                    .entry(group_key(t, &d.quotient_keys))
                    .or_insert_with(|| (t.project(&d.quotient_keys), Default::default()));
                let dkey = group_key(t, &d.divisor_keys);
                if divisor_set.contains(&dkey) {
                    entry.1.insert(dkey);
                }
            }
            groups
                .into_values()
                .filter(|(_, have)| have.len() == divisor_set.len())
                .map(|(t, _)| t)
                .collect()
        }
    };
    Relation::from_tuples(bound.schema.clone(), tuples)
        .map_err(|e| PlanError::Validate(format!("reference evaluation: {e}")))
}

/// The sorted record encodings of `rel` — a canonical byte form: two
/// relations are bag-equal iff their canonical bytes are identical.
pub fn canonical_bytes(rel: &Relation) -> Vec<Vec<u8>> {
    let codec = RecordCodec::new(rel.schema().clone());
    let mut rows: Vec<Vec<u8>> = rel
        .tuples()
        .iter()
        .map(|t| {
            let mut buf = Vec::with_capacity(codec.record_width());
            codec
                .encode_into(t, &mut buf)
                .expect("tuple conforms to its schema");
            buf
        })
        .collect();
    rows.sort();
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{execute, ExecOptions};
    use crate::parse::parse;
    use crate::validate::bind;
    use crate::MemCatalog;
    use reldiv_rel::schema::Field;
    use reldiv_rel::tuple::ints;
    use reldiv_rel::Schema;
    use reldiv_storage::manager::StorageConfig;
    use reldiv_storage::StorageManager;

    fn catalog() -> MemCatalog {
        let mut c = MemCatalog::new();
        // A dividend with duplicates and groups of varying completeness.
        let r = Relation::from_tuples(
            Schema::new(vec![Field::int("q"), Field::int("s")]),
            vec![
                ints(&[1, 1]),
                ints(&[1, 2]),
                ints(&[1, 2]),
                ints(&[2, 1]),
                ints(&[3, 1]),
                ints(&[3, 2]),
                ints(&[3, 3]),
            ],
        )
        .unwrap();
        let s = Relation::from_tuples(
            Schema::new(vec![Field::int("s")]),
            vec![ints(&[1]), ints(&[2])],
        )
        .unwrap();
        c.insert("r", r);
        c.insert("s", s);
        c
    }

    #[test]
    fn reference_agrees_with_the_engine_on_composed_plans() {
        let storage = StorageManager::shared(StorageConfig::large());
        for text in [
            "(divide (on s) (scan r) (scan s))",
            "(divide (on s) (filter (>= q 2) (scan r)) (scan s))",
            "(group-count (q) (scan r))",
            "(having-count >= 2 (group-count (q) (scan r)))",
            "(distinct (project (q) (scan r)))",
            "(join (on (q q)) (scan r) (scan r))",
            "(divide (on s) (distinct (scan r)) (distinct (scan s)))",
        ] {
            let bound = bind(&parse(text).unwrap(), &catalog()).unwrap();
            let oracle = evaluate(&bound, &catalog()).unwrap();
            let mut provider = catalog();
            let engine = execute(&bound, &mut provider, &ExecOptions::new(storage.clone()))
                .unwrap()
                .relation;
            assert_eq!(
                canonical_bytes(&oracle),
                canonical_bytes(&engine),
                "plan {text}"
            );
        }
    }

    #[test]
    fn empty_divisor_admits_every_group() {
        let mut c = catalog();
        c.insert("empty", Relation::empty(Schema::new(vec![Field::int("s")])));
        let bound = bind(&parse("(divide (on s) (scan r) (scan empty))").unwrap(), &c).unwrap();
        let oracle = evaluate(&bound, &c).unwrap();
        assert_eq!(oracle.cardinality(), 3, "groups 1, 2, 3 all qualify");
    }
}
