//! The plan parser: s-expression text → [`Plan`].
//!
//! Hand-written tokenizer and recursive-descent parser with hard bounds
//! (input length, nesting depth, node count) so hostile input from the
//! wire cannot blow the stack or allocate without limit. Errors carry the
//! byte offset they were detected at.

use crate::ast::{AlgorithmHint, Cmp, ColRef, DivideHints, Lit, Plan, Pred, Tri};
use crate::error::{PlanError, Result};

/// Longest accepted plan text, in bytes. The wire codec enforces the same
/// bound before the parser ever sees hostile input.
pub const MAX_PLAN_TEXT: usize = 1 << 20;
/// Deepest accepted plan nesting.
pub const MAX_PLAN_DEPTH: usize = 64;
/// Most plan nodes accepted in one text.
pub const MAX_PLAN_NODES: usize = 4096;

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    LParen,
    RParen,
    /// Identifier or operator token (`scan`, `course-no`, `<=`, ...).
    Ident(String),
    Int(i64),
    Str(String),
    /// Positional column reference `#3`.
    Hash(usize),
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: impl Into<String>) -> PlanError {
        PlanError::Parse(format!("{} at byte {}", msg.into(), self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.src.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => self.pos += 1,
                b';' => {
                    // Comment to end of line.
                    while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    fn is_ident_byte(b: u8) -> bool {
        b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.'
    }

    fn next(&mut self) -> Result<Option<Tok>> {
        self.skip_ws();
        let Some(&b) = self.src.get(self.pos) else {
            return Ok(None);
        };
        match b {
            b'(' => {
                self.pos += 1;
                Ok(Some(Tok::LParen))
            }
            b')' => {
                self.pos += 1;
                Ok(Some(Tok::RParen))
            }
            b'"' => self.string().map(Some),
            b'#' => {
                self.pos += 1;
                let start = self.pos;
                while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                    self.pos += 1;
                }
                if self.pos == start {
                    return Err(self.err("expected digits after '#'"));
                }
                let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
                let idx: usize = text
                    .parse()
                    .map_err(|_| self.err(format!("column index {text} out of range")))?;
                Ok(Some(Tok::Hash(idx)))
            }
            b'=' | b'!' | b'<' | b'>' => {
                let start = self.pos;
                self.pos += 1;
                if self.src.get(self.pos) == Some(&b'=') {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
                if Cmp::from_token(text).is_none() {
                    return Err(self.err(format!("unknown operator {text:?}")));
                }
                Ok(Some(Tok::Ident(text.to_owned())))
            }
            b'-' | b'0'..=b'9' => {
                let start = self.pos;
                self.pos += 1;
                while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
                let value: i64 = text
                    .parse()
                    .map_err(|_| self.err(format!("bad integer {text:?}")))?;
                Ok(Some(Tok::Int(value)))
            }
            b if b.is_ascii_alphabetic() || b == b'_' => {
                let start = self.pos;
                while self.pos < self.src.len() && Self::is_ident_byte(self.src[self.pos]) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.src[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in identifier"))?;
                Ok(Some(Tok::Ident(text.to_owned())))
            }
            _ => Err(self.err(format!("unexpected byte 0x{b:02x}"))),
        }
    }

    fn string(&mut self) -> Result<Tok> {
        debug_assert_eq!(self.src[self.pos], b'"');
        self.pos += 1;
        let mut out = String::new();
        loop {
            let Some(&b) = self.src.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(Tok::Str(out)),
                b'\\' => {
                    let Some(&e) = self.src.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        _ => return Err(self.err(format!("unknown escape \\{}", e as char))),
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 sequences from the source.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let mut end = self.pos;
                        while end < self.src.len() && (self.src[end] & 0xC0) == 0x80 {
                            end += 1;
                        }
                        let chunk = std::str::from_utf8(&self.src[start..end])
                            .map_err(|_| self.err("invalid utf-8 in string"))?;
                        out.push_str(chunk);
                        self.pos = end;
                    }
                }
            }
        }
    }
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
    nodes: usize,
}

impl Parser {
    fn err(&self, msg: impl Into<String>) -> PlanError {
        PlanError::Parse(format!("{} (token {})", msg.into(), self.pos))
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Result<Tok> {
        let tok = self
            .toks
            .get(self.pos)
            .cloned()
            .ok_or_else(|| self.err("unexpected end of input"))?;
        self.pos += 1;
        Ok(tok)
    }

    fn expect_lparen(&mut self) -> Result<()> {
        match self.next()? {
            Tok::LParen => Ok(()),
            t => Err(self.err(format!("expected '(', found {t:?}"))),
        }
    }

    fn expect_rparen(&mut self) -> Result<()> {
        match self.next()? {
            Tok::RParen => Ok(()),
            t => Err(self.err(format!("expected ')', found {t:?}"))),
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            t => Err(self.err(format!("expected identifier, found {t:?}"))),
        }
    }

    fn int(&mut self) -> Result<i64> {
        match self.next()? {
            Tok::Int(v) => Ok(v),
            t => Err(self.err(format!("expected integer, found {t:?}"))),
        }
    }

    fn col(&mut self) -> Result<ColRef> {
        match self.next()? {
            Tok::Ident(s) => Ok(ColRef::Name(s)),
            Tok::Hash(i) => Ok(ColRef::Index(i)),
            t => Err(self.err(format!("expected column reference, found {t:?}"))),
        }
    }

    /// `(col col ...)` — a parenthesized, possibly empty column list.
    fn col_list(&mut self) -> Result<Vec<ColRef>> {
        self.expect_lparen()?;
        let mut cols = Vec::new();
        while !matches!(self.peek(), Some(Tok::RParen)) {
            cols.push(self.col()?);
        }
        self.expect_rparen()?;
        Ok(cols)
    }

    fn lit(&mut self) -> Result<Lit> {
        match self.next()? {
            Tok::Int(v) => Ok(Lit::Int(v)),
            Tok::Str(s) => Ok(Lit::Str(s)),
            t => Err(self.err(format!("expected literal, found {t:?}"))),
        }
    }

    fn pred(&mut self) -> Result<Pred> {
        self.expect_lparen()?;
        let head = self.ident()?;
        let pred = if head == "contains" {
            let col = self.col()?;
            let needle = match self.next()? {
                Tok::Str(s) => s,
                t => return Err(self.err(format!("contains needs a string, found {t:?}"))),
            };
            Pred::Contains { col, needle }
        } else if let Some(cmp) = Cmp::from_token(&head) {
            let col = self.col()?;
            let value = self.lit()?;
            Pred::Compare { col, cmp, value }
        } else {
            return Err(self.err(format!("unknown predicate {head:?}")));
        };
        self.expect_rparen()?;
        Ok(pred)
    }

    fn plan(&mut self, depth: usize) -> Result<Plan> {
        if depth >= MAX_PLAN_DEPTH {
            return Err(self.err(format!("plan nesting exceeds {MAX_PLAN_DEPTH}")));
        }
        self.nodes += 1;
        if self.nodes > MAX_PLAN_NODES {
            return Err(self.err(format!("plan exceeds {MAX_PLAN_NODES} nodes")));
        }
        self.expect_lparen()?;
        let head = self.ident()?;
        let plan = match head.as_str() {
            "scan" => Plan::Scan {
                relation: self.ident()?,
            },
            "filter" => {
                let pred = self.pred()?;
                let input = Box::new(self.plan(depth + 1)?);
                Plan::Filter { pred, input }
            }
            "project" => {
                let columns = self.col_list()?;
                if columns.is_empty() {
                    return Err(self.err("project needs at least one column"));
                }
                let input = Box::new(self.plan(depth + 1)?);
                Plan::Project { columns, input }
            }
            "distinct" => Plan::Distinct {
                input: Box::new(self.plan(depth + 1)?),
            },
            "join" => {
                self.expect_lparen()?;
                let kw = self.ident()?;
                if kw != "on" {
                    return Err(self.err(format!("join expects (on ...), found {kw:?}")));
                }
                let mut on = Vec::new();
                while !matches!(self.peek(), Some(Tok::RParen)) {
                    self.expect_lparen()?;
                    let l = self.col()?;
                    let r = self.col()?;
                    self.expect_rparen()?;
                    on.push((l, r));
                }
                self.expect_rparen()?;
                if on.is_empty() {
                    return Err(self.err("join needs at least one key pair"));
                }
                let left = Box::new(self.plan(depth + 1)?);
                let right = Box::new(self.plan(depth + 1)?);
                Plan::Join { on, left, right }
            }
            "group-count" => {
                let keys = self.col_list()?;
                if keys.is_empty() {
                    return Err(self.err("group-count needs at least one key"));
                }
                let input = Box::new(self.plan(depth + 1)?);
                Plan::GroupCount { keys, input }
            }
            "having-count" => {
                let op = self.ident()?;
                let cmp = Cmp::from_token(&op)
                    .ok_or_else(|| self.err(format!("unknown comparison {op:?}")))?;
                let target = self.int()?;
                let input = Box::new(self.plan(depth + 1)?);
                Plan::HavingCount { cmp, target, input }
            }
            "divide" => self.divide(depth)?,
            other => return Err(self.err(format!("unknown plan node {other:?}"))),
        };
        self.expect_rparen()?;
        Ok(plan)
    }

    /// The body of `(divide ...)` after the head identifier: an `(on ...)`
    /// group, optional `(quotient ...)`/hint groups in any order, then the
    /// dividend and divisor subplans.
    fn divide(&mut self, depth: usize) -> Result<Plan> {
        let mut on: Option<Vec<ColRef>> = None;
        let mut quotient: Option<Vec<ColRef>> = None;
        let mut hints = DivideHints::default();
        loop {
            // Option groups are `(keyword ...)`; the first group whose
            // keyword is a plan-node head starts the subplans instead.
            let save = self.pos;
            self.expect_lparen()?;
            let head = self.ident()?;
            match head.as_str() {
                "on" => {
                    let mut cols = Vec::new();
                    while !matches!(self.peek(), Some(Tok::RParen)) {
                        cols.push(self.col()?);
                    }
                    self.expect_rparen()?;
                    if cols.is_empty() {
                        return Err(self.err("divide (on ...) needs at least one column"));
                    }
                    if on.replace(cols).is_some() {
                        return Err(self.err("duplicate (on ...) group"));
                    }
                }
                "quotient" => {
                    let mut cols = Vec::new();
                    while !matches!(self.peek(), Some(Tok::RParen)) {
                        cols.push(self.col()?);
                    }
                    self.expect_rparen()?;
                    if cols.is_empty() {
                        return Err(self.err("divide (quotient ...) needs at least one column"));
                    }
                    if quotient.replace(cols).is_some() {
                        return Err(self.err("duplicate (quotient ...) group"));
                    }
                }
                "algorithm" => {
                    let tok = self.ident()?;
                    hints.algorithm = AlgorithmHint::from_token(&tok)
                        .ok_or_else(|| self.err(format!("unknown algorithm {tok:?}")))?;
                    self.expect_rparen()?;
                }
                "restricted" => {
                    let tok = self.ident()?;
                    hints.restricted = Tri::from_token(&tok).ok_or_else(|| {
                        self.err(format!("restricted expects yes/no/auto, found {tok:?}"))
                    })?;
                    self.expect_rparen()?;
                }
                "unique" => {
                    let tok = self.ident()?;
                    hints.unique = Tri::from_token(&tok).ok_or_else(|| {
                        self.err(format!("unique expects yes/no/auto, found {tok:?}"))
                    })?;
                    self.expect_rparen()?;
                }
                _ => {
                    // Not an option group: rewind and parse the subplans.
                    self.pos = save;
                    break;
                }
            }
        }
        let on = on.ok_or_else(|| self.err("divide needs an (on ...) group"))?;
        let dividend = Box::new(self.plan(depth + 1)?);
        let divisor = Box::new(self.plan(depth + 1)?);
        Ok(Plan::Divide {
            on,
            quotient,
            hints,
            dividend,
            divisor,
        })
    }
}

/// Parses a plan text into a [`Plan`].
pub fn parse(text: &str) -> Result<Plan> {
    if text.len() > MAX_PLAN_TEXT {
        return Err(PlanError::Parse(format!(
            "plan text of {} bytes exceeds the {MAX_PLAN_TEXT}-byte limit",
            text.len()
        )));
    }
    let mut lexer = Lexer::new(text);
    let mut toks = Vec::new();
    while let Some(tok) = lexer.next()? {
        toks.push(tok);
    }
    let mut parser = Parser {
        toks,
        pos: 0,
        nodes: 0,
    };
    let plan = parser.plan(0)?;
    if parser.pos != parser.toks.len() {
        return Err(parser.err("trailing tokens after plan"));
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(text: &str) -> Plan {
        let plan = parse(text).expect("parse");
        let printed = plan.print();
        let again = parse(&printed).expect("reparse");
        assert_eq!(plan, again, "print→parse changed the plan: {printed}");
        plan
    }

    #[test]
    fn parses_the_paper_query() {
        let plan = roundtrip(
            r#"(divide (on course-no)
                 (project (student-id course-no) (scan transcript))
                 (project (course-no)
                   (filter (contains title "database") (scan courses))))"#,
        );
        assert_eq!(plan.relations(), vec!["courses", "transcript"]);
        assert_eq!(plan.node_count(), 6);
    }

    #[test]
    fn parses_hints_in_any_order() {
        let a = parse(
            "(divide (on b) (quotient a) (algorithm hash-div) (restricted no) (scan r) (scan s))",
        )
        .unwrap();
        let b = parse(
            "(divide (restricted no) (algorithm hash-div) (quotient a) (on b) (scan r) (scan s))",
        )
        .unwrap();
        assert_eq!(a, b);
        assert_eq!(a.print(), b.print());
    }

    #[test]
    fn comments_and_whitespace_are_ignored() {
        let plan = roundtrip("(scan r) ; trailing comment\n");
        assert_eq!(
            plan,
            Plan::Scan {
                relation: "r".into()
            }
        );
    }

    #[test]
    fn positional_columns_round_trip() {
        let plan = roundtrip("(project (#0 #2) (scan r))");
        match plan {
            Plan::Project { columns, .. } => {
                assert_eq!(columns, vec![ColRef::Index(0), ColRef::Index(2)]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        roundtrip(r#"(filter (contains title "say \"db\"\n\t\\") (scan r))"#);
    }

    #[test]
    fn rejects_malformed_plans() {
        for bad in [
            "",
            "(",
            ")",
            "(scan)",
            "(scan r) junk",
            "(scan r) (scan s)",
            "(filter (= a) (scan r))",
            "(filter (~ a 1) (scan r))",
            "(project () (scan r))",
            "(join (on) (scan r) (scan s))",
            "(divide (scan r) (scan s))",
            "(divide (on) (scan r) (scan s))",
            "(divide (on a) (algorithm warp) (scan r) (scan s))",
            "(having-count ? 3 (scan r))",
            "(frobnicate (scan r))",
            "(scan \u{1F980})",
            "(filter (contains title \"unterminated) (scan r))",
            "#",
            "(scan r",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_and_node_bounds_hold() {
        let mut deep = String::new();
        for _ in 0..(MAX_PLAN_DEPTH + 1) {
            deep.push_str("(distinct ");
        }
        deep.push_str("(scan r)");
        for _ in 0..(MAX_PLAN_DEPTH + 1) {
            deep.push(')');
        }
        assert!(parse(&deep).is_err());
        assert!(parse(&"x".repeat(MAX_PLAN_TEXT + 1)).is_err());
    }

    // ---- property test: parse → print → parse is the identity ----

    fn arb_name() -> impl Strategy<Value = String> {
        prop::sample::select(vec![
            "r",
            "s",
            "transcript",
            "courses",
            "a-b",
            "x_1",
            "col.v2",
        ])
        .prop_map(|s: &str| s.to_owned())
    }

    fn arb_col() -> impl Strategy<Value = ColRef> {
        prop_oneof![
            arb_name().prop_map(ColRef::Name),
            (0usize..8).prop_map(ColRef::Index),
        ]
    }

    fn arb_cmp() -> impl Strategy<Value = Cmp> {
        prop::sample::select(vec![Cmp::Eq, Cmp::Ne, Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge])
    }

    fn arb_lit() -> impl Strategy<Value = Lit> {
        prop_oneof![
            any::<i64>().prop_map(Lit::Int),
            prop::sample::select(vec!["", "db", "say \"db\"", "tab\tand\nnewline", "π ≠ 3"])
                .prop_map(|s: &str| Lit::Str(s.to_owned())),
        ]
    }

    fn arb_pred() -> impl Strategy<Value = Pred> {
        prop_oneof![
            (arb_col(), arb_cmp(), arb_lit()).prop_map(|(col, cmp, value)| Pred::Compare {
                col,
                cmp,
                value
            }),
            (arb_col(), arb_lit()).prop_map(|(col, lit)| Pred::Contains {
                col,
                needle: match lit {
                    Lit::Str(s) => s,
                    Lit::Int(v) => v.to_string(),
                },
            }),
        ]
    }

    fn arb_hints() -> impl Strategy<Value = DivideHints> {
        (
            prop::sample::select(vec![
                AlgorithmHint::Auto,
                AlgorithmHint::Naive,
                AlgorithmHint::SortAggJoin,
                AlgorithmHint::HashAgg,
                AlgorithmHint::HashDivEarly,
                AlgorithmHint::HashDivCounter,
            ]),
            prop::sample::select(vec![Tri::Auto, Tri::Yes, Tri::No]),
            prop::sample::select(vec![Tri::Auto, Tri::Yes, Tri::No]),
        )
            .prop_map(|(algorithm, restricted, unique)| DivideHints {
                algorithm,
                restricted,
                unique,
            })
    }

    /// A random plan of bounded depth. `depth` counts down to scans.
    fn arb_plan(depth: usize) -> BoxedStrategy<Plan> {
        if depth == 0 {
            return arb_name()
                .prop_map(|relation| Plan::Scan { relation })
                .boxed();
        }
        // The vendored proptest's strategies are not Clone, so each arm
        // builds its own fresh sub-strategies via these constructors.
        let inner = || arb_plan(depth - 1);
        let cols = || prop::collection::vec(arb_col(), 1..3);
        prop_oneof![
            arb_name().prop_map(|relation| Plan::Scan { relation }),
            (arb_pred(), inner()).prop_map(|(pred, input)| Plan::Filter {
                pred,
                input: Box::new(input)
            }),
            (cols(), inner()).prop_map(|(columns, input)| Plan::Project {
                columns,
                input: Box::new(input)
            }),
            inner().prop_map(|input| Plan::Distinct {
                input: Box::new(input)
            }),
            (
                prop::collection::vec((arb_col(), arb_col()), 1..3),
                inner(),
                inner()
            )
                .prop_map(|(on, left, right)| Plan::Join {
                    on,
                    left: Box::new(left),
                    right: Box::new(right)
                }),
            (cols(), inner()).prop_map(|(keys, input)| Plan::GroupCount {
                keys,
                input: Box::new(input)
            }),
            (arb_cmp(), any::<i64>(), inner()).prop_map(|(cmp, target, input)| {
                Plan::HavingCount {
                    cmp,
                    target,
                    input: Box::new(input),
                }
            }),
            (
                cols(),
                prop::option::of(cols()),
                arb_hints(),
                inner(),
                inner()
            )
                .prop_map(|(on, quotient, hints, dividend, divisor)| Plan::Divide {
                    on,
                    quotient,
                    hints,
                    dividend: Box::new(dividend),
                    divisor: Box::new(divisor)
                }),
        ]
        .boxed()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]
        #[test]
        fn parse_print_parse_is_identity(plan in arb_plan(3)) {
            let printed = plan.print();
            let reparsed = parse(&printed).expect("canonical form parses");
            prop_assert_eq!(&reparsed, &plan, "text: {}", printed);
            prop_assert_eq!(reparsed.print(), printed);
        }
    }
}
