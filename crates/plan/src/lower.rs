//! Lowering and execution: [`Bound`] → `reldiv-exec` operator tree →
//! quotient relation.
//!
//! The interesting node is division. The engine's four algorithms
//! (Sections 2–3 of the paper) consume [`Source`]s they can re-scan, so
//! non-leaf division inputs are materialized first; the algorithm for
//! each division is chosen per the Section 4 cost model from the bound
//! tree's cardinality estimates, unless the plan pins one with an
//! `(algorithm ...)` hint. Every choice made is reported back in
//! [`PlanOutput::choices`] so clients (and tests) can audit the planner.

use reldiv_core::api::Source;
use reldiv_core::{divide_with_report, Algorithm, DivisionConfig, DivisionSpec};
use reldiv_exec::agg::{HashCountAggregate, HashDistinct, HavingCount};
use reldiv_exec::batch::agg::BatchHavingCount;
use reldiv_exec::batch::distinct::BatchDistinct;
use reldiv_exec::batch::filter::{BatchCmp, BatchFilter, BatchPredicate};
use reldiv_exec::batch::join::BatchHashJoin;
use reldiv_exec::batch::profile::maybe_profile_batch;
use reldiv_exec::batch::project::BatchProject;
use reldiv_exec::batch::scan::BatchMemScan;
use reldiv_exec::batch::{collect_batches, BatchToTuple, TupleToBatch};
use reldiv_exec::filter::{self, Filter, Predicate};
use reldiv_exec::hash_join::HashJoin;
use reldiv_exec::merge_join::JoinMode;
use reldiv_exec::profile::{maybe_profile, ProfileSink, SpanScope};
use reldiv_exec::project::Project;
use reldiv_exec::scan::MemScan;
use reldiv_exec::{BoxedBatchOp, BoxedOp, CancelToken, ExecError, ExecMode, SpanKind};
use reldiv_rel::Relation;
use reldiv_storage::StorageRef;

use crate::ast::{AlgorithmHint, Cmp, Lit, Tri};
use crate::error::Result;
use crate::validate::{Bound, BoundDivide, BoundNode, BoundPred};

/// Where the executor finds base relations. The service implements this
/// over its versioned record files; [`MemCatalog`](crate::MemCatalog)
/// serves in-memory relations.
pub trait SourceProvider {
    /// A re-scannable source for relation `name`.
    fn source(&mut self, name: &str) -> Result<Source>;
}

/// How to run a plan.
pub struct ExecOptions {
    /// The storage manager funding scans, spills, and materializations.
    pub storage: StorageRef,
    /// Cooperative cancellation (deadlines).
    pub cancel: CancelToken,
    /// When present, every operator is wrapped in a profiling span.
    pub profile: Option<ProfileSink>,
    /// Whether a `(restricted no)` plan hint may relax the conservative
    /// referential-integrity assumption. The service disables this while
    /// fault injection is active: a fault-recovered relation may have
    /// dropped divisor tuples, silently breaking the no-join plans the
    /// hint unlocks.
    pub honor_restricted_hint: bool,
    /// Per-query memory budget for division working state, in bytes.
    /// When set, each division charges a child pool capped at this value
    /// (on top of the shared pool), so one query's hash tables degrade
    /// adaptively instead of starving the rest of the system.
    pub mem_budget: Option<usize>,
    /// Which execution engine lowers the plan. [`ExecMode::Batch`] (the
    /// default) runs the vectorized operators and hands divisions the
    /// batch in-memory path; [`ExecMode::Tuple`] is the tuple-at-a-time
    /// fallback. Both produce the same relation (bag-equal; row order may
    /// differ where an operator's output order is unspecified).
    pub exec: ExecMode,
}

impl ExecOptions {
    /// Plain options: no deadline, no profiling, hints honored, no
    /// per-query memory budget, batch execution.
    pub fn new(storage: StorageRef) -> ExecOptions {
        ExecOptions {
            storage,
            cancel: CancelToken::none(),
            profile: None,
            honor_restricted_hint: true,
            mem_budget: None,
            exec: ExecMode::Batch,
        }
    }
}

/// One division's planning decision, in plan-text order (post-order walk).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivisionChoice {
    /// The algorithm that ran.
    pub algorithm: Algorithm,
    /// Whether the divisor was treated as restricted (forcing the
    /// aggregation algorithms to join).
    pub restricted: bool,
    /// Whether the inputs were treated as duplicate-free.
    pub duplicate_free: bool,
    /// Divisor cardinality estimate fed to the cost model.
    pub divisor_rows: u64,
    /// Quotient cardinality estimate fed to the cost model.
    pub quotient_rows: u64,
    /// Dividend cardinality estimate fed to the cost model.
    pub dividend_rows: u64,
    /// True when an `(algorithm ...)` hint pinned the choice (the cost
    /// model was bypassed).
    pub pinned: bool,
    /// What the division had to do to survive memory pressure: phases
    /// attempted, partitions spilled/revived, bytes spooled. Clean runs
    /// carry a non-degraded report.
    pub report: reldiv_core::DegradationReport,
}

/// The result of executing a plan.
#[derive(Debug, Clone)]
pub struct PlanOutput {
    /// The final relation.
    pub relation: Relation,
    /// Every division's planning decision, in execution order.
    pub choices: Vec<DivisionChoice>,
}

/// Drains an operator into a relation, polling `cancel` between tuples.
/// The operator is closed on every exit path — including mid-drain errors
/// and cancellation — so profile spans finish and pinned pages unpin.
/// (Mirrors the private helper in `reldiv-core`.)
fn collect_cancel(mut op: BoxedOp, cancel: CancelToken) -> Result<Relation> {
    fn drain(op: &mut BoxedOp, cancel: CancelToken) -> Result<Relation> {
        op.open()?;
        let mut rel = Relation::empty(op.schema().clone());
        let mut budget = 0u32;
        while let Some(t) = op.next()? {
            cancel.checkpoint(&mut budget)?;
            rel.push(t).map_err(ExecError::from)?;
        }
        Ok(rel)
    }
    let result = drain(&mut op, cancel);
    let closed = op.close();
    let rel = result?;
    closed?;
    Ok(rel)
}

/// Batch-path counterpart of [`collect_cancel`]: the engine's
/// `collect_batches` already polls once per batch and closes on all
/// exits; this just adapts the error type.
fn collect_batches_plan(op: BoxedBatchOp, cancel: CancelToken) -> Result<Relation> {
    Ok(collect_batches(op, cancel)?)
}

fn compare_predicate(col: usize, cmp: Cmp, value: &Lit) -> Predicate {
    match value {
        Lit::Int(target) => {
            let target = *target;
            Box::new(move |t| {
                t.value(col)
                    .as_int()
                    .is_some_and(|v| cmp.eval(v.cmp(&target)))
            })
        }
        Lit::Str(target) => {
            let target = target.clone();
            Box::new(move |t| {
                t.value(col)
                    .as_str()
                    .is_some_and(|s| cmp.eval(s.cmp(target.as_str())))
            })
        }
    }
}

fn predicate(pred: &BoundPred) -> Predicate {
    match pred {
        BoundPred::Compare { col, cmp, value } => compare_predicate(*col, *cmp, value),
        BoundPred::Contains { col, needle } => filter::str_contains(*col, needle),
    }
}

fn batch_cmp(cmp: Cmp) -> BatchCmp {
    match cmp {
        Cmp::Eq => BatchCmp::Eq,
        Cmp::Ne => BatchCmp::Ne,
        Cmp::Lt => BatchCmp::Lt,
        Cmp::Le => BatchCmp::Le,
        Cmp::Gt => BatchCmp::Gt,
        Cmp::Ge => BatchCmp::Ge,
    }
}

fn batch_predicate(pred: &BoundPred) -> BatchPredicate {
    match pred {
        BoundPred::Compare { col, cmp, value } => match value {
            Lit::Int(target) => BatchPredicate::IntCompare {
                column: *col,
                cmp: batch_cmp(*cmp),
                target: *target,
            },
            Lit::Str(target) => BatchPredicate::StrCompare {
                column: *col,
                cmp: batch_cmp(*cmp),
                target: target.clone(),
            },
        },
        BoundPred::Contains { col, needle } => BatchPredicate::str_contains(*col, needle),
    }
}

struct Lowerer<'a> {
    provider: &'a mut dyn SourceProvider,
    opts: &'a ExecOptions,
    choices: Vec<DivisionChoice>,
}

impl<'a> Lowerer<'a> {
    fn wrap(&self, op: BoxedOp, label: String, kind: SpanKind) -> BoxedOp {
        maybe_profile(
            op,
            self.opts.profile.as_ref(),
            label,
            kind,
            Some(&self.opts.storage),
        )
    }

    fn wrap_batch(&self, op: BoxedBatchOp, label: String, kind: SpanKind) -> BoxedBatchOp {
        maybe_profile_batch(
            op,
            self.opts.profile.as_ref(),
            label,
            kind,
            Some(&self.opts.storage),
        )
    }

    /// Materializes a division input: leaf scans pass their source straight
    /// through (file-backed scans keep their real I/O profile); anything
    /// else runs to completion into a shared in-memory relation, on
    /// whichever execution path the options select.
    fn division_input(&mut self, bound: &Bound, role: &str) -> Result<Source> {
        if let BoundNode::Scan { relation } = &bound.node {
            return self.provider.source(relation);
        }
        let label = format!("materialize {role}");
        let rel = match self.opts.exec {
            ExecMode::Tuple => {
                let op = self.lower(bound)?;
                let op = self.wrap(op, label, SpanKind::Materialize);
                collect_cancel(op, self.opts.cancel)?
            }
            ExecMode::Batch => {
                let op = self.lower_batch(bound)?;
                let op = self.wrap_batch(op, label, SpanKind::Materialize);
                collect_batches_plan(op, self.opts.cancel)?
            }
        };
        Ok(Source::from_relation(&rel))
    }

    fn divide(&mut self, d: &BoundDivide, quotient_est: u64) -> Result<Relation> {
        let dividend = self.division_input(&d.dividend, "dividend")?;
        let divisor = self.division_input(&d.divisor, "divisor")?;
        let spec = DivisionSpec::new(
            dividend.schema(),
            divisor.schema(),
            d.divisor_keys.clone(),
            d.quotient_keys.clone(),
        )?;
        let restricted = !(d.hints.restricted == Tri::No && self.opts.honor_restricted_hint);
        let duplicate_free = match d.hints.unique {
            Tri::Yes => true,
            Tri::No => false,
            Tri::Auto => d.dividend.unique && d.divisor.unique,
        };
        let (algorithm, pinned) = match d.hints.algorithm {
            AlgorithmHint::Auto => (
                Algorithm::recommend(
                    d.divisor.rows.max(1),
                    quotient_est.max(1),
                    Some(d.dividend.rows.max(1)),
                    restricted,
                    duplicate_free,
                ),
                false,
            ),
            hint => (hint.algorithm().expect("non-auto hint"), true),
        };
        reldiv_core::api::validate_algorithm_for_inputs(algorithm, duplicate_free)?;
        let config = DivisionConfig {
            assume_unique: duplicate_free,
            cancel: self.opts.cancel,
            profile: self.opts.profile.clone(),
            mem_budget: self.opts.mem_budget,
            exec: self.opts.exec,
            ..DivisionConfig::default()
        };
        let (rel, report) = divide_with_report(
            &self.opts.storage,
            &dividend,
            &divisor,
            &spec,
            algorithm,
            &config,
        )?;
        self.choices.push(DivisionChoice {
            algorithm,
            restricted,
            duplicate_free,
            divisor_rows: d.divisor.rows.max(1),
            quotient_rows: quotient_est.max(1),
            dividend_rows: d.dividend.rows.max(1),
            pinned,
            report,
        });
        Ok(rel)
    }

    fn lower(&mut self, bound: &Bound) -> Result<BoxedOp> {
        let pool = self.opts.storage.borrow().memory();
        Ok(match &bound.node {
            BoundNode::Scan { relation } => {
                let source = self.provider.source(relation)?;
                self.wrap(
                    source.scan(&self.opts.storage),
                    format!("scan {relation}"),
                    SpanKind::Scan,
                )
            }
            BoundNode::Filter { pred, input } => {
                let label = format!("filter {}", pred.describe(&input.schema));
                let child = self.lower(input)?;
                self.wrap(
                    Box::new(Filter::new(child, predicate(pred))),
                    label,
                    SpanKind::Filter,
                )
            }
            BoundNode::Project { columns, input } => {
                let child = self.lower(input)?;
                self.wrap(
                    Box::new(Project::new(child, columns.clone())?),
                    format!("project {columns:?}"),
                    SpanKind::Project,
                )
            }
            BoundNode::Distinct { input } => {
                let child = self.lower(input)?;
                self.wrap(
                    Box::new(HashDistinct::new(child, pool)),
                    "distinct".to_owned(),
                    SpanKind::Distinct,
                )
            }
            BoundNode::Join {
                left_keys,
                right_keys,
                left,
                right,
            } => {
                let l = self.lower(left)?;
                let r = self.lower(right)?;
                let join =
                    HashJoin::new(l, r, left_keys.clone(), right_keys.clone(), JoinMode::Inner)?
                        .with_pool(pool);
                self.wrap(Box::new(join), "hash-join".to_owned(), SpanKind::HashJoin)
            }
            BoundNode::GroupCount { keys, input } => {
                let child = self.lower(input)?;
                let agg = HashCountAggregate::new(child, keys.clone(), pool)?
                    .with_spill(self.opts.storage.clone());
                self.wrap(
                    Box::new(agg),
                    format!("group-count {keys:?}"),
                    SpanKind::Aggregation,
                )
            }
            BoundNode::HavingCount { cmp, target, input } => {
                let child = self.lower(input)?;
                let label = format!("having count {} {target}", cmp.token());
                let op: BoxedOp = if *cmp == Cmp::Eq {
                    Box::new(HavingCount::new(child, *target)?)
                } else {
                    // The engine's HavingCount is equality-only (the
                    // division-by-counting case); other comparisons lower
                    // to a filter on the count column plus a projection
                    // dropping it.
                    let count_col = child.schema().arity() - 1;
                    let keep: Vec<usize> = (0..count_col).collect();
                    let filtered = Box::new(Filter::new(
                        child,
                        compare_predicate(count_col, *cmp, &Lit::Int(*target)),
                    ));
                    Box::new(Project::new(filtered, keep)?)
                };
                self.wrap(op, label, SpanKind::Having)
            }
            BoundNode::Divide(d) => {
                let rel = self.divide(d, bound.rows)?;
                let (schema, tuples) = (rel.schema().clone(), rel.into_tuples());
                Box::new(MemScan::shared(schema, std::rc::Rc::new(tuples)))
            }
        })
    }

    /// The vectorized twin of [`Lowerer::lower`]: same tree shape, same
    /// span labels, batch operators throughout. Group-count keeps the
    /// tuple engine's spill-capable aggregate behind bridge adapters; the
    /// rest of the pipeline stays batch-at-a-time.
    fn lower_batch(&mut self, bound: &Bound) -> Result<BoxedBatchOp> {
        let pool = self.opts.storage.borrow().memory();
        Ok(match &bound.node {
            BoundNode::Scan { relation } => {
                let source = self.provider.source(relation)?;
                self.wrap_batch(
                    source.scan_batches(&self.opts.storage),
                    format!("scan {relation}"),
                    SpanKind::Scan,
                )
            }
            BoundNode::Filter { pred, input } => {
                let label = format!("filter {}", pred.describe(&input.schema));
                let child = self.lower_batch(input)?;
                self.wrap_batch(
                    Box::new(BatchFilter::new(child, batch_predicate(pred))),
                    label,
                    SpanKind::Filter,
                )
            }
            BoundNode::Project { columns, input } => {
                let child = self.lower_batch(input)?;
                self.wrap_batch(
                    Box::new(BatchProject::new(child, columns.clone())?),
                    format!("project {columns:?}"),
                    SpanKind::Project,
                )
            }
            BoundNode::Distinct { input } => {
                let child = self.lower_batch(input)?;
                self.wrap_batch(
                    Box::new(BatchDistinct::new(child, pool)),
                    "distinct".to_owned(),
                    SpanKind::Distinct,
                )
            }
            BoundNode::Join {
                left_keys,
                right_keys,
                left,
                right,
            } => {
                let l = self.lower_batch(left)?;
                let r = self.lower_batch(right)?;
                let join = BatchHashJoin::new(l, r, left_keys.clone(), right_keys.clone(), pool)?;
                self.wrap_batch(Box::new(join), "hash-join".to_owned(), SpanKind::HashJoin)
            }
            BoundNode::GroupCount { keys, input } => {
                // The spill-capable count aggregate is tuple-at-a-time;
                // bridge into and out of it so overflow handling stays
                // identical on both paths.
                let child = self.lower_batch(input)?;
                let agg = HashCountAggregate::new(
                    Box::new(BatchToTuple::new(child)),
                    keys.clone(),
                    pool,
                )?
                .with_spill(self.opts.storage.clone());
                self.wrap_batch(
                    Box::new(TupleToBatch::new(Box::new(agg))),
                    format!("group-count {keys:?}"),
                    SpanKind::Aggregation,
                )
            }
            BoundNode::HavingCount { cmp, target, input } => {
                let child = self.lower_batch(input)?;
                let label = format!("having count {} {target}", cmp.token());
                let op: BoxedBatchOp = if *cmp == Cmp::Eq {
                    Box::new(BatchHavingCount::new(child, *target)?)
                } else {
                    // Same rewrite as the tuple path: filter on the count
                    // column, then project it away.
                    let count_col = child.schema().arity() - 1;
                    let keep: Vec<usize> = (0..count_col).collect();
                    let filtered = Box::new(BatchFilter::new(
                        child,
                        BatchPredicate::IntCompare {
                            column: count_col,
                            cmp: batch_cmp(*cmp),
                            target: *target,
                        },
                    ));
                    Box::new(BatchProject::new(filtered, keep)?)
                };
                self.wrap_batch(op, label, SpanKind::Having)
            }
            BoundNode::Divide(d) => {
                let rel = self.divide(d, bound.rows)?;
                let (schema, tuples) = (rel.schema().clone(), rel.into_tuples());
                Box::new(BatchMemScan::shared(schema, std::rc::Rc::new(tuples)))
            }
        })
    }
}

/// Executes a bound plan. When `opts.profile` is set, the whole run is
/// covered by a root `plan` span with one child span per operator (and
/// per division phase).
pub fn execute(
    bound: &Bound,
    provider: &mut dyn SourceProvider,
    opts: &ExecOptions,
) -> Result<PlanOutput> {
    let root = opts.profile.as_ref().map(|sink| {
        SpanScope::enter(
            sink,
            "plan".to_owned(),
            SpanKind::Query,
            Some(opts.storage.clone()),
        )
    });
    let mut lowerer = Lowerer {
        provider,
        opts,
        choices: Vec::new(),
    };
    let result = match opts.exec {
        ExecMode::Tuple => lowerer
            .lower(bound)
            .and_then(|op| collect_cancel(op, opts.cancel)),
        ExecMode::Batch => lowerer
            .lower_batch(bound)
            .and_then(|op| collect_batches_plan(op, opts.cancel)),
    };
    let choices = lowerer.choices;
    if let Some(root) = root {
        root.finish();
    }
    Ok(PlanOutput {
        relation: result?,
        choices,
    })
}

/// The output schema check: executing must yield exactly the schema the
/// validator promised. Exposed for tests and the service's debug asserts.
pub fn schema_matches(bound: &Bound, relation: &Relation) -> bool {
    bound.schema == *relation.schema()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use crate::validate::bind;
    use crate::MemCatalog;
    use reldiv_rel::schema::Field;
    use reldiv_rel::tuple::ints;
    use reldiv_rel::{Schema, Tuple, Value};
    use reldiv_storage::manager::StorageConfig;
    use reldiv_storage::StorageManager;

    fn storage() -> StorageRef {
        StorageManager::shared(StorageConfig::large())
    }

    fn catalog() -> MemCatalog {
        let mut c = MemCatalog::new();
        let transcript = Relation::from_tuples(
            Schema::new(vec![Field::int("student-id"), Field::int("course-no")]),
            vec![
                ints(&[1, 10]),
                ints(&[1, 11]),
                ints(&[1, 12]),
                ints(&[2, 10]),
                ints(&[2, 12]),
                ints(&[3, 11]),
            ],
        )
        .unwrap();
        let courses = Relation::from_tuples(
            Schema::new(vec![Field::int("course-no"), Field::str("title", 24)]),
            vec![
                Tuple::new(vec![Value::Int(10), Value::Str("Database Systems".into())]),
                Tuple::new(vec![Value::Int(11), Value::Str("Compilers".into())]),
                Tuple::new(vec![Value::Int(12), Value::Str("Database Theory".into())]),
            ],
        )
        .unwrap();
        c.insert("transcript", transcript);
        c.insert("courses", courses);
        c
    }

    fn run(text: &str) -> PlanOutput {
        let bound = bind(&parse(text).unwrap(), &catalog()).unwrap();
        let mut provider = catalog();
        execute(&bound, &mut provider, &ExecOptions::new(storage())).unwrap()
    }

    fn sorted_rows(rel: &Relation) -> Vec<Vec<Value>> {
        let mut rows: Vec<Vec<Value>> = rel.tuples().iter().map(|t| t.values().to_vec()).collect();
        rows.sort_by(|a, b| {
            a.iter()
                .zip(b.iter())
                .map(|(x, y)| x.total_cmp(y))
                .find(|o| *o != std::cmp::Ordering::Equal)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        rows
    }

    #[test]
    fn executes_the_motivating_query() {
        // "Students who have taken all database courses" (Section 1).
        let out = run("(divide (on course-no) \
               (scan transcript) \
               (project (course-no) \
                 (filter (contains title \"database\") (scan courses))))");
        assert_eq!(
            sorted_rows(&out.relation),
            vec![vec![Value::Int(1)], vec![Value::Int(2)]]
        );
        assert_eq!(out.choices.len(), 1);
        assert!(!out.choices[0].pinned);
        assert!(
            out.choices[0].restricted,
            "hint-free default is conservative"
        );
    }

    #[test]
    fn algorithm_hints_pin_the_choice() {
        for (hint, want) in [
            ("naive", Algorithm::Naive),
            ("sort-agg-join", Algorithm::SortAggregation { join: true }),
            ("hash-agg-join", Algorithm::HashAggregation { join: true }),
        ] {
            let out = run(&format!(
                "(divide (on course-no) (algorithm {hint}) \
                   (scan transcript) (project (course-no) (scan courses)))"
            ));
            assert_eq!(out.choices[0].algorithm, want, "{hint}");
            assert!(out.choices[0].pinned);
            assert_eq!(
                sorted_rows(&out.relation),
                vec![vec![Value::Int(1)]],
                "{hint}: only student 1 took all three courses"
            );
        }
    }

    #[test]
    fn having_count_composes_over_group_count() {
        // Students with at least two courses.
        let out = run("(having-count >= 2 (group-count (student-id) (scan transcript)))");
        assert_eq!(
            sorted_rows(&out.relation),
            vec![vec![Value::Int(1)], vec![Value::Int(2)]]
        );
        // Equality goes through the engine's HavingCount operator.
        let out = run("(having-count = 1 (group-count (student-id) (scan transcript)))");
        assert_eq!(sorted_rows(&out.relation), vec![vec![Value::Int(3)]]);
    }

    #[test]
    fn join_and_distinct_compose_with_division() {
        // Join transcripts with course titles, filter to database courses,
        // then divide by the database course list: same students as the
        // motivating query, via a different plan shape.
        let out = run("(divide (on course-no) \
               (distinct (project (student-id course-no) \
                 (filter (contains title \"database\") \
                   (join (on (course-no course-no)) (scan transcript) (scan courses))))) \
               (project (course-no) \
                 (filter (contains title \"database\") (scan courses))))");
        assert_eq!(
            sorted_rows(&out.relation),
            vec![vec![Value::Int(1)], vec![Value::Int(2)]]
        );
    }

    #[test]
    fn restricted_hint_gates_on_exec_options() {
        let text = "(divide (on course-no) (restricted no) \
                      (scan transcript) (project (course-no) (scan courses)))";
        let bound = bind(&parse(text).unwrap(), &catalog()).unwrap();
        let mut provider = catalog();
        let honored = execute(&bound, &mut provider, &ExecOptions::new(storage())).unwrap();
        assert!(!honored.choices[0].restricted);
        let mut opts = ExecOptions::new(storage());
        opts.honor_restricted_hint = false;
        let mut provider = catalog();
        let ignored = execute(&bound, &mut provider, &opts).unwrap();
        assert!(ignored.choices[0].restricted);
        // Same answer either way — the hint only changes plan choice.
        assert_eq!(
            sorted_rows(&honored.relation),
            sorted_rows(&ignored.relation)
        );
    }

    #[test]
    fn profiled_run_has_a_span_per_operator() {
        let text = "(having-count >= 1 (group-count (student-id) \
                      (filter (= course-no 10) (scan transcript))))";
        let bound = bind(&parse(text).unwrap(), &catalog()).unwrap();
        let mut provider = catalog();
        let sink = ProfileSink::new();
        let mut opts = ExecOptions::new(storage());
        opts.profile = Some(sink.clone());
        execute(&bound, &mut provider, &opts).unwrap();
        let profile = sink.finish();
        let mut labels = Vec::new();
        fn walk(n: &reldiv_exec::profile::ProfileNode, out: &mut Vec<String>) {
            out.push(n.label.clone());
            for c in &n.children {
                walk(c, out);
            }
        }
        walk(&profile.root, &mut labels);
        for want in [
            "plan",
            "having count >= 1",
            "group-count",
            "filter",
            "scan transcript",
        ] {
            assert!(
                labels.iter().any(|l| l.starts_with(want)),
                "missing {want:?} in {labels:?}"
            );
        }
    }

    #[test]
    fn mem_budget_reaches_division_and_report_surfaces() {
        // A transcript big enough that its quotient table overflows a
        // 32 KB per-query budget: the division must degrade adaptively
        // (visible in the choice's report) yet answer correctly.
        let mut c = MemCatalog::new();
        let mut rows = Vec::new();
        for s in 0..2000 {
            rows.push(ints(&[s, 10]));
            rows.push(ints(&[s, 11]));
        }
        let transcript = Relation::from_tuples(
            Schema::new(vec![Field::int("student-id"), Field::int("course-no")]),
            rows,
        )
        .unwrap();
        let courses = Relation::from_tuples(
            Schema::new(vec![Field::int("course-no")]),
            vec![ints(&[10]), ints(&[11])],
        )
        .unwrap();
        c.insert("transcript", transcript);
        c.insert("courses", courses);
        let text = "(divide (on course-no) (algorithm hash-div) \
                      (scan transcript) (scan courses))";
        let bound = bind(&parse(text).unwrap(), &c).unwrap();
        let mut opts = ExecOptions::new(storage());
        opts.mem_budget = Some(32 * 1024);
        let mut provider = c.clone();
        let out = execute(&bound, &mut provider, &opts).unwrap();
        assert_eq!(out.relation.cardinality(), 2000);
        assert!(out.choices[0].report.degraded, "32 KB budget must bite");
        assert!(out.choices[0].report.partitions_spilled > 0);
        // Without the budget the same plan runs clean.
        let mut provider = c.clone();
        let clean = execute(&bound, &mut provider, &ExecOptions::new(storage())).unwrap();
        assert_eq!(clean.relation.cardinality(), 2000);
        assert!(!clean.choices[0].report.degraded);
    }

    #[test]
    fn multiple_divisions_in_one_plan() {
        // Divide twice: students with all database courses, then feed that
        // (joined back with transcript) into a second division by the
        // full course list — an empty result here, since database courses
        // are only two of three.
        let out = run("(divide (on course-no) \
               (join (on (student-id student-id)) \
                 (divide (on course-no) \
                   (scan transcript) \
                   (project (course-no) (filter (contains title \"database\") (scan courses)))) \
                 (scan transcript)) \
               (project (course-no) (scan courses)))");
        assert_eq!(out.choices.len(), 2);
        // The join carries student-id twice, so the default quotient is
        // the (student-id, student-id) pair.
        assert_eq!(
            sorted_rows(&out.relation),
            vec![vec![Value::Int(1), Value::Int(1)]]
        );
    }
}
