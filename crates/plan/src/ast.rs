//! The logical plan language: abstract syntax and the canonical printer.
//!
//! Plans are written as s-expressions (see `docs/PLANS.md` for the
//! grammar). The printer emits the *canonical* form — one line, single
//! spaces, option groups in a fixed order — and the parser accepts any
//! whitespace and any option-group order, so `parse ∘ print` is the
//! identity on syntax trees (property-tested in `parse.rs`).

use std::collections::BTreeSet;
use std::fmt::Write as _;

use reldiv_core::hash_division::HashDivisionMode;
use reldiv_core::Algorithm;

/// A column reference: by name (resolved against the input schema,
/// leftmost match wins) or by position (`#3`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColRef {
    /// Reference by field name.
    Name(String),
    /// Reference by zero-based position.
    Index(usize),
}

impl ColRef {
    fn print_into(&self, out: &mut String) {
        match self {
            ColRef::Name(n) => out.push_str(n),
            ColRef::Index(i) => {
                let _ = write!(out, "#{i}");
            }
        }
    }
}

/// A literal value in a predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lit {
    /// Integer literal.
    Int(i64),
    /// String literal (double-quoted in the text form).
    Str(String),
}

impl Lit {
    fn print_into(&self, out: &mut String) {
        match self {
            Lit::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Lit::Str(s) => print_quoted(s, out),
        }
    }
}

/// Prints a double-quoted string literal with escapes.
pub(crate) fn print_quoted(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl Cmp {
    /// The operator's source token.
    pub fn token(self) -> &'static str {
        match self {
            Cmp::Eq => "=",
            Cmp::Ne => "!=",
            Cmp::Lt => "<",
            Cmp::Le => "<=",
            Cmp::Gt => ">",
            Cmp::Ge => ">=",
        }
    }

    /// Parses an operator token.
    pub fn from_token(tok: &str) -> Option<Cmp> {
        Some(match tok {
            "=" => Cmp::Eq,
            "!=" => Cmp::Ne,
            "<" => Cmp::Lt,
            "<=" => Cmp::Le,
            ">" => Cmp::Gt,
            ">=" => Cmp::Ge,
            _ => return None,
        })
    }

    /// Applies the comparison to an ordering of `left` vs `right`.
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, ord),
            (Cmp::Eq, Equal)
                | (Cmp::Ne, Less | Greater)
                | (Cmp::Lt, Less)
                | (Cmp::Le, Less | Equal)
                | (Cmp::Gt, Greater)
                | (Cmp::Ge, Greater | Equal)
        )
    }
}

/// A selection predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pred {
    /// `(<cmp> col lit)` — compare a column against a literal.
    Compare {
        /// The column compared.
        col: ColRef,
        /// The comparison operator.
        cmp: Cmp,
        /// The literal compared against.
        value: Lit,
    },
    /// `(contains col "needle")` — case-insensitive substring match on a
    /// string column (the paper's "title contains 'database'" selection).
    Contains {
        /// The string column searched.
        col: ColRef,
        /// The needle, matched case-insensitively.
        needle: String,
    },
}

impl Pred {
    fn print_into(&self, out: &mut String) {
        match self {
            Pred::Compare { col, cmp, value } => {
                out.push('(');
                out.push_str(cmp.token());
                out.push(' ');
                col.print_into(out);
                out.push(' ');
                value.print_into(out);
                out.push(')');
            }
            Pred::Contains { col, needle } => {
                out.push_str("(contains ");
                col.print_into(out);
                out.push(' ');
                print_quoted(needle, out);
                out.push(')');
            }
        }
    }
}

/// An explicit division-algorithm hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AlgorithmHint {
    /// Let the Section 4 cost model choose (the default).
    #[default]
    Auto,
    /// Naive sorted-merge division.
    Naive,
    /// Sort-based aggregation, no semi-join.
    SortAgg,
    /// Sort-based aggregation with merge semi-join.
    SortAggJoin,
    /// Hash-based aggregation, no semi-join.
    HashAgg,
    /// Hash-based aggregation with hash semi-join.
    HashAggJoin,
    /// Hash-division (standard).
    HashDiv,
    /// Hash-division with early-out.
    HashDivEarly,
    /// Hash-division, counter-only.
    HashDivCounter,
}

impl AlgorithmHint {
    /// The hint's source token.
    pub fn token(self) -> &'static str {
        match self {
            AlgorithmHint::Auto => "auto",
            AlgorithmHint::Naive => "naive",
            AlgorithmHint::SortAgg => "sort-agg",
            AlgorithmHint::SortAggJoin => "sort-agg-join",
            AlgorithmHint::HashAgg => "hash-agg",
            AlgorithmHint::HashAggJoin => "hash-agg-join",
            AlgorithmHint::HashDiv => "hash-div",
            AlgorithmHint::HashDivEarly => "hash-div-early",
            AlgorithmHint::HashDivCounter => "hash-div-counter",
        }
    }

    /// Parses a hint token.
    pub fn from_token(tok: &str) -> Option<AlgorithmHint> {
        Some(match tok {
            "auto" => AlgorithmHint::Auto,
            "naive" => AlgorithmHint::Naive,
            "sort-agg" => AlgorithmHint::SortAgg,
            "sort-agg-join" => AlgorithmHint::SortAggJoin,
            "hash-agg" => AlgorithmHint::HashAgg,
            "hash-agg-join" => AlgorithmHint::HashAggJoin,
            "hash-div" => AlgorithmHint::HashDiv,
            "hash-div-early" => AlgorithmHint::HashDivEarly,
            "hash-div-counter" => AlgorithmHint::HashDivCounter,
            _ => return None,
        })
    }

    /// The forced algorithm, or `None` for `Auto`.
    pub fn algorithm(self) -> Option<Algorithm> {
        Some(match self {
            AlgorithmHint::Auto => return None,
            AlgorithmHint::Naive => Algorithm::Naive,
            AlgorithmHint::SortAgg => Algorithm::SortAggregation { join: false },
            AlgorithmHint::SortAggJoin => Algorithm::SortAggregation { join: true },
            AlgorithmHint::HashAgg => Algorithm::HashAggregation { join: false },
            AlgorithmHint::HashAggJoin => Algorithm::HashAggregation { join: true },
            AlgorithmHint::HashDiv => Algorithm::HashDivision {
                mode: HashDivisionMode::Standard,
            },
            AlgorithmHint::HashDivEarly => Algorithm::HashDivision {
                mode: HashDivisionMode::EarlyOut,
            },
            AlgorithmHint::HashDivCounter => Algorithm::HashDivision {
                mode: HashDivisionMode::CounterOnly,
            },
        })
    }
}

/// A three-valued property hint: derive it, or assert it either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Tri {
    /// Derive the property from the plan (the default).
    #[default]
    Auto,
    /// Assert the property holds.
    Yes,
    /// Assert the property does not hold.
    No,
}

impl Tri {
    /// The hint's source token.
    pub fn token(self) -> &'static str {
        match self {
            Tri::Auto => "auto",
            Tri::Yes => "yes",
            Tri::No => "no",
        }
    }

    /// Parses a hint token.
    pub fn from_token(tok: &str) -> Option<Tri> {
        Some(match tok {
            "auto" => Tri::Auto,
            "yes" => Tri::Yes,
            "no" => Tri::No,
            _ => return None,
        })
    }
}

/// Per-division planner hints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DivideHints {
    /// Force a specific algorithm instead of the cost model's choice.
    pub algorithm: AlgorithmHint,
    /// Whether the dividend may reference divisor-attribute values absent
    /// from the divisor (Section 5.2's *restricted divisor*). `Auto` is
    /// conservative (`yes`); `no` asserts referential integrity and
    /// unlocks the no-join aggregation plans.
    pub restricted: Tri,
    /// Whether both division inputs are duplicate-free. `Auto` derives it
    /// from the plan shape (`distinct`/`group-count` outputs are
    /// duplicate-free, scans are not).
    pub unique: Tri,
}

/// A logical plan node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Plan {
    /// `(scan name)` — read a catalog relation.
    Scan {
        /// The catalog name.
        relation: String,
    },
    /// `(filter pred input)` — selection.
    Filter {
        /// The predicate.
        pred: Pred,
        /// The input plan.
        input: Box<Plan>,
    },
    /// `(project (col ...) input)` — projection (bag semantics, no
    /// duplicate elimination; compose with `distinct` for sets).
    Project {
        /// The columns kept, in output order.
        columns: Vec<ColRef>,
        /// The input plan.
        input: Box<Plan>,
    },
    /// `(distinct input)` — duplicate elimination over all columns.
    Distinct {
        /// The input plan.
        input: Box<Plan>,
    },
    /// `(join (on (l r) ...) left right)` — inner equi-join; the output
    /// schema is the left fields followed by the right fields.
    Join {
        /// Join key pairs: `(left column, right column)`.
        on: Vec<(ColRef, ColRef)>,
        /// The left (probe) input.
        left: Box<Plan>,
        /// The right (build) input.
        right: Box<Plan>,
    },
    /// `(group-count (key ...) input)` — grouped `COUNT(*)`; appends an
    /// integer `count` column after the group keys.
    GroupCount {
        /// The grouping columns.
        keys: Vec<ColRef>,
        /// The input plan.
        input: Box<Plan>,
    },
    /// `(having-count cmp n input)` — filter grouped rows by their
    /// trailing `count` column, then project the count away (SQL's
    /// `HAVING COUNT(*) cmp n`).
    HavingCount {
        /// The comparison applied to the count.
        cmp: Cmp,
        /// The literal compared against.
        target: i64,
        /// The input plan (must end in an integer `count` column).
        input: Box<Plan>,
    },
    /// `(divide (on col ...) [(quotient col ...)] [hints] dividend
    /// divisor)` — relational division. `on` names the dividend columns
    /// matched positionally against the divisor's columns; `quotient`
    /// defaults to every other dividend column, in schema order.
    Divide {
        /// Dividend columns matched against the divisor, in divisor
        /// column order.
        on: Vec<ColRef>,
        /// Quotient columns; `None` means all non-`on` columns.
        quotient: Option<Vec<ColRef>>,
        /// Planner hints.
        hints: DivideHints,
        /// The dividend plan.
        dividend: Box<Plan>,
        /// The divisor plan.
        divisor: Box<Plan>,
    },
}

impl Plan {
    /// Renders the canonical text form.
    pub fn print(&self) -> String {
        let mut out = String::new();
        self.print_into(&mut out);
        out
    }

    fn print_cols(cols: &[ColRef], out: &mut String) {
        out.push('(');
        for (i, c) in cols.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            c.print_into(out);
        }
        out.push(')');
    }

    fn print_into(&self, out: &mut String) {
        match self {
            Plan::Scan { relation } => {
                let _ = write!(out, "(scan {relation})");
            }
            Plan::Filter { pred, input } => {
                out.push_str("(filter ");
                pred.print_into(out);
                out.push(' ');
                input.print_into(out);
                out.push(')');
            }
            Plan::Project { columns, input } => {
                out.push_str("(project ");
                Self::print_cols(columns, out);
                out.push(' ');
                input.print_into(out);
                out.push(')');
            }
            Plan::Distinct { input } => {
                out.push_str("(distinct ");
                input.print_into(out);
                out.push(')');
            }
            Plan::Join { on, left, right } => {
                out.push_str("(join (on");
                for (l, r) in on {
                    out.push_str(" (");
                    l.print_into(out);
                    out.push(' ');
                    r.print_into(out);
                    out.push(')');
                }
                out.push_str(") ");
                left.print_into(out);
                out.push(' ');
                right.print_into(out);
                out.push(')');
            }
            Plan::GroupCount { keys, input } => {
                out.push_str("(group-count ");
                Self::print_cols(keys, out);
                out.push(' ');
                input.print_into(out);
                out.push(')');
            }
            Plan::HavingCount { cmp, target, input } => {
                let _ = write!(out, "(having-count {} {target} ", cmp.token());
                input.print_into(out);
                out.push(')');
            }
            Plan::Divide {
                on,
                quotient,
                hints,
                dividend,
                divisor,
            } => {
                out.push_str("(divide (on");
                for c in on {
                    out.push(' ');
                    c.print_into(out);
                }
                out.push(')');
                if let Some(q) = quotient {
                    out.push_str(" (quotient");
                    for c in q {
                        out.push(' ');
                        c.print_into(out);
                    }
                    out.push(')');
                }
                if hints.algorithm != AlgorithmHint::Auto {
                    let _ = write!(out, " (algorithm {})", hints.algorithm.token());
                }
                if hints.restricted != Tri::Auto {
                    let _ = write!(out, " (restricted {})", hints.restricted.token());
                }
                if hints.unique != Tri::Auto {
                    let _ = write!(out, " (unique {})", hints.unique.token());
                }
                out.push(' ');
                dividend.print_into(out);
                out.push(' ');
                divisor.print_into(out);
                out.push(')');
            }
        }
    }

    /// Collects every catalog relation the plan scans, deduplicated and
    /// sorted (the set a service must pin before executing).
    pub fn relations(&self) -> Vec<String> {
        let mut set = BTreeSet::new();
        self.collect_relations(&mut set);
        set.into_iter().collect()
    }

    fn collect_relations(&self, out: &mut BTreeSet<String>) {
        match self {
            Plan::Scan { relation } => {
                out.insert(relation.clone());
            }
            Plan::Filter { input, .. }
            | Plan::Project { input, .. }
            | Plan::Distinct { input }
            | Plan::GroupCount { input, .. }
            | Plan::HavingCount { input, .. } => input.collect_relations(out),
            Plan::Join { left, right, .. } => {
                left.collect_relations(out);
                right.collect_relations(out);
            }
            Plan::Divide {
                dividend, divisor, ..
            } => {
                dividend.collect_relations(out);
                divisor.collect_relations(out);
            }
        }
    }

    /// Number of nodes in the plan tree.
    pub fn node_count(&self) -> usize {
        1 + match self {
            Plan::Scan { .. } => 0,
            Plan::Filter { input, .. }
            | Plan::Project { input, .. }
            | Plan::Distinct { input }
            | Plan::GroupCount { input, .. }
            | Plan::HavingCount { input, .. } => input.node_count(),
            Plan::Join { left, right, .. } => left.node_count() + right.node_count(),
            Plan::Divide {
                dividend, divisor, ..
            } => dividend.node_count() + divisor.node_count(),
        }
    }
}
