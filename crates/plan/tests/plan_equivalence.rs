//! Plan-vs-oracle equivalence over the Table 4 grid.
//!
//! Every composed plan shape the front end supports is executed through
//! the real engine (storage manager, operators, cost-model-chosen
//! division algorithms) on workloads sized after the paper's Table 4
//! grid — all nine `(|S|, |Q|)` combinations of {25, 100, 400} — and the
//! result is asserted *byte-identical* to the brute-force reference
//! interpreter, which shares no code with the engine.
//!
//! A second test pins the acceptance criterion that the planner is not
//! degenerate: across the same grid it must pick at least two different
//! division algorithms, and every choice must agree with the cost
//! model's own ranking (`recommend` and the cheapest `candidates` row).
//!
//! A third family pins the vectorized engine: every composed plan shape,
//! run once on the tuple path and once on the batch path, must produce
//! the same bag on every grid configuration — and division-free plans
//! must match byte-for-byte in output *order*, because each batch
//! operator is specified to mirror its tuple twin's emission order.

use std::collections::{BTreeMap, BTreeSet};

use reldiv_core::Algorithm;
use reldiv_costmodel::planner::candidates;
use reldiv_costmodel::{recommend, table2_configs, PlannerInput};
use reldiv_plan::{
    bind, canonical_bytes, evaluate, execute, parse, ExecMode, ExecOptions, MemCatalog, PlanOutput,
};
use reldiv_rel::Value;
use reldiv_storage::manager::StorageConfig;
use reldiv_storage::{StorageManager, StorageRef};
use reldiv_workload::{exact_product, WorkloadSpec};

/// Every composed plan shape over the experimental-study schema
/// `r(quotient-id, divisor-id)`, `s(divisor-id)`. The last plan keeps
/// its oracle join quadratic in `|Q|` only (divide output × divide
/// output), so the whole grid — including `|S| = |Q| = 400` — stays
/// cheap enough for the nested-loop reference interpreter.
const COMPOSED_PLANS: [&str; 4] = [
    "(divide (on divisor-id) (scan r) (scan s))",
    "(divide (on divisor-id) (filter (>= quotient-id 5) (scan r)) (scan s))",
    "(divide (on divisor-id) (scan r) (distinct (project (divisor-id) (scan s))))",
    "(having-count >= 1 (group-count (quotient-id) \
       (join (on (quotient-id quotient-id)) \
         (divide (on divisor-id) (scan r) (scan s)) \
         (divide (on divisor-id) (scan r) (distinct (scan s))))))",
];

/// A Table 4 style workload with the irregularities the exact-product
/// grid lacks: incomplete quotient groups, non-matching noise tuples,
/// and a duplicated divisor.
fn grid_catalog(divisor_size: u64, quotient_size: u64, seed: u64) -> (MemCatalog, Vec<i64>) {
    let w = WorkloadSpec {
        divisor_size,
        quotient_size,
        incomplete_groups: 7,
        incomplete_fill: 0.5,
        noise_per_group: 2,
        dividend_copies: 1,
        divisor_copies: 2,
    }
    .generate(seed);
    let mut catalog = MemCatalog::new();
    catalog.insert("r", w.dividend);
    catalog.insert("s", w.divisor);
    (catalog, w.expected_quotient)
}

#[test]
fn composed_plans_match_the_oracle_on_every_table4_config() {
    let storage = StorageManager::shared(StorageConfig::large());
    for (i, (s, q)) in table2_configs().iter().copied().enumerate() {
        let (catalog, expected_quotient) = grid_catalog(s, q, 1989 + i as u64);
        for text in COMPOSED_PLANS {
            let bound = bind(&parse(text).unwrap(), &catalog).unwrap();
            let oracle = evaluate(&bound, &catalog).unwrap();
            let mut provider = catalog.clone();
            let output = execute(&bound, &mut provider, &ExecOptions::new(storage.clone()))
                .expect("engine executes every composed plan");
            assert_eq!(
                canonical_bytes(&output.relation),
                canonical_bytes(&oracle),
                "engine and oracle disagree at |S|={s} |Q|={q} on {text}"
            );
        }

        // The plain division also has an independent ground truth: the
        // workload generator knows exactly which groups are complete.
        let bound = bind(&parse(COMPOSED_PLANS[0]).unwrap(), &catalog).unwrap();
        let mut provider = catalog.clone();
        let output = execute(&bound, &mut provider, &ExecOptions::new(storage.clone())).unwrap();
        let mut got: Vec<i64> = output
            .relation
            .tuples()
            .iter()
            .map(|t| match t.value(0) {
                Value::Int(v) => *v,
                Value::Str(_) => panic!("quotient-id is an int column"),
            })
            .collect();
        got.sort_unstable();
        assert_eq!(
            got, expected_quotient,
            "quotient ground truth at |S|={s} |Q|={q}"
        );
    }
}

fn opts(storage: &StorageRef, exec: ExecMode) -> ExecOptions {
    let mut o = ExecOptions::new(storage.clone());
    o.exec = exec;
    o
}

fn run(catalog: &MemCatalog, text: &str, storage: &StorageRef, exec: ExecMode) -> PlanOutput {
    let bound = bind(&parse(text).unwrap(), catalog).unwrap();
    let mut provider = catalog.clone();
    execute(&bound, &mut provider, &opts(storage, exec)).unwrap()
}

#[test]
fn batch_and_tuple_paths_agree_on_every_table4_config() {
    let storage = StorageManager::shared(StorageConfig::large());
    for (i, (s, q)) in table2_configs().iter().copied().enumerate() {
        let (catalog, _) = grid_catalog(s, q, 424 + i as u64);
        for text in COMPOSED_PLANS {
            let tuple = run(&catalog, text, &storage, ExecMode::Tuple);
            let batch = run(&catalog, text, &storage, ExecMode::Batch);
            assert_eq!(
                canonical_bytes(&tuple.relation),
                canonical_bytes(&batch.relation),
                "exec modes disagree at |S|={s} |Q|={q} on {text}"
            );
            // The execution engine must not leak into planning: the same
            // algorithms are chosen, in the same order, on both paths.
            let algs = |out: &PlanOutput| {
                out.choices
                    .iter()
                    .map(|c| (c.algorithm, c.pinned, c.restricted))
                    .collect::<Vec<_>>()
            };
            assert_eq!(algs(&tuple), algs(&batch), "planning drift on {text}");
        }
    }
}

/// Division-free plan shapes: each batch operator mirrors its tuple
/// twin's emission order (same FNV hashing, same table insertion order),
/// so the outputs must be byte-identical *including order*.
#[test]
fn division_free_plans_are_byte_identical_across_exec_modes() {
    const PLANS: [&str; 6] = [
        "(filter (>= quotient-id 5) (scan r))",
        "(project (quotient-id) (scan r))",
        "(distinct (project (quotient-id) (scan r)))",
        "(join (on (divisor-id divisor-id)) (scan r) (scan s))",
        "(group-count (quotient-id) (scan r))",
        "(having-count >= 2 (group-count (quotient-id) (scan r)))",
    ];
    let storage = StorageManager::shared(StorageConfig::large());
    let (catalog, _) = grid_catalog(100, 100, 2026);
    for text in PLANS {
        let tuple = run(&catalog, text, &storage, ExecMode::Tuple);
        let batch = run(&catalog, text, &storage, ExecMode::Batch);
        assert_eq!(tuple.relation, batch.relation, "ordered mismatch on {text}");
    }
}

/// Both execution paths report the same operator spans with the same
/// tuple flow: per-batch profiling checkpoints must not change *what* is
/// counted, only how often the counters are updated.
#[test]
fn profiles_report_the_same_tuple_flow_on_both_exec_modes() {
    let text = "(having-count >= 1 (group-count (quotient-id) \
                  (filter (>= quotient-id 3) (scan r))))";
    let (catalog, _) = grid_catalog(25, 100, 77);
    let mut flows: Vec<BTreeMap<String, (u64, u64)>> = Vec::new();
    for exec in [ExecMode::Tuple, ExecMode::Batch] {
        let storage = StorageManager::shared(StorageConfig::large());
        let sink = reldiv_exec::ProfileSink::new();
        let mut o = opts(&storage, exec);
        o.profile = Some(sink.clone());
        let bound = bind(&parse(text).unwrap(), &catalog).unwrap();
        let mut provider = catalog.clone();
        execute(&bound, &mut provider, &o).unwrap();
        let profile = sink.finish();
        fn walk(n: &reldiv_exec::profile::ProfileNode, out: &mut BTreeMap<String, (u64, u64)>) {
            out.insert(n.label.clone(), (n.tuples_in, n.tuples_out));
            for c in &n.children {
                walk(c, out);
            }
        }
        let mut flow = BTreeMap::new();
        walk(&profile.root, &mut flow);
        flows.push(flow);
    }
    let (tuple, batch) = (&flows[0], &flows[1]);
    assert_eq!(
        tuple.keys().collect::<Vec<_>>(),
        batch.keys().collect::<Vec<_>>(),
        "both paths must emit the same span labels"
    );
    for (label, t_flow) in tuple {
        assert_eq!(
            t_flow, &batch[label],
            "tuple flow for span {label:?} differs between exec modes"
        );
    }
}

#[test]
fn planner_diverges_across_the_grid_and_agrees_with_the_cost_model() {
    // The paper's assumed case R = Q × S, in the two divisor regimes the
    // paper's Section 4 distinguishes. Both hints are true for this
    // data (`exact_product` emits each tuple once and every dividend
    // divisor-id appears in the divisor); `(restricted no)` merely tells
    // the planner so. Without it the planner must stay conservative,
    // which changes the algorithm menu — so across the Table 4 grid the
    // planner demonstrably picks different division algorithms, each
    // agreeing with the cost model's own ranking.
    const SPELLINGS: [&str; 2] = [
        "(divide (on divisor-id) (restricted no) (unique yes) (scan r) (scan s))",
        "(divide (on divisor-id) (unique yes) (scan r) (scan s))",
    ];
    let storage = StorageManager::shared(StorageConfig::large());
    let mut chosen: BTreeSet<&'static str> = BTreeSet::new();
    for (i, (s, q)) in table2_configs().iter().copied().enumerate() {
        let (dividend, divisor) = exact_product(s, q, 7 + i as u64);
        let mut catalog = MemCatalog::new();
        catalog.insert("r", dividend);
        catalog.insert("s", divisor);
        let mut per_config: BTreeSet<&'static str> = BTreeSet::new();
        for text in SPELLINGS {
            let bound = bind(&parse(text).unwrap(), &catalog).unwrap();
            let mut provider = catalog.clone();
            let output =
                execute(&bound, &mut provider, &ExecOptions::new(storage.clone())).unwrap();
            assert_eq!(
                canonical_bytes(&output.relation),
                canonical_bytes(&evaluate(&bound, &catalog).unwrap()),
                "whichever algorithm the planner picked at |S|={s} |Q|={q}, \
                 the answer must not change"
            );
            assert_eq!(output.relation.cardinality() as u64, q);

            let [choice] = &output.choices[..] else {
                panic!("exactly one division in the plan");
            };
            assert!(!choice.pinned, "no algorithm hint — the cost model decides");
            assert!(choice.duplicate_free);
            assert_eq!(choice.divisor_rows, s, "scan cardinality is exact");
            assert_eq!(choice.dividend_rows, s * q, "scan cardinality is exact");

            // The executed algorithm is exactly what the cost model
            // recommends for the estimates the validator produced...
            let input = PlannerInput {
                divisor_size: choice.divisor_rows,
                quotient_size: choice.quotient_rows,
                dividend_size: Some(choice.dividend_rows),
                restricted_divisor: choice.restricted,
                duplicate_free: choice.duplicate_free,
            };
            assert_eq!(
                choice.algorithm,
                Algorithm::from(recommend(&input)),
                "planner/cost-model disagreement at |S|={s} |Q|={q}"
            );

            // ...and it sits at the top of the model's full cost ranking.
            let ranking = candidates(&input);
            assert!(
                ranking.windows(2).all(|w| w[0].1 <= w[1].1),
                "candidates are sorted cheapest-first"
            );
            assert_eq!(
                Algorithm::from(ranking[0].0),
                choice.algorithm,
                "the executed algorithm is the cheapest candidate at |S|={s} |Q|={q}"
            );
            per_config.insert(choice.algorithm.label());
        }
        assert!(
            per_config.len() >= 2,
            "divisor restriction must change the pick at |S|={s} |Q|={q}, \
             got only {per_config:?}"
        );
        chosen.extend(per_config);
    }
    assert!(
        chosen.len() >= 2,
        "the planner must pick different algorithms across the Table 4 \
         grid, got only {chosen:?}"
    );
}
