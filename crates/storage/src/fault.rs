//! Deterministic fault injection for the simulated disk.
//!
//! A [`FaultPlan`] decides, per transfer, whether the simulated disk
//! should fail it and how. Faults come in three flavours, matching the
//! escalation ladder in `StorageError`:
//!
//! - **Transient** — the transfer fails but a retry may succeed. Injected
//!   either probabilistically (seeded, so runs are reproducible) or at
//!   scheduled transfer indices (so tests can fail exactly the Nth read).
//! - **Permanent** — a page is marked bad; every transfer touching it
//!   fails, and retrying is pointless.
//! - **Torn write** — the write *appears* to succeed but only a prefix of
//!   the payload reaches the platter. The damage is silent at write time
//!   and is detected by the per-page checksum on the next read.
//!
//! The plan is plain data with an embedded splitmix64 PRNG, so it is
//! `Clone + Send` and two plans built from the same seed inject the same
//! fault sequence. [`FaultPlan::reseeded`] derives an independent stream
//! for per-worker use.

use std::collections::BTreeSet;

/// What the disk should do with one read transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReadFault {
    /// Perform the read normally.
    None,
    /// Fail with `StorageError::Transient`.
    Transient,
    /// Fail with `StorageError::Permanent`.
    Permanent,
}

/// What the disk should do with one write transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WriteFault {
    /// Perform the write normally.
    None,
    /// Fail with `StorageError::Transient`, leaving the page untouched.
    Transient,
    /// Fail with `StorageError::Permanent`.
    Permanent,
    /// Silently persist only a prefix of the payload (detected later by
    /// checksum).
    Torn,
}

/// Running totals of injected faults, readable via
/// `SimDisk::fault_stats` / `StorageManager::fault_stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Transient read faults injected.
    pub transient_reads: u64,
    /// Transient write faults injected.
    pub transient_writes: u64,
    /// Torn writes silently injected.
    pub torn_writes: u64,
    /// Transfers refused because they touched a permanently bad page.
    pub permanent_denials: u64,
    /// Reads that failed checksum verification (detected corruption).
    pub checksum_failures: u64,
}

/// A deterministic, seedable plan of disk faults.
///
/// Build one with the fluent constructors, then install it with
/// `SimDisk::set_fault_plan` (or `StorageManager::inject_faults`):
///
/// ```
/// use reldiv_storage::FaultPlan;
///
/// let plan = FaultPlan::seeded(42)
///     .with_read_error_rate(0.05)
///     .with_torn_write_rate(0.01)
///     .with_read_failure_at(3); // the 4th read on the disk fails
/// assert!(plan.is_active());
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    read_error_rate: f64,
    write_error_rate: f64,
    torn_write_rate: f64,
    bad_pages: BTreeSet<u64>,
    fail_reads_at: BTreeSet<u64>,
    fail_writes_at: BTreeSet<u64>,
    rng: u64,
    reads_seen: u64,
    writes_seen: u64,
    stats: FaultStats,
}

impl FaultPlan {
    /// A plan that injects nothing until configured further.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            read_error_rate: 0.0,
            write_error_rate: 0.0,
            torn_write_rate: 0.0,
            bad_pages: BTreeSet::new(),
            fail_reads_at: BTreeSet::new(),
            fail_writes_at: BTreeSet::new(),
            rng: splitmix64(seed.wrapping_add(0x9E37_79B9_7F4A_7C15)),
            reads_seen: 0,
            writes_seen: 0,
            stats: FaultStats::default(),
        }
    }

    /// Probability in `0.0..=1.0` that any given read fails transiently.
    pub fn with_read_error_rate(mut self, rate: f64) -> FaultPlan {
        self.read_error_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Probability in `0.0..=1.0` that any given write fails transiently.
    pub fn with_write_error_rate(mut self, rate: f64) -> FaultPlan {
        self.write_error_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Probability in `0.0..=1.0` that any given write is torn: it reports
    /// success but persists only half the payload.
    pub fn with_torn_write_rate(mut self, rate: f64) -> FaultPlan {
        self.torn_write_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Marks `page` permanently bad: every read or write of it fails with
    /// `StorageError::Permanent`.
    pub fn with_bad_page(mut self, page: u64) -> FaultPlan {
        self.bad_pages.insert(page);
        self
    }

    /// Schedules the `index`-th read on the disk (0-based, counted across
    /// all pages) to fail transiently — precise injection for tests.
    pub fn with_read_failure_at(mut self, index: u64) -> FaultPlan {
        self.fail_reads_at.insert(index);
        self
    }

    /// Schedules the `index`-th write on the disk (0-based) to fail
    /// transiently.
    pub fn with_write_failure_at(mut self, index: u64) -> FaultPlan {
        self.fail_writes_at.insert(index);
        self
    }

    /// A copy of this plan's *configuration* with a different seed and
    /// fresh counters. Use to derive independent per-worker fault streams
    /// from one template.
    pub fn reseeded(&self, seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rng: splitmix64(seed.wrapping_add(0x9E37_79B9_7F4A_7C15)),
            reads_seen: 0,
            writes_seen: 0,
            stats: FaultStats::default(),
            read_error_rate: self.read_error_rate,
            write_error_rate: self.write_error_rate,
            torn_write_rate: self.torn_write_rate,
            bad_pages: self.bad_pages.clone(),
            fail_reads_at: self.fail_reads_at.clone(),
            fail_writes_at: self.fail_writes_at.clone(),
        }
    }

    /// The seed the plan was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        self.read_error_rate > 0.0
            || self.write_error_rate > 0.0
            || self.torn_write_rate > 0.0
            || !self.bad_pages.is_empty()
            || !self.fail_reads_at.is_empty()
            || !self.fail_writes_at.is_empty()
    }

    /// Faults injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Called by the disk once per read attempt.
    pub(crate) fn on_read(&mut self, page: u64) -> ReadFault {
        if self.bad_pages.contains(&page) {
            self.stats.permanent_denials += 1;
            return ReadFault::Permanent;
        }
        let index = self.reads_seen;
        self.reads_seen += 1;
        if self.fail_reads_at.contains(&index) || self.draw() < self.read_error_rate {
            self.stats.transient_reads += 1;
            return ReadFault::Transient;
        }
        ReadFault::None
    }

    /// Called by the disk once per write attempt.
    pub(crate) fn on_write(&mut self, page: u64) -> WriteFault {
        if self.bad_pages.contains(&page) {
            self.stats.permanent_denials += 1;
            return WriteFault::Permanent;
        }
        let index = self.writes_seen;
        self.writes_seen += 1;
        if self.fail_writes_at.contains(&index) || self.draw() < self.write_error_rate {
            self.stats.transient_writes += 1;
            return WriteFault::Transient;
        }
        if self.draw() < self.torn_write_rate {
            self.stats.torn_writes += 1;
            return WriteFault::Torn;
        }
        WriteFault::None
    }

    /// The disk reports detected corruption back so all fault accounting
    /// lives in one place.
    pub(crate) fn note_checksum_failure(&mut self) {
        self.stats.checksum_failures += 1;
    }

    /// Uniform draw in `[0.0, 1.0)`.
    fn draw(&mut self) -> f64 {
        self.rng = splitmix64(self.rng);
        (self.rng >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// One step of the splitmix64 sequence — small, fast, and good enough
/// for fault scheduling (we need reproducibility, not cryptography).
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inactive_and_injects_nothing() {
        let mut plan = FaultPlan::seeded(1);
        assert!(!plan.is_active());
        for page in 0..100 {
            assert_eq!(plan.on_read(page), ReadFault::None);
            assert_eq!(plan.on_write(page), WriteFault::None);
        }
        assert_eq!(plan.stats(), FaultStats::default());
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let build = || {
            FaultPlan::seeded(7)
                .with_read_error_rate(0.3)
                .with_write_error_rate(0.2)
                .with_torn_write_rate(0.1)
        };
        let (mut a, mut b) = (build(), build());
        for page in 0..200 {
            assert_eq!(a.on_read(page), b.on_read(page));
            assert_eq!(a.on_write(page), b.on_write(page));
        }
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().transient_reads > 0, "rate 0.3 over 200 draws");
    }

    #[test]
    fn scheduled_injection_points_fire_exactly_once() {
        let mut plan = FaultPlan::seeded(0)
            .with_read_failure_at(2)
            .with_write_failure_at(0);
        assert_eq!(plan.on_write(9), WriteFault::Transient);
        assert_eq!(plan.on_write(9), WriteFault::None);
        assert_eq!(plan.on_read(1), ReadFault::None);
        assert_eq!(plan.on_read(1), ReadFault::None);
        assert_eq!(plan.on_read(1), ReadFault::Transient);
        assert_eq!(plan.on_read(1), ReadFault::None);
        assert_eq!(plan.stats().transient_reads, 1);
        assert_eq!(plan.stats().transient_writes, 1);
    }

    #[test]
    fn bad_pages_are_permanent_in_both_directions() {
        let mut plan = FaultPlan::seeded(0).with_bad_page(4);
        assert_eq!(plan.on_read(4), ReadFault::Permanent);
        assert_eq!(plan.on_write(4), WriteFault::Permanent);
        assert_eq!(plan.on_read(3), ReadFault::None);
        assert_eq!(plan.stats().permanent_denials, 2);
    }

    #[test]
    fn reseeded_copies_config_but_not_state() {
        let mut a = FaultPlan::seeded(1)
            .with_read_error_rate(1.0)
            .with_bad_page(2);
        let _ = a.on_read(0);
        let b = a.reseeded(99);
        assert_eq!(b.seed(), 99);
        assert_eq!(b.stats(), FaultStats::default());
        assert!(b.is_active());
        let mut b = b;
        assert_eq!(b.on_write(2), WriteFault::Permanent);
    }
}
