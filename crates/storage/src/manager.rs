//! [`StorageManager`]: the façade over disks, buffer pool, file catalog,
//! and memory pool — the equivalent of the paper's record-oriented file
//! system instance.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use crate::buffer::{BufferManager, BufferStats, FrameId, RetryPolicy, Reuse};
use crate::disk::{DiskId, IoCostParams, IoStats, PageId, SimDisk};
use crate::fault::{FaultPlan, FaultStats};
use crate::file::FileMeta;
use crate::memory::MemoryPool;
use crate::Result;

/// Configuration of a storage manager instance.
///
/// Defaults follow the paper's experimental setup: 8 KB transfers ("except
/// for sort runs where it was 1 KB to allow high fan-in"), a 256 KB buffer
/// pool, and a 100 KB sort/work space.
#[derive(Debug, Clone)]
pub struct StorageConfig {
    /// Page (transfer) size of the data disk in bytes.
    pub data_page_size: usize,
    /// Page (transfer) size of the sort-run disk in bytes.
    pub run_page_size: usize,
    /// Buffer-pool byte budget.
    pub buffer_bytes: usize,
    /// Main-memory pool for sort space, hash tables, bit maps, and chain
    /// elements.
    pub work_memory_bytes: usize,
}

impl StorageConfig {
    /// The paper's experimental configuration (Section 5.1).
    pub fn paper() -> Self {
        StorageConfig {
            data_page_size: 8 * 1024,
            run_page_size: 1024,
            buffer_bytes: 256 * 1024,
            work_memory_bytes: 100 * 1024,
        }
    }

    /// A configuration with ample memory, for correctness tests that should
    /// not exercise overflow or eviction paths.
    pub fn large() -> Self {
        StorageConfig {
            data_page_size: 8 * 1024,
            run_page_size: 1024,
            buffer_bytes: 64 * 1024 * 1024,
            work_memory_bytes: 64 * 1024 * 1024,
        }
    }
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig::paper()
    }
}

/// The storage system: simulated disks, buffer manager, file catalog, and
/// main-memory pool.
pub struct StorageManager {
    pub(crate) disks: Vec<SimDisk>,
    pub(crate) buffer: BufferManager,
    pub(crate) files: HashMap<u64, FileMeta>,
    pub(crate) next_file: u64,
    memory: MemoryPool,
    config: StorageConfig,
}

/// Shared handle to a storage manager, used by query operators.
///
/// The execution engine is single-threaded per storage instance (the
/// shared-nothing simulation gives each node its own instance), so `Rc` +
/// `RefCell` is the appropriate sharing tool.
pub type StorageRef = Rc<RefCell<StorageManager>>;

impl StorageManager {
    /// Disk 0: base data and temporary files, `data_page_size` transfers.
    pub const DATA_DISK: DiskId = DiskId(0);
    /// Disk 1: sort runs, `run_page_size` transfers for high merge fan-in.
    pub const RUN_DISK: DiskId = DiskId(1);

    /// Creates a storage manager with the given configuration.
    pub fn new(config: StorageConfig) -> Self {
        StorageManager {
            disks: vec![
                SimDisk::new(config.data_page_size),
                SimDisk::new(config.run_page_size),
            ],
            buffer: BufferManager::new(config.buffer_bytes),
            files: HashMap::new(),
            next_file: 0,
            memory: MemoryPool::new(config.work_memory_bytes),
            config: config.clone(),
        }
    }

    /// Creates a storage manager with the paper's configuration, wrapped in
    /// the shared handle operators take.
    pub fn shared(config: StorageConfig) -> StorageRef {
        Rc::new(RefCell::new(StorageManager::new(config)))
    }

    /// The configuration this instance was created with.
    pub fn config(&self) -> &StorageConfig {
        &self.config
    }

    /// The main-memory pool for hash tables, bit maps, and sort space.
    pub fn memory(&self) -> MemoryPool {
        self.memory.clone()
    }

    /// Page size of `disk`.
    pub fn page_size(&self, disk: DiskId) -> usize {
        self.disks[disk.0].page_size()
    }

    /// Fixes a page in the buffer pool.
    pub fn fix(&mut self, pid: PageId) -> Result<FrameId> {
        self.buffer.fix(&mut self.disks, pid)
    }

    /// Allocates and fixes a fresh page on `disk`.
    pub fn new_page(&mut self, disk: DiskId) -> Result<(PageId, FrameId)> {
        self.buffer.new_page(&mut self.disks, disk)
    }

    /// Allocates and fixes a *virtual* page (data-disk sized): it exists
    /// only while fixed in the buffer pool and never touches a disk — the
    /// paper's "virtual devices" for transient intermediate records.
    pub fn new_virtual_page(&mut self) -> Result<(PageId, FrameId)> {
        let size = self.config.data_page_size;
        self.buffer.new_virtual_page(&mut self.disks, size)
    }

    /// Unfixes a frame.
    pub fn unfix(&mut self, fid: FrameId, reuse: Reuse) -> Result<()> {
        self.buffer.unfix(fid, reuse)
    }

    /// Read access to a fixed page.
    pub fn page(&self, fid: FrameId) -> Result<&[u8]> {
        self.buffer.page(fid)
    }

    /// Write access to a fixed page (marks it dirty).
    pub fn page_mut(&mut self, fid: FrameId) -> Result<&mut [u8]> {
        self.buffer.page_mut(fid)
    }

    /// Writes all dirty pages to their disks.
    pub fn flush_all(&mut self) -> Result<()> {
        self.buffer.flush_all(&mut self.disks)
    }

    /// Flushes and empties the buffer pool (cold start): the next access
    /// to any page is a real disk read. Experiments call this after
    /// loading inputs so the measured run pays for reading them, exactly
    /// as the paper's runs read their input files.
    pub fn evict_all(&mut self) -> Result<()> {
        self.buffer.evict_all(&mut self.disks)
    }

    /// Aggregate I/O statistics over all disks.
    pub fn io_stats(&self) -> IoStats {
        self.disks
            .iter()
            .fold(IoStats::default(), |acc, d| acc.merge(&d.stats()))
    }

    /// I/O statistics of one disk.
    pub fn disk_stats(&self, disk: DiskId) -> IoStats {
        self.disks[disk.0].stats()
    }

    /// Buffer-pool statistics.
    pub fn buffer_stats(&self) -> BufferStats {
        self.buffer.stats()
    }

    /// Number of buffer frames currently fixed; see
    /// [`crate::buffer::BufferManager::pinned_frames`].
    pub fn pinned_frames(&self) -> usize {
        self.buffer.pinned_frames()
    }

    /// Prices the current aggregate I/O statistics with `params`, as the
    /// paper priced its collected file-system statistics with Table 3.
    pub fn io_cost_ms(&self, params: &IoCostParams) -> f64 {
        params.cost_ms(&self.io_stats())
    }

    /// Resets disk and buffer statistics (not contents). Experiments call
    /// this after loading inputs so measurement covers only the algorithm.
    pub fn reset_stats(&mut self) {
        for d in &mut self.disks {
            d.reset_stats();
        }
        self.buffer.reset_stats();
    }

    /// Installs `plan` on every disk, deriving an independent fault stream
    /// per disk from the plan's seed. Replaces any previous plan.
    pub fn inject_faults(&mut self, plan: &FaultPlan) {
        for (i, d) in self.disks.iter_mut().enumerate() {
            d.set_fault_plan(plan.reseeded(plan.seed().wrapping_add(i as u64)));
        }
    }

    /// Removes fault plans from every disk.
    pub fn clear_faults(&mut self) {
        for d in &mut self.disks {
            d.clear_fault_plan();
        }
    }

    /// Sum of injected-fault statistics over all disks.
    pub fn fault_stats(&self) -> FaultStats {
        self.disks.iter().fold(FaultStats::default(), |acc, d| {
            let s = d.fault_stats();
            FaultStats {
                transient_reads: acc.transient_reads + s.transient_reads,
                transient_writes: acc.transient_writes + s.transient_writes,
                torn_writes: acc.torn_writes + s.torn_writes,
                permanent_denials: acc.permanent_denials + s.permanent_denials,
                checksum_failures: acc.checksum_failures + s.checksum_failures,
            }
        })
    }

    /// Replaces the buffer manager's transient-fault retry policy.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.buffer.set_retry_policy(policy);
    }

    /// Enables or disables per-page checksum verification on every disk
    /// (the robustness benchmark's overhead knob).
    pub fn set_checksums_enabled(&mut self, enabled: bool) {
        for d in &mut self.disks {
            d.set_checksums_enabled(enabled);
        }
    }

    /// Corrupts a stored page without updating its checksum (test helper
    /// for exercising detection paths).
    pub fn corrupt_page(&mut self, pid: PageId) -> Result<()> {
        self.disks
            .get_mut(pid.disk.0)
            .ok_or(crate::StorageError::NoSuchDisk(pid.disk.0))?
            .corrupt_page(pid.page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_section_5() {
        let c = StorageConfig::paper();
        assert_eq!(c.data_page_size, 8192);
        assert_eq!(c.run_page_size, 1024);
        assert_eq!(c.buffer_bytes, 256 * 1024);
        assert_eq!(c.work_memory_bytes, 100 * 1024);
    }

    #[test]
    fn two_disks_with_distinct_page_sizes() {
        let sm = StorageManager::new(StorageConfig::paper());
        assert_eq!(sm.page_size(StorageManager::DATA_DISK), 8192);
        assert_eq!(sm.page_size(StorageManager::RUN_DISK), 1024);
    }

    #[test]
    fn fix_page_roundtrip_through_manager() {
        let mut sm = StorageManager::new(StorageConfig::paper());
        let (pid, fid) = sm.new_page(StorageManager::DATA_DISK).unwrap();
        sm.page_mut(fid).unwrap()[0] = 42;
        sm.unfix(fid, Reuse::Lru).unwrap();
        let fid = sm.fix(pid).unwrap();
        assert_eq!(sm.page(fid).unwrap()[0], 42);
        sm.unfix(fid, Reuse::Lru).unwrap();
    }

    #[test]
    fn io_cost_of_untouched_manager_is_zero() {
        let sm = StorageManager::new(StorageConfig::paper());
        assert_eq!(sm.io_cost_ms(&IoCostParams::paper()), 0.0);
    }

    #[test]
    fn reset_stats_zeroes_disks_and_buffer() {
        let mut sm = StorageManager::new(StorageConfig::paper());
        let (_, fid) = sm.new_page(StorageManager::DATA_DISK).unwrap();
        sm.unfix(fid, Reuse::Lru).unwrap();
        sm.flush_all().unwrap();
        assert!(sm.io_stats().writes > 0);
        sm.reset_stats();
        assert_eq!(sm.io_stats(), IoStats::default());
    }

    #[test]
    fn memory_pool_is_shared_across_handles() {
        let sm = StorageManager::new(StorageConfig::paper());
        let a = sm.memory();
        let b = sm.memory();
        let _r = a.reserve(100 * 1024).unwrap();
        assert!(b.reserve(1).is_err());
    }
}
