//! The main-memory manager.
//!
//! The paper's hash algorithms "use the file system's memory manager to
//! allocate space for hash tables, bit maps, and chain elements", and
//! hash-division "depends on sufficient main memory to hold both hash
//! tables". [`MemoryPool`] is that manager: a budgeted pool that accounts
//! for each allocation. When a reservation fails, the requesting algorithm
//! must fall back to the paper's hash-table overflow handling (Section
//! 3.4): quotient partitioning or divisor partitioning.
//!
//! The pool tracks bytes rather than handing out raw memory: Rust's
//! allocator does the actual allocation, while the pool decides whether the
//! algorithm is *allowed* to grow, which is the behaviour the paper's
//! overflow logic keys on.

use std::cell::Cell;
use std::rc::Rc;

use crate::error::StorageError;
use crate::Result;

/// Accounting sizes for the auxiliary structures of the hash algorithms,
/// mirroring the paper's implementation notes.
pub mod sizes {
    /// A chain element: "a pointer to the next tuple in the bucket, a
    /// tuple's record identifier and main memory address in the buffer
    /// pool, and the divisor count or the pointer to the bit map" — four
    /// words on a 64-bit machine.
    pub const CHAIN_ELEMENT: usize = 32;
    /// A hash-table bucket header: one pointer.
    pub const BUCKET: usize = 8;
}

/// A budgeted, cloneable handle to a main-memory pool.
///
/// Cloning shares the pool: all holders draw from the same budget, just as
/// the divisor table and quotient table of hash-division share the paper's
/// single memory pool.
#[derive(Debug, Clone)]
pub struct MemoryPool {
    inner: Rc<PoolInner>,
}

#[derive(Debug)]
struct PoolInner {
    capacity: usize,
    used: Cell<usize>,
    peak: Cell<usize>,
    /// For child pools: the parent every reservation is also charged to.
    parent: Option<Rc<PoolInner>>,
}

impl PoolInner {
    /// Charges `bytes` to this pool and every ancestor, or fails with the
    /// tightest pool's headroom without changing any of them.
    fn charge(self: &Rc<Self>, bytes: usize) -> Result<()> {
        let mut node = Some(self);
        while let Some(p) = node {
            let available = p.capacity - p.used.get();
            if bytes > available {
                return Err(StorageError::MemoryExhausted {
                    requested: bytes,
                    available,
                });
            }
            node = p.parent.as_ref();
        }
        let mut node = Some(self);
        while let Some(p) = node {
            let now = p.used.get() + bytes;
            p.used.set(now);
            if now > p.peak.get() {
                p.peak.set(now);
            }
            node = p.parent.as_ref();
        }
        Ok(())
    }

    /// Returns `bytes` to this pool and every ancestor.
    fn release(self: &Rc<Self>, bytes: usize) {
        let mut node = Some(self);
        while let Some(p) = node {
            p.used.set(p.used.get() - bytes);
            node = p.parent.as_ref();
        }
    }
}

impl MemoryPool {
    /// Creates a pool with `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        MemoryPool {
            inner: Rc::new(PoolInner {
                capacity,
                used: Cell::new(0),
                peak: Cell::new(0),
                parent: None,
            }),
        }
    }

    /// Creates a child pool capped at `capacity` bytes whose reservations
    /// are also charged against this pool (and its ancestors).
    ///
    /// This is the per-query budget mechanism: a query given a child of
    /// the storage manager's pool can never use more than its own cap,
    /// while many concurrent queries still share the parent's total.
    pub fn child(&self, capacity: usize) -> Self {
        MemoryPool {
            inner: Rc::new(PoolInner {
                capacity,
                used: Cell::new(0),
                peak: Cell::new(0),
                parent: Some(self.inner.clone()),
            }),
        }
    }

    /// A pool with effectively unlimited capacity, for callers that want
    /// pure in-memory execution without overflow handling.
    pub fn unbounded() -> Self {
        MemoryPool::new(usize::MAX)
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Bytes currently reserved.
    pub fn used(&self) -> usize {
        self.inner.used.get()
    }

    /// High-water mark of reserved bytes.
    pub fn peak(&self) -> usize {
        self.inner.peak.get()
    }

    /// Bytes still available: the tightest headroom along the chain of
    /// this pool and its ancestors.
    pub fn available(&self) -> usize {
        let mut available = usize::MAX;
        let mut node = Some(&self.inner);
        while let Some(p) = node {
            available = available.min(p.capacity - p.used.get());
            node = p.parent.as_ref();
        }
        available
    }

    /// Reserves `bytes`, or reports exhaustion.
    ///
    /// Exhaustion is not fatal: it is the trigger for hash-table overflow
    /// handling.
    pub fn reserve(&self, bytes: usize) -> Result<Reservation> {
        self.inner.charge(bytes)?;
        Ok(Reservation {
            pool: self.inner.clone(),
            bytes,
        })
    }

    /// Whether a reservation of `bytes` would currently succeed.
    pub fn would_fit(&self, bytes: usize) -> bool {
        bytes <= self.available()
    }
}

/// An RAII reservation; dropping it returns the bytes to the pool.
#[derive(Debug)]
pub struct Reservation {
    pool: Rc<PoolInner>,
    bytes: usize,
}

impl Reservation {
    /// Size of this reservation in bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Grows the reservation by `more` bytes in place.
    pub fn grow(&mut self, more: usize) -> Result<()> {
        self.pool.charge(more)?;
        self.bytes += more;
        Ok(())
    }
}

impl Drop for Reservation {
    fn drop(&mut self) {
        self.pool.release(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release_by_drop() {
        let pool = MemoryPool::new(100);
        let r = pool.reserve(60).unwrap();
        assert_eq!(pool.used(), 60);
        assert_eq!(pool.available(), 40);
        drop(r);
        assert_eq!(pool.used(), 0);
        assert_eq!(pool.peak(), 60);
    }

    #[test]
    fn exhaustion_is_reported_not_panicked() {
        let pool = MemoryPool::new(100);
        let _r = pool.reserve(90).unwrap();
        match pool.reserve(20) {
            Err(StorageError::MemoryExhausted {
                requested: 20,
                available: 10,
            }) => {}
            other => panic!("expected MemoryExhausted, got {other:?}"),
        }
    }

    #[test]
    fn clones_share_the_budget() {
        let pool = MemoryPool::new(100);
        let divisor_table = pool.clone();
        let quotient_table = pool.clone();
        let _a = divisor_table.reserve(50).unwrap();
        let _b = quotient_table.reserve(50).unwrap();
        assert!(pool.reserve(1).is_err());
    }

    #[test]
    fn grow_extends_in_place() {
        let pool = MemoryPool::new(100);
        let mut r = pool.reserve(10).unwrap();
        r.grow(20).unwrap();
        assert_eq!(r.bytes(), 30);
        assert_eq!(pool.used(), 30);
        assert!(r.grow(80).is_err());
        assert_eq!(r.bytes(), 30, "failed grow leaves reservation unchanged");
        drop(r);
        assert_eq!(pool.used(), 0);
    }

    #[test]
    fn peak_survives_release() {
        let pool = MemoryPool::new(100);
        {
            let _r = pool.reserve(70).unwrap();
        }
        let _r2 = pool.reserve(10).unwrap();
        assert_eq!(pool.peak(), 70);
    }

    #[test]
    fn unbounded_pool_accepts_large_reservations() {
        let pool = MemoryPool::unbounded();
        let _r = pool.reserve(1 << 40).unwrap();
        assert!(pool.would_fit(1 << 40));
    }

    #[test]
    fn child_pool_enforces_its_own_cap() {
        let parent = MemoryPool::new(1000);
        let child = parent.child(100);
        let _r = child.reserve(80).unwrap();
        assert_eq!(child.used(), 80);
        assert_eq!(parent.used(), 80, "child reservations charge the parent");
        match child.reserve(30) {
            Err(StorageError::MemoryExhausted { available: 20, .. }) => {}
            other => panic!("expected child-cap exhaustion, got {other:?}"),
        }
        assert_eq!(
            parent.used(),
            80,
            "failed child reserve leaves parent unchanged"
        );
    }

    #[test]
    fn child_pool_is_bounded_by_parent_headroom() {
        let parent = MemoryPool::new(100);
        let _outside = parent.reserve(90).unwrap();
        let child = parent.child(50);
        assert_eq!(child.available(), 10, "tightest headroom wins");
        assert!(child.would_fit(10));
        assert!(child.reserve(20).is_err());
        let r = child.reserve(10).unwrap();
        assert_eq!(parent.used(), 100);
        drop(r);
        assert_eq!(parent.used(), 90);
        assert_eq!(child.used(), 0);
    }

    #[test]
    fn child_reservation_release_returns_bytes_to_both_pools() {
        let parent = MemoryPool::new(200);
        let child = parent.child(100);
        let mut r = child.reserve(40).unwrap();
        r.grow(20).unwrap();
        assert_eq!(child.used(), 60);
        assert_eq!(parent.used(), 60);
        assert!(r.grow(50).is_err(), "grow past child cap fails");
        assert_eq!(child.used(), 60, "failed grow changes nothing");
        drop(r);
        assert_eq!(child.used(), 0);
        assert_eq!(parent.used(), 0);
        assert_eq!(child.peak(), 60);
    }

    #[test]
    fn accounting_sizes_are_plausible() {
        // Chain element: next ptr + RID + address + count/bitmap ptr.
        assert_eq!(sizes::CHAIN_ELEMENT, 32);
        assert_eq!(sizes::BUCKET, 8);
    }
}
