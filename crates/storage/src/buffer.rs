//! The buffer manager.
//!
//! Modeled on the paper's description: "a fast buffer manager ... Copying
//! is avoided as scans give memory addresses to records fixed in the buffer
//! pool. When all buffer slots are fixed and a new request cannot be
//! satisfied, the buffer pool grows dynamically until the main memory pool
//! is exhausted ... An unfix call indicates whether the page can be replaced
//! immediately or should be inserted into an LRU list."
//!
//! Frames are addressed by generation-checked [`FrameId`]s; a stale id
//! (used after its frame was evicted) is detected rather than silently
//! serving another page's bytes.

use std::collections::{HashMap, VecDeque};
use std::time::Duration;

use crate::disk::{DiskId, PageId, SimDisk};
use crate::error::StorageError;
use crate::Result;

/// How the buffer manager retries transient disk faults.
///
/// Transient faults ([`StorageError::Transient`]) are retried up to
/// `max_retries` times with exponential backoff (`backoff_base · 2^k`,
/// capped at `backoff_cap`) before the error escalates to the caller.
/// Permanent faults and checksum mismatches are never retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retries after the initial attempt (0 disables retrying).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles each subsequent retry.
    pub backoff_base: Duration,
    /// Upper bound on a single backoff sleep.
    pub backoff_cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            backoff_base: Duration::from_micros(50),
            backoff_cap: Duration::from_millis(5),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries: every transient fault escalates
    /// immediately.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            backoff_base: Duration::ZERO,
            backoff_cap: Duration::ZERO,
        }
    }

    /// Sleeps for the backoff of retry number `attempt` (1-based).
    fn backoff(&self, attempt: u32) {
        let exp = attempt.saturating_sub(1).min(20);
        let sleep = self
            .backoff_base
            .saturating_mul(1u32 << exp)
            .min(self.backoff_cap);
        if !sleep.is_zero() {
            std::thread::sleep(sleep);
        }
    }
}

/// Sentinel disk id for virtual pages: buffered but never written to any
/// disk. The paper: "the buffer manager also supports virtual devices,
/// i.e., records can have a record identifier and can be fixed in the
/// buffer pool but disappear when unfixed."
pub const VIRTUAL_DISK: DiskId = DiskId(usize::MAX);

/// Replacement hint given at unfix time.
///
/// The paper: "An unfix call indicates whether the page can be replaced
/// immediately or should be inserted into an LRU list."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reuse {
    /// Keep the page cached; insert at the most-recently-used end.
    Lru,
    /// The caller will not touch this page again; make it the preferred
    /// eviction victim.
    Immediate,
}

/// Handle to a fixed frame. Valid from `fix` until the matching `unfix`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameId {
    index: usize,
    gen: u64,
}

/// Buffer-pool statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Fix requests satisfied from the pool.
    pub hits: u64,
    /// Fix requests that had to read the page from disk.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Dirty pages written back to disk on eviction or flush.
    pub writebacks: u64,
    /// High-water mark of pool size in bytes.
    pub peak_bytes: usize,
    /// Read transfers re-issued after a transient fault.
    pub read_retries: u64,
    /// Write transfers re-issued after a transient fault.
    pub write_retries: u64,
}

impl BufferStats {
    /// Component-wise difference `self - earlier`, saturating at zero.
    ///
    /// Attributes buffer activity to a region of execution: capture
    /// `stats()` before and after, then `after.since(&before)`. The
    /// `peak_bytes` high-water mark is not a counter and is carried over
    /// from `self` unchanged.
    pub fn since(&self, earlier: &BufferStats) -> BufferStats {
        BufferStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            writebacks: self.writebacks.saturating_sub(earlier.writebacks),
            peak_bytes: self.peak_bytes,
            read_retries: self.read_retries.saturating_sub(earlier.read_retries),
            write_retries: self.write_retries.saturating_sub(earlier.write_retries),
        }
    }
}

struct Frame {
    pid: PageId,
    data: Box<[u8]>,
    pin_count: u32,
    dirty: bool,
    gen: u64,
    /// Whether a `(slot, gen)` entry for this frame sits in the
    /// replacement queue. Queue entries are invalidated lazily — checked
    /// when popped, never searched for — so re-fixing a cached page is
    /// O(1) instead of O(queue).
    queued: bool,
}

/// A fix/unfix buffer pool with LRU replacement and a byte budget.
pub struct BufferManager {
    slots: Vec<Option<Frame>>,
    map: HashMap<PageId, usize>,
    /// Replacement candidates in LRU order (front = victim), as
    /// `(slot, frame generation)` pairs. Entries can go stale (frame
    /// re-pinned, discarded, or evicted via a duplicate entry); they are
    /// validated against the live frame when popped.
    replace_queue: VecDeque<(usize, u64)>,
    free_slots: Vec<usize>,
    budget_bytes: usize,
    used_bytes: usize,
    next_gen: u64,
    next_virtual_page: u64,
    stats: BufferStats,
    retry: RetryPolicy,
}

impl BufferManager {
    /// Creates a pool that may grow up to `budget_bytes` of page frames.
    ///
    /// The paper's experiments used an initial buffer of 256 KB; we treat
    /// the budget as the pool's exhaustion point, growing on demand from
    /// empty exactly as the paper's pool grows until the memory pool is
    /// exhausted.
    pub fn new(budget_bytes: usize) -> Self {
        BufferManager {
            slots: Vec::new(),
            map: HashMap::new(),
            replace_queue: VecDeque::new(),
            free_slots: Vec::new(),
            budget_bytes,
            used_bytes: 0,
            next_gen: 0,
            next_virtual_page: 0,
            stats: BufferStats::default(),
            retry: RetryPolicy::default(),
        }
    }

    /// Replaces the transient-fault retry policy.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// The current transient-fault retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Reads `page` with bounded retry on transient faults, counting each
    /// re-issued transfer in `stats.read_retries`.
    fn read_with_retry(
        disk: &mut SimDisk,
        page: u64,
        buf: &mut [u8],
        stats: &mut BufferStats,
        policy: RetryPolicy,
    ) -> Result<()> {
        let mut attempt = 0u32;
        loop {
            match disk.read(page, buf) {
                Ok(()) => return Ok(()),
                Err(e) if e.is_transient() && attempt < policy.max_retries => {
                    attempt += 1;
                    stats.read_retries += 1;
                    policy.backoff(attempt);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Writes `page` with bounded retry on transient faults, counting each
    /// re-issued transfer in `stats.write_retries`.
    fn write_with_retry(
        disk: &mut SimDisk,
        page: u64,
        buf: &[u8],
        stats: &mut BufferStats,
        policy: RetryPolicy,
    ) -> Result<()> {
        let mut attempt = 0u32;
        loop {
            match disk.write(page, buf) {
                Ok(()) => return Ok(()),
                Err(e) if e.is_transient() && attempt < policy.max_retries => {
                    attempt += 1;
                    stats.write_retries += 1;
                    policy.backoff(attempt);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// The pool's byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Current pool size in bytes.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Number of frames currently fixed (pin count > 0). A quiescent pool
    /// — no scan or operator mid-flight — must report zero; tests use this
    /// to prove error paths unfix everything they fixed.
    pub fn pinned_frames(&self) -> usize {
        self.slots
            .iter()
            .flatten()
            .filter(|f| f.pin_count > 0)
            .count()
    }

    /// Resets statistics (not pool contents).
    pub fn reset_stats(&mut self) {
        self.stats = BufferStats::default();
        self.stats.peak_bytes = self.used_bytes;
    }

    /// Fixes `pid` in the pool, reading it from disk on a miss.
    pub fn fix(&mut self, disks: &mut [SimDisk], pid: PageId) -> Result<FrameId> {
        if let Some(&idx) = self.map.get(&pid) {
            self.stats.hits += 1;
            let frame = self.slots[idx].as_mut().expect("mapped frame exists");
            // A queue entry for this frame (if any) is now stale; it is
            // skipped when popped rather than searched out here.
            frame.pin_count += 1;
            return Ok(FrameId {
                index: idx,
                gen: frame.gen,
            });
        }
        self.stats.misses += 1;
        let disk = disks
            .get_mut(pid.disk.0)
            .ok_or(StorageError::NoSuchDisk(pid.disk.0))?;
        let page_size = disk.page_size();
        let mut data = vec![0u8; page_size].into_boxed_slice();
        // A failed read leaves the pool untouched: no frame was installed,
        // so no pin can leak.
        Self::read_with_retry(disk, pid.page, &mut data, &mut self.stats, self.retry)?;
        self.install(disks, pid, data, false)
    }

    /// Allocates a fresh zeroed page on `disk` and fixes it without a read
    /// transfer (its first contact with the disk is the eventual
    /// write-back, if any).
    pub fn new_page(
        &mut self,
        disks: &mut [SimDisk],
        disk_id: crate::disk::DiskId,
    ) -> Result<(PageId, FrameId)> {
        let disk = disks
            .get_mut(disk_id.0)
            .ok_or(StorageError::NoSuchDisk(disk_id.0))?;
        let page = disk.allocate();
        let page_size = disk.page_size();
        let pid = PageId::new(disk_id, page);
        let data = vec![0u8; page_size].into_boxed_slice();
        let fid = self.install(disks, pid, data, true)?;
        Ok((pid, fid))
    }

    /// Installs a zeroed, dirty frame for a page known to be freshly
    /// allocated (and therefore all zeroes on disk), skipping the read
    /// transfer. Used by record files extending into a new extent page.
    pub(crate) fn install_zeroed(&mut self, disks: &mut [SimDisk], pid: PageId) -> Result<FrameId> {
        debug_assert!(!self.map.contains_key(&pid), "page already buffered");
        let disk = disks
            .get(pid.disk.0)
            .ok_or(StorageError::NoSuchDisk(pid.disk.0))?;
        let data = vec![0u8; disk.page_size()].into_boxed_slice();
        self.install(disks, pid, data, true)
    }

    /// Allocates and fixes a *virtual* page of `page_size` bytes: it lives
    /// only in the buffer pool and disappears when unfixed (or when the
    /// pool evicts it while unpinned). Used for transient intermediate
    /// records that must never touch a disk.
    pub fn new_virtual_page(
        &mut self,
        disks: &mut [SimDisk],
        page_size: usize,
    ) -> Result<(PageId, FrameId)> {
        let page = self.next_virtual_page;
        self.next_virtual_page += 1;
        let pid = PageId::new(VIRTUAL_DISK, page);
        let data = vec![0u8; page_size].into_boxed_slice();
        let fid = self.install(disks, pid, data, false)?;
        Ok((pid, fid))
    }

    fn install(
        &mut self,
        disks: &mut [SimDisk],
        pid: PageId,
        data: Box<[u8]>,
        dirty: bool,
    ) -> Result<FrameId> {
        let page_size = data.len();
        self.make_room(disks, page_size)?;
        self.next_gen += 1;
        let frame = Frame {
            pid,
            data,
            pin_count: 1,
            dirty,
            gen: self.next_gen,
            queued: false,
        };
        let idx = match self.free_slots.pop() {
            Some(i) => {
                self.slots[i] = Some(frame);
                i
            }
            None => {
                self.slots.push(Some(frame));
                self.slots.len() - 1
            }
        };
        self.used_bytes += page_size;
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.used_bytes);
        self.map.insert(pid, idx);
        Ok(FrameId {
            index: idx,
            gen: self.next_gen,
        })
    }

    /// Evicts LRU victims until `needed` more bytes fit within the budget.
    fn make_room(&mut self, disks: &mut [SimDisk], needed: usize) -> Result<()> {
        while self.used_bytes + needed > self.budget_bytes {
            let entry = self
                .replace_queue
                .pop_front()
                .ok_or(StorageError::BufferFull {
                    frames: self.slots.iter().filter(|s| s.is_some()).count(),
                })?;
            let (idx, gen) = entry;
            match self.slots.get_mut(idx).and_then(Option::as_mut) {
                // Live unpinned frame: a real victim.
                Some(f) if f.gen == gen && f.pin_count == 0 => {}
                // Re-pinned since it was queued: drop the stale entry and
                // let the next unfix re-queue the frame.
                Some(f) if f.gen == gen => {
                    f.queued = false;
                    continue;
                }
                // The slot was recycled or emptied (eviction through a
                // duplicate entry, discard, delete): nothing to do.
                _ => continue,
            }
            if let Err(e) = self.evict(disks, idx) {
                // The victim could not be written back: put it back at the
                // front of the queue so it stays tracked (and remains the
                // preferred victim for the next attempt) instead of
                // leaking out of both the queue and the map.
                self.replace_queue.push_front(entry);
                return Err(e);
            }
        }
        Ok(())
    }

    fn evict(&mut self, disks: &mut [SimDisk], idx: usize) -> Result<()> {
        // Write back *before* detaching the frame: if the write exhausts
        // its retries, the dirty page must stay in the pool rather than be
        // lost with the taken frame.
        {
            let frame = self.slots[idx].as_mut().ok_or(StorageError::InvalidFrame)?;
            debug_assert_eq!(frame.pin_count, 0, "only unpinned frames are in the queue");
            if frame.dirty && frame.pid.disk != VIRTUAL_DISK {
                let disk = disks
                    .get_mut(frame.pid.disk.0)
                    .ok_or(StorageError::NoSuchDisk(frame.pid.disk.0))?;
                Self::write_with_retry(
                    disk,
                    frame.pid.page,
                    &frame.data,
                    &mut self.stats,
                    self.retry,
                )?;
                frame.dirty = false;
                self.stats.writebacks += 1;
            }
        }
        let frame = self.slots[idx].take().ok_or(StorageError::InvalidFrame)?;
        self.stats.evictions += 1;
        self.used_bytes -= frame.data.len();
        self.map.remove(&frame.pid);
        self.free_slots.push(idx);
        Ok(())
    }

    fn frame(&self, fid: FrameId) -> Result<&Frame> {
        self.slots
            .get(fid.index)
            .and_then(|s| s.as_ref())
            .filter(|f| f.gen == fid.gen)
            .ok_or(StorageError::InvalidFrame)
    }

    fn frame_mut(&mut self, fid: FrameId) -> Result<&mut Frame> {
        self.slots
            .get_mut(fid.index)
            .and_then(|s| s.as_mut())
            .filter(|f| f.gen == fid.gen)
            .ok_or(StorageError::InvalidFrame)
    }

    /// Read access to a fixed page's bytes.
    pub fn page(&self, fid: FrameId) -> Result<&[u8]> {
        Ok(&self.frame(fid)?.data)
    }

    /// Write access to a fixed page's bytes; marks the page dirty.
    pub fn page_mut(&mut self, fid: FrameId) -> Result<&mut [u8]> {
        let frame = self.frame_mut(fid)?;
        frame.dirty = true;
        Ok(&mut frame.data)
    }

    /// The page id a frame holds.
    pub fn page_id(&self, fid: FrameId) -> Result<PageId> {
        Ok(self.frame(fid)?.pid)
    }

    /// Unfixes a frame with a replacement hint. Virtual pages disappear
    /// the moment their last fix is released.
    pub fn unfix(&mut self, fid: FrameId, reuse: Reuse) -> Result<()> {
        let frame = self.frame_mut(fid)?;
        debug_assert!(frame.pin_count > 0, "unfix of unpinned frame");
        frame.pin_count -= 1;
        if frame.pin_count == 0 {
            if frame.pid.disk == VIRTUAL_DISK {
                let pid = frame.pid;
                self.discard(pid);
                return Ok(());
            }
            match reuse {
                // Already queued (stale position from an earlier unfix):
                // keep that entry rather than scan it out. The LRU order
                // is approximate for re-fixed pages, which the paper's
                // hint-based interface tolerates.
                Reuse::Lru => {
                    if !frame.queued {
                        frame.queued = true;
                        self.replace_queue.push_back((fid.index, fid.gen));
                    }
                }
                // Preferred victim: always push to the front so the hint
                // takes effect even if an older entry exists further back
                // (the duplicate goes stale once the frame is evicted).
                Reuse::Immediate => {
                    frame.queued = true;
                    self.replace_queue.push_front((fid.index, fid.gen));
                }
            }
        }
        Ok(())
    }

    /// Drops a page from the pool without write-back, if present and
    /// unpinned. Used when temporary files are deleted: their pages need
    /// never touch the disk, which is how the paper's small intermediate
    /// results avoid I/O entirely.
    pub fn discard(&mut self, pid: PageId) {
        if let Some(&idx) = self.map.get(&pid) {
            let frame = self.slots[idx].as_ref().expect("mapped frame exists");
            if frame.pin_count > 0 {
                return; // still in use; caller error, but not corrupting
            }
            let frame = self.slots[idx].take().expect("mapped frame exists");
            self.used_bytes -= frame.data.len();
            self.map.remove(&pid);
            // Any queue entry for this frame fails its generation check
            // when popped; no need to search it out.
            self.free_slots.push(idx);
        }
    }

    /// Flushes and then drops every unpinned frame — a cold-start helper
    /// for experiments that must measure input reads from disk.
    pub fn evict_all(&mut self, disks: &mut [SimDisk]) -> Result<()> {
        self.flush_all(disks)?;
        for idx in 0..self.slots.len() {
            let unpinned = self.slots[idx].as_ref().is_some_and(|f| f.pin_count == 0);
            if unpinned {
                let frame = self.slots[idx].take().expect("checked above");
                self.used_bytes -= frame.data.len();
                self.map.remove(&frame.pid);
                self.free_slots.push(idx);
            } else if let Some(f) = self.slots[idx].as_mut() {
                // The queue is about to be cleared wholesale: surviving
                // (pinned) frames must be re-queueable on their next
                // unfix or they would become unevictable.
                f.queued = false;
            }
        }
        self.replace_queue.clear();
        Ok(())
    }

    /// Writes all dirty pages back to their disks (leaving them cached).
    ///
    /// A page's dirty bit is cleared only after its write succeeds, so a
    /// flush that fails part-way leaves the remaining dirty pages intact
    /// for a later retry.
    pub fn flush_all(&mut self, disks: &mut [SimDisk]) -> Result<()> {
        let retry = self.retry;
        for frame in self.slots.iter_mut().flatten() {
            if frame.dirty && frame.pid.disk != VIRTUAL_DISK {
                let disk = disks
                    .get_mut(frame.pid.disk.0)
                    .ok_or(StorageError::NoSuchDisk(frame.pid.disk.0))?;
                Self::write_with_retry(disk, frame.pid.page, &frame.data, &mut self.stats, retry)?;
                frame.dirty = false;
                self.stats.writebacks += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskId;

    const PS: usize = 128;

    fn setup(pages: u64, budget_frames: usize) -> (Vec<SimDisk>, BufferManager) {
        let mut d = SimDisk::new(PS);
        d.allocate_extent(pages);
        (vec![d], BufferManager::new(budget_frames * PS))
    }

    fn pid(p: u64) -> PageId {
        PageId::new(DiskId(0), p)
    }

    #[test]
    fn fix_reads_once_then_hits() {
        let (mut disks, mut bm) = setup(4, 4);
        let f = bm.fix(&mut disks, pid(0)).unwrap();
        bm.unfix(f, Reuse::Lru).unwrap();
        let f2 = bm.fix(&mut disks, pid(0)).unwrap();
        bm.unfix(f2, Reuse::Lru).unwrap();
        assert_eq!(bm.stats().misses, 1);
        assert_eq!(bm.stats().hits, 1);
        assert_eq!(disks[0].stats().reads, 1);
    }

    #[test]
    fn dirty_page_written_back_on_eviction() {
        let (mut disks, mut bm) = setup(3, 2);
        let f = bm.fix(&mut disks, pid(0)).unwrap();
        bm.page_mut(f).unwrap()[0] = 0xCC;
        bm.unfix(f, Reuse::Lru).unwrap();
        // Fill pool beyond budget to force eviction of page 0.
        for p in 1..3 {
            let f = bm.fix(&mut disks, pid(p)).unwrap();
            bm.unfix(f, Reuse::Lru).unwrap();
        }
        assert_eq!(bm.stats().evictions, 1);
        assert_eq!(bm.stats().writebacks, 1);
        let mut buf = vec![0u8; PS];
        disks[0].read(0, &mut buf).unwrap();
        assert_eq!(buf[0], 0xCC);
    }

    #[test]
    fn clean_page_evicted_without_writeback() {
        let (mut disks, mut bm) = setup(3, 2);
        for p in 0..3 {
            let f = bm.fix(&mut disks, pid(p)).unwrap();
            bm.unfix(f, Reuse::Lru).unwrap();
        }
        assert_eq!(bm.stats().evictions, 1);
        assert_eq!(bm.stats().writebacks, 0);
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let (mut disks, mut bm) = setup(3, 2);
        let f0 = bm.fix(&mut disks, pid(0)).unwrap();
        let f1 = bm.fix(&mut disks, pid(1)).unwrap();
        // Pool is full of pinned pages: a third fix must fail.
        assert!(matches!(
            bm.fix(&mut disks, pid(2)),
            Err(StorageError::BufferFull { frames: 2 })
        ));
        bm.unfix(f0, Reuse::Lru).unwrap();
        bm.unfix(f1, Reuse::Lru).unwrap();
        assert!(bm.fix(&mut disks, pid(2)).is_ok());
    }

    #[test]
    fn immediate_reuse_is_preferred_victim() {
        let (mut disks, mut bm) = setup(4, 3);
        let f0 = bm.fix(&mut disks, pid(0)).unwrap();
        let f1 = bm.fix(&mut disks, pid(1)).unwrap();
        let f2 = bm.fix(&mut disks, pid(2)).unwrap();
        bm.unfix(f0, Reuse::Lru).unwrap();
        bm.unfix(f1, Reuse::Lru).unwrap();
        bm.unfix(f2, Reuse::Immediate).unwrap(); // becomes front of queue
        let f3 = bm.fix(&mut disks, pid(3)).unwrap();
        bm.unfix(f3, Reuse::Lru).unwrap();
        // Page 2 was evicted; pages 0 and 1 still hit.
        bm.fix(&mut disks, pid(0))
            .map(|f| bm.unfix(f, Reuse::Lru))
            .unwrap()
            .unwrap();
        bm.fix(&mut disks, pid(1))
            .map(|f| bm.unfix(f, Reuse::Lru))
            .unwrap()
            .unwrap();
        assert_eq!(bm.stats().misses, 4, "pages 0..=3 each missed once");
        assert_eq!(bm.stats().hits, 2);
    }

    #[test]
    fn stale_frame_id_is_rejected() {
        let (mut disks, mut bm) = setup(3, 1);
        let f0 = bm.fix(&mut disks, pid(0)).unwrap();
        bm.unfix(f0, Reuse::Lru).unwrap();
        // Evict page 0 by fixing page 1 (budget is a single frame).
        let f1 = bm.fix(&mut disks, pid(1)).unwrap();
        assert!(matches!(bm.page(f0), Err(StorageError::InvalidFrame)));
        bm.unfix(f1, Reuse::Lru).unwrap();
    }

    #[test]
    fn refix_removes_from_replacement_queue() {
        let (mut disks, mut bm) = setup(3, 2);
        let f0 = bm.fix(&mut disks, pid(0)).unwrap();
        bm.unfix(f0, Reuse::Lru).unwrap();
        // Refix page 0: it must no longer be an eviction candidate.
        let f0b = bm.fix(&mut disks, pid(0)).unwrap();
        let f1 = bm.fix(&mut disks, pid(1)).unwrap();
        assert!(matches!(
            bm.fix(&mut disks, pid(2)),
            Err(StorageError::BufferFull { .. })
        ));
        bm.unfix(f0b, Reuse::Lru).unwrap();
        bm.unfix(f1, Reuse::Lru).unwrap();
    }

    #[test]
    fn new_page_performs_no_read_transfer() {
        let (mut disks, mut bm) = setup(0, 2);
        let (pid, fid) = bm.new_page(&mut disks, DiskId(0)).unwrap();
        assert_eq!(pid.page, 0);
        bm.page_mut(fid).unwrap()[5] = 9;
        bm.unfix(fid, Reuse::Lru).unwrap();
        assert_eq!(disks[0].stats().reads, 0);
    }

    #[test]
    fn discard_drops_without_writeback() {
        let (mut disks, mut bm) = setup(0, 2);
        let (p, f) = bm.new_page(&mut disks, DiskId(0)).unwrap();
        bm.page_mut(f).unwrap()[0] = 1;
        bm.unfix(f, Reuse::Lru).unwrap();
        bm.discard(p);
        assert_eq!(bm.used_bytes(), 0);
        assert_eq!(disks[0].stats().writes, 0);
    }

    #[test]
    fn flush_all_writes_dirty_pages_once() {
        let (mut disks, mut bm) = setup(2, 2);
        for p in 0..2 {
            let f = bm.fix(&mut disks, pid(p)).unwrap();
            bm.page_mut(f).unwrap()[0] = p as u8 + 1;
            bm.unfix(f, Reuse::Lru).unwrap();
        }
        bm.flush_all(&mut disks).unwrap();
        bm.flush_all(&mut disks).unwrap(); // second flush: nothing dirty
        assert_eq!(bm.stats().writebacks, 2);
        assert_eq!(disks[0].stats().writes, 2);
    }

    #[test]
    fn peak_bytes_tracks_high_water_mark() {
        let (mut disks, mut bm) = setup(4, 4);
        for p in 0..3 {
            let f = bm.fix(&mut disks, pid(p)).unwrap();
            bm.unfix(f, Reuse::Lru).unwrap();
        }
        assert_eq!(bm.stats().peak_bytes, 3 * PS);
    }

    #[test]
    fn pool_grows_dynamically_within_budget() {
        let (mut disks, mut bm) = setup(4, 4);
        assert_eq!(bm.used_bytes(), 0);
        let f = bm.fix(&mut disks, pid(0)).unwrap();
        assert_eq!(bm.used_bytes(), PS);
        bm.unfix(f, Reuse::Lru).unwrap();
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::disk::DiskId;
    use crate::fault::FaultPlan;

    const PS: usize = 128;

    fn setup(pages: u64, budget_frames: usize) -> (Vec<SimDisk>, BufferManager) {
        let mut d = SimDisk::new(PS);
        d.allocate_extent(pages);
        (vec![d], BufferManager::new(budget_frames * PS))
    }

    fn pid(p: u64) -> PageId {
        PageId::new(DiskId(0), p)
    }

    /// A fast policy for tests: retries without sleeping.
    fn instant_retry(max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            backoff_base: Duration::ZERO,
            backoff_cap: Duration::ZERO,
        }
    }

    #[test]
    fn transient_read_fault_is_retried_and_counted() {
        let (mut disks, mut bm) = setup(2, 2);
        bm.set_retry_policy(instant_retry(3));
        disks[0].set_fault_plan(FaultPlan::seeded(1).with_read_failure_at(0));
        let f = bm.fix(&mut disks, pid(0)).unwrap();
        bm.unfix(f, Reuse::Lru).unwrap();
        assert_eq!(bm.stats().read_retries, 1);
        assert_eq!(bm.stats().misses, 1);
    }

    #[test]
    fn exhausted_read_retries_leak_no_pins() {
        let (mut disks, mut bm) = setup(2, 2);
        bm.set_retry_policy(instant_retry(2));
        // Attempts 0, 1, 2 all fail: retries exhausted.
        disks[0].set_fault_plan(
            FaultPlan::seeded(1)
                .with_read_failure_at(0)
                .with_read_failure_at(1)
                .with_read_failure_at(2),
        );
        assert!(matches!(
            bm.fix(&mut disks, pid(0)),
            Err(StorageError::Transient { op: "read", .. })
        ));
        assert_eq!(bm.stats().read_retries, 2);
        assert_eq!(bm.used_bytes(), 0, "no frame installed for a failed fix");
        // The pool is fully usable afterwards: both frames can be pinned.
        disks[0].clear_fault_plan();
        let f0 = bm.fix(&mut disks, pid(0)).unwrap();
        let f1 = bm.fix(&mut disks, pid(1)).unwrap();
        bm.unfix(f0, Reuse::Lru).unwrap();
        bm.unfix(f1, Reuse::Lru).unwrap();
    }

    #[test]
    fn permanent_fault_is_not_retried() {
        let (mut disks, mut bm) = setup(2, 2);
        bm.set_retry_policy(instant_retry(5));
        disks[0].set_fault_plan(FaultPlan::seeded(1).with_bad_page(0));
        assert!(matches!(
            bm.fix(&mut disks, pid(0)),
            Err(StorageError::Permanent { op: "read", .. })
        ));
        assert_eq!(bm.stats().read_retries, 0);
    }

    #[test]
    fn dirty_page_survives_failed_writeback_and_flushes_later() {
        let (mut disks, mut bm) = setup(3, 2);
        bm.set_retry_policy(RetryPolicy::none());
        let f = bm.fix(&mut disks, pid(0)).unwrap();
        bm.page_mut(f).unwrap()[0] = 0xAB;
        bm.unfix(f, Reuse::Lru).unwrap();
        let f1 = bm.fix(&mut disks, pid(1)).unwrap();
        // Force an eviction of dirty page 0 whose write-back fails.
        disks[0].set_fault_plan(FaultPlan::seeded(1).with_write_failure_at(0));
        assert!(matches!(
            bm.fix(&mut disks, pid(2)),
            Err(StorageError::Transient { op: "write", .. })
        ));
        bm.unfix(f1, Reuse::Lru).unwrap();
        // The dirty page was NOT lost: once the disk heals, its bytes make
        // it back out.
        disks[0].clear_fault_plan();
        bm.flush_all(&mut disks).unwrap();
        let mut buf = vec![0u8; PS];
        disks[0].read(0, &mut buf).unwrap();
        assert_eq!(buf[0], 0xAB);
    }

    #[test]
    fn failed_eviction_keeps_victim_in_replacement_queue() {
        let (mut disks, mut bm) = setup(3, 2);
        bm.set_retry_policy(RetryPolicy::none());
        let f = bm.fix(&mut disks, pid(0)).unwrap();
        bm.page_mut(f).unwrap()[0] = 0x77;
        bm.unfix(f, Reuse::Lru).unwrap();
        let f1 = bm.fix(&mut disks, pid(1)).unwrap();
        disks[0].set_fault_plan(FaultPlan::seeded(1).with_write_failure_at(0));
        assert!(bm.fix(&mut disks, pid(2)).is_err());
        // After the disk heals, the same fix succeeds: the victim was still
        // queued, so making room works without manual intervention.
        disks[0].clear_fault_plan();
        let f2 = bm.fix(&mut disks, pid(2)).unwrap();
        bm.unfix(f1, Reuse::Lru).unwrap();
        bm.unfix(f2, Reuse::Lru).unwrap();
        let mut buf = vec![0u8; PS];
        disks[0].read(0, &mut buf).unwrap();
        assert_eq!(buf[0], 0x77, "dirty page written back by retried eviction");
    }

    #[test]
    fn write_retries_rescue_transient_writeback_faults() {
        let (mut disks, mut bm) = setup(3, 2);
        bm.set_retry_policy(instant_retry(3));
        let f = bm.fix(&mut disks, pid(0)).unwrap();
        bm.page_mut(f).unwrap()[0] = 0x42;
        bm.unfix(f, Reuse::Lru).unwrap();
        disks[0].set_fault_plan(FaultPlan::seeded(1).with_write_failure_at(0));
        // Eviction of page 0 hits one transient write fault, retries, and
        // succeeds — fully transparent to the caller.
        let f1 = bm.fix(&mut disks, pid(1)).unwrap();
        let f2 = bm.fix(&mut disks, pid(2)).unwrap();
        bm.unfix(f1, Reuse::Lru).unwrap();
        bm.unfix(f2, Reuse::Lru).unwrap();
        assert_eq!(bm.stats().write_retries, 1);
        assert_eq!(bm.stats().writebacks, 1);
        let mut buf = vec![0u8; PS];
        disks[0].read(0, &mut buf).unwrap();
        assert_eq!(buf[0], 0x42);
    }

    #[test]
    fn checksum_mismatch_escalates_without_retry() {
        let (mut disks, mut bm) = setup(2, 2);
        bm.set_retry_policy(instant_retry(5));
        disks[0].corrupt_page(0).unwrap();
        assert!(matches!(
            bm.fix(&mut disks, pid(0)),
            Err(StorageError::ChecksumMismatch { page: 0, .. })
        ));
        assert_eq!(bm.stats().read_retries, 0, "corruption is not retryable");
    }
}

#[cfg(test)]
mod virtual_tests {
    use super::*;

    #[test]
    fn virtual_page_lives_while_fixed_and_disappears_on_unfix() {
        let mut disks = vec![SimDisk::new(128)];
        let mut bm = BufferManager::new(4 * 128);
        let (pid, fid) = bm.new_virtual_page(&mut disks, 128).unwrap();
        assert_eq!(pid.disk, VIRTUAL_DISK);
        bm.page_mut(fid).unwrap()[0] = 0xEE;
        assert_eq!(bm.page(fid).unwrap()[0], 0xEE);
        bm.unfix(fid, Reuse::Lru).unwrap();
        // Gone: re-fixing the id would need a disk read, which must fail
        // (there is no disk usize::MAX), and the frame id is stale.
        assert!(matches!(bm.page(fid), Err(StorageError::InvalidFrame)));
        assert!(bm.fix(&mut disks, pid).is_err());
        assert_eq!(bm.used_bytes(), 0);
    }

    #[test]
    fn virtual_pages_never_touch_a_disk() {
        let mut disks = vec![SimDisk::new(128)];
        let mut bm = BufferManager::new(8 * 128);
        for _ in 0..5 {
            let (_, fid) = bm.new_virtual_page(&mut disks, 128).unwrap();
            bm.page_mut(fid).unwrap()[1] = 7;
            bm.unfix(fid, Reuse::Immediate).unwrap();
        }
        bm.flush_all(&mut disks).unwrap();
        assert_eq!(disks[0].stats().transfers(), 0);
        assert_eq!(bm.stats().writebacks, 0);
    }

    #[test]
    fn virtual_pages_count_against_the_budget_while_fixed() {
        let mut disks = vec![SimDisk::new(128)];
        let mut bm = BufferManager::new(2 * 128);
        let (_, f1) = bm.new_virtual_page(&mut disks, 128).unwrap();
        let (_, f2) = bm.new_virtual_page(&mut disks, 128).unwrap();
        // Pool full of pinned virtual pages: no room for a third.
        assert!(matches!(
            bm.new_virtual_page(&mut disks, 128),
            Err(StorageError::BufferFull { .. })
        ));
        bm.unfix(f1, Reuse::Lru).unwrap();
        bm.unfix(f2, Reuse::Lru).unwrap();
        assert!(bm.new_virtual_page(&mut disks, 128).is_ok());
    }

    #[test]
    fn each_virtual_page_gets_a_distinct_id() {
        let mut disks = vec![SimDisk::new(128)];
        let mut bm = BufferManager::new(4 * 128);
        let (p1, f1) = bm.new_virtual_page(&mut disks, 128).unwrap();
        let (p2, f2) = bm.new_virtual_page(&mut disks, 128).unwrap();
        assert_ne!(p1, p2);
        bm.unfix(f1, Reuse::Lru).unwrap();
        bm.unfix(f2, Reuse::Lru).unwrap();
    }
}
