//! Error type for the storage substrate.

use std::fmt;

/// Errors raised by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A page id referenced a page the disk has not allocated.
    PageOutOfRange {
        /// The offending page number.
        page: u64,
        /// Number of pages currently allocated on the disk.
        allocated: u64,
    },
    /// A disk id referenced a disk that does not exist.
    NoSuchDisk(usize),
    /// A file id referenced a file that does not exist (or was dropped).
    NoSuchFile(u64),
    /// A RID referenced a slot that does not hold a record.
    NoSuchRecord {
        /// Page number of the RID.
        page: u64,
        /// Slot number of the RID.
        slot: u16,
    },
    /// The buffer pool is at capacity and every frame is pinned.
    BufferFull {
        /// Number of frames, all pinned.
        frames: usize,
    },
    /// A frame id was used after being unfixed, or was never issued.
    InvalidFrame,
    /// A record is too large to ever fit in a page of this disk.
    RecordTooLarge {
        /// Size of the record in bytes.
        record: usize,
        /// Maximum record payload a page can hold.
        max: usize,
    },
    /// The main-memory pool is exhausted.
    ///
    /// For hash-based algorithms this is not fatal: it is the trigger for
    /// the paper's hash-table overflow handling (Section 3.4).
    MemoryExhausted {
        /// Bytes requested.
        requested: usize,
        /// Bytes still available in the pool.
        available: usize,
    },
    /// A page's slotted layout is corrupt.
    CorruptPage(String),
    /// B+-tree structural invariant violation (would indicate a bug).
    CorruptTree(String),
    /// A transient I/O fault: the transfer failed, but retrying may
    /// succeed. The buffer manager retries these with backoff before
    /// escalating.
    Transient {
        /// The failed operation, `"read"` or `"write"`.
        op: &'static str,
        /// The page the transfer targeted.
        page: u64,
    },
    /// A permanently bad page: every transfer to it fails, so retrying is
    /// pointless.
    Permanent {
        /// The failed operation, `"read"` or `"write"`.
        op: &'static str,
        /// The unusable page.
        page: u64,
    },
    /// The page's stored bytes do not match its checksum — a torn write
    /// or silent corruption was *detected* instead of served.
    ChecksumMismatch {
        /// The corrupt page.
        page: u64,
        /// Checksum recorded when the page was last written.
        expected: u64,
        /// Checksum of the bytes actually stored.
        actual: u64,
    },
}

impl StorageError {
    /// Whether a retry of the failed operation may succeed. Only
    /// [`StorageError::Transient`] qualifies; permanent faults and
    /// detected corruption do not heal by retrying.
    pub fn is_transient(&self) -> bool {
        matches!(self, StorageError::Transient { .. })
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::PageOutOfRange { page, allocated } => {
                write!(f, "page {page} out of range ({allocated} allocated)")
            }
            StorageError::NoSuchDisk(d) => write!(f, "no such disk: {d}"),
            StorageError::NoSuchFile(id) => write!(f, "no such file: {id}"),
            StorageError::NoSuchRecord { page, slot } => {
                write!(f, "no record at page {page}, slot {slot}")
            }
            StorageError::BufferFull { frames } => {
                write!(f, "buffer pool full: all {frames} frames pinned")
            }
            StorageError::InvalidFrame => write!(f, "invalid or stale frame id"),
            StorageError::RecordTooLarge { record, max } => {
                write!(f, "record of {record} bytes exceeds page capacity {max}")
            }
            StorageError::MemoryExhausted {
                requested,
                available,
            } => {
                write!(
                    f,
                    "memory pool exhausted: requested {requested}, available {available}"
                )
            }
            StorageError::CorruptPage(msg) => write!(f, "corrupt page: {msg}"),
            StorageError::CorruptTree(msg) => write!(f, "corrupt B+-tree: {msg}"),
            StorageError::Transient { op, page } => {
                write!(f, "transient {op} fault on page {page} (retryable)")
            }
            StorageError::Permanent { op, page } => {
                write!(f, "permanent {op} failure on page {page}")
            }
            StorageError::ChecksumMismatch {
                page,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "checksum mismatch on page {page}: stored {expected:#018x}, computed {actual:#018x}"
                )
            }
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let cases: Vec<(StorageError, &str)> = vec![
            (
                StorageError::PageOutOfRange {
                    page: 9,
                    allocated: 4,
                },
                "page 9",
            ),
            (StorageError::NoSuchDisk(2), "disk: 2"),
            (StorageError::NoSuchFile(7), "file: 7"),
            (StorageError::NoSuchRecord { page: 1, slot: 3 }, "slot 3"),
            (StorageError::BufferFull { frames: 8 }, "8 frames"),
            (StorageError::InvalidFrame, "frame"),
            (
                StorageError::RecordTooLarge {
                    record: 9000,
                    max: 8180,
                },
                "9000",
            ),
            (
                StorageError::MemoryExhausted {
                    requested: 64,
                    available: 8,
                },
                "requested 64",
            ),
            (StorageError::CorruptPage("x".into()), "corrupt page"),
            (StorageError::CorruptTree("y".into()), "B+-tree"),
            (
                StorageError::Transient {
                    op: "read",
                    page: 5,
                },
                "transient read",
            ),
            (
                StorageError::Permanent {
                    op: "write",
                    page: 6,
                },
                "permanent write",
            ),
            (
                StorageError::ChecksumMismatch {
                    page: 7,
                    expected: 1,
                    actual: 2,
                },
                "checksum mismatch on page 7",
            ),
        ];
        for (e, needle) in cases {
            assert!(
                e.to_string().contains(needle),
                "{e} should contain {needle}"
            );
        }
    }
}
