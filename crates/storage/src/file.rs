//! Extent-based record files.
//!
//! Files allocate disk space in extents (runs of physically contiguous
//! pages), so a sequential scan of a file is a sequence of mostly
//! sequential transfers — the property that lets hash-based algorithms
//! "not require random I/O and thus allow efficient read-ahead of
//! physically clustered or contiguous files" (Section 3.3).
//!
//! Records are addressed by [`Rid`]s (page id + slot number), which remain
//! stable across page compaction.

use crate::buffer::Reuse;
use crate::disk::{DiskId, PageId};
use crate::error::StorageError;
use crate::manager::StorageManager;
use crate::page::SlottedPage;
use crate::Result;

/// Number of pages allocated per extent.
pub const EXTENT_PAGES: u64 = 8;

/// Identifies a record file within a [`StorageManager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u64);

/// A record identifier: the page holding the record and its slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rid {
    /// Page holding the record.
    pub page: PageId,
    /// Slot within the page.
    pub slot: u16,
}

/// Catalog entry for one file.
#[derive(Debug, Clone)]
pub struct FileMeta {
    pub(crate) disk: DiskId,
    /// `(first_page, n_pages)` extents, in allocation order.
    pub(crate) extents: Vec<(u64, u64)>,
    /// Pages initialized for records so far.
    pub(crate) pages_used: u64,
    /// Live records.
    pub(crate) record_count: u64,
}

impl FileMeta {
    /// Page number (on the file's disk) of the `i`-th page of the file.
    fn nth_page(&self, i: u64) -> u64 {
        let mut remaining = i;
        for &(first, len) in &self.extents {
            if remaining < len {
                return first + remaining;
            }
            remaining -= len;
        }
        unreachable!("page index {i} beyond allocated extents");
    }

    fn allocated_pages(&self) -> u64 {
        self.extents.iter().map(|&(_, len)| len).sum()
    }
}

impl StorageManager {
    /// Creates an empty record file on `disk`.
    pub fn create_file(&mut self, disk: DiskId) -> FileId {
        let id = self.next_file;
        self.next_file += 1;
        self.files.insert(
            id,
            FileMeta {
                disk,
                extents: Vec::new(),
                pages_used: 0,
                record_count: 0,
            },
        );
        FileId(id)
    }

    fn meta(&self, file: FileId) -> Result<&FileMeta> {
        self.files
            .get(&file.0)
            .ok_or(StorageError::NoSuchFile(file.0))
    }

    /// Number of live records in `file`.
    pub fn record_count(&self, file: FileId) -> Result<u64> {
        Ok(self.meta(file)?.record_count)
    }

    /// Number of pages the file has put records on (its page cardinality,
    /// the paper's `r`/`s`/`q`).
    pub fn page_count(&self, file: FileId) -> Result<u64> {
        Ok(self.meta(file)?.pages_used)
    }

    /// The disk a file lives on.
    pub fn file_disk(&self, file: FileId) -> Result<DiskId> {
        Ok(self.meta(file)?.disk)
    }

    /// Number of files currently in the catalog. Overflow handling creates
    /// and deletes temporary cluster/spill files; this lets callers (and
    /// tests) verify none leak.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Appends a record to the file, returning its RID.
    ///
    /// Appends go to the file's last page while it has room, then move to
    /// the next page of the extent (allocating a new extent when
    /// exhausted) — the bulk-load pattern of the workload loader and of
    /// every operator that spools an intermediate result.
    pub fn append(&mut self, file: FileId, record: &[u8]) -> Result<Rid> {
        let meta = self.meta(file)?;
        let disk = meta.disk;
        let page_size = self.page_size(disk);
        if record.len() > SlottedPage::max_record(page_size) {
            return Err(StorageError::RecordTooLarge {
                record: record.len(),
                max: SlottedPage::max_record(page_size),
            });
        }
        // Try the current last page first.
        if meta.pages_used > 0 {
            let page_no = meta.nth_page(meta.pages_used - 1);
            let pid = PageId::new(disk, page_no);
            let fid = self.fix(pid)?;
            let fits = SlottedPage::fits(self.page(fid)?, record.len());
            if fits {
                let slot = SlottedPage::insert(self.page_mut(fid)?, record)?;
                self.unfix(fid, Reuse::Lru)?;
                self.files
                    .get_mut(&file.0)
                    .expect("meta checked")
                    .record_count += 1;
                return Ok(Rid { page: pid, slot });
            }
            self.unfix(fid, Reuse::Lru)?;
        }
        // Move to a fresh page, extending the file by an extent if needed.
        let meta = self.files.get_mut(&file.0).expect("meta checked");
        if meta.pages_used == meta.allocated_pages() {
            let first = self.disks[disk.0].allocate_extent(EXTENT_PAGES);
            meta.extents.push((first, EXTENT_PAGES));
        }
        let page_no = meta.nth_page(meta.pages_used);
        meta.pages_used += 1;
        meta.record_count += 1;
        let pid = PageId::new(disk, page_no);
        // The page is fresh from the allocator: initialize, no disk read.
        let fid = self.fix_fresh(pid)?;
        SlottedPage::init(self.page_mut(fid)?);
        let slot = SlottedPage::insert(self.page_mut(fid)?, record)?;
        self.unfix(fid, Reuse::Lru)?;
        Ok(Rid { page: pid, slot })
    }

    /// Fixes a page known to be freshly allocated (never written), without
    /// a read transfer.
    fn fix_fresh(&mut self, pid: PageId) -> Result<crate::buffer::FrameId> {
        // An allocated-but-never-read page is all zeroes on disk; loading it
        // as a zeroed frame is equivalent and costs no transfer.
        self.buffer.install_zeroed(&mut self.disks, pid)
    }

    /// Reads the record at `rid`.
    pub fn get(&mut self, rid: Rid) -> Result<Vec<u8>> {
        let fid = self.fix(rid.page)?;
        let out = SlottedPage::get(self.page(fid)?, rid.slot).map(<[u8]>::to_vec);
        self.unfix(fid, Reuse::Lru)?;
        out.ok_or(StorageError::NoSuchRecord {
            page: rid.page.page,
            slot: rid.slot,
        })
    }

    /// Deletes the record at `rid` from `file`.
    pub fn delete_record(&mut self, file: FileId, rid: Rid) -> Result<()> {
        self.meta(file)?;
        let fid = self.fix(rid.page)?;
        let deleted = SlottedPage::delete(self.page_mut(fid)?, rid.slot);
        self.unfix(fid, Reuse::Lru)?;
        if !deleted {
            return Err(StorageError::NoSuchRecord {
                page: rid.page.page,
                slot: rid.slot,
            });
        }
        self.files
            .get_mut(&file.0)
            .expect("meta checked")
            .record_count -= 1;
        Ok(())
    }

    /// Deletes a file: discards its buffered pages without write-back and
    /// returns its extents to the disk's free list.
    ///
    /// Temporary files that never grew past the buffer pool therefore cost
    /// no I/O at all — the buffer-pool effect the paper highlights when
    /// explaining why small intermediate results are free.
    pub fn delete_file(&mut self, file: FileId) -> Result<()> {
        let meta = self
            .files
            .remove(&file.0)
            .ok_or(StorageError::NoSuchFile(file.0))?;
        for &(first, len) in &meta.extents {
            for p in first..first + len {
                self.buffer.discard(PageId::new(meta.disk, p));
                self.disks[meta.disk.0].release(p);
            }
        }
        Ok(())
    }

    /// Page id of the `i`-th page of the file (for scans).
    pub fn file_page(&self, file: FileId, i: u64) -> Result<PageId> {
        let meta = self.meta(file)?;
        if i >= meta.pages_used {
            return Err(StorageError::PageOutOfRange {
                page: i,
                allocated: meta.pages_used,
            });
        }
        Ok(PageId::new(meta.disk, meta.nth_page(i)))
    }
}

/// A pull cursor over all records of a file, page at a time.
///
/// The cursor copies one page's records out while the page is fixed and
/// then unfixes it (`Reuse::Lru`), so a scan touches each page exactly
/// once and leaves the buffer pool free to recycle frames behind it.
pub struct ScanCursor {
    file: FileId,
    next_page: u64,
    batch: std::vec::IntoIter<(Rid, Vec<u8>)>,
    done: bool,
}

impl ScanCursor {
    /// Opens a scan over `file`.
    pub fn new(file: FileId) -> Self {
        ScanCursor {
            file,
            next_page: 0,
            batch: Vec::new().into_iter(),
            done: false,
        }
    }

    /// Returns the next `(rid, record)`, or `None` at end of file.
    pub fn next(&mut self, sm: &mut StorageManager) -> Result<Option<(Rid, Vec<u8>)>> {
        loop {
            if let Some(item) = self.batch.next() {
                return Ok(Some(item));
            }
            if self.done {
                return Ok(None);
            }
            let pages = sm.page_count(self.file)?;
            if self.next_page >= pages {
                self.done = true;
                return Ok(None);
            }
            let pid = sm.file_page(self.file, self.next_page)?;
            self.next_page += 1;
            let fid = sm.fix(pid)?;
            let records: Vec<(Rid, Vec<u8>)> = SlottedPage::records(sm.page(fid)?)
                .map(|(slot, rec)| (Rid { page: pid, slot }, rec.to_vec()))
                .collect();
            sm.unfix(fid, Reuse::Lru)?;
            self.batch = records.into_iter();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::StorageConfig;

    fn sm() -> StorageManager {
        StorageManager::new(StorageConfig {
            data_page_size: 256,
            run_page_size: 128,
            buffer_bytes: 8 * 256,
            work_memory_bytes: 1 << 20,
        })
    }

    #[test]
    fn append_get_roundtrip() {
        let mut s = sm();
        let f = s.create_file(StorageManager::DATA_DISK);
        let r1 = s.append(f, b"alpha").unwrap();
        let r2 = s.append(f, b"beta").unwrap();
        assert_eq!(s.get(r1).unwrap(), b"alpha");
        assert_eq!(s.get(r2).unwrap(), b"beta");
        assert_eq!(s.record_count(f).unwrap(), 2);
    }

    #[test]
    fn appends_spill_across_pages_and_extents() {
        let mut s = sm();
        let f = s.create_file(StorageManager::DATA_DISK);
        // 256-byte pages hold ~17 records of 10 bytes; write enough to need
        // more pages than one extent (8 pages).
        let n = 400u32;
        let rids: Vec<Rid> = (0..n)
            .map(|i| s.append(f, format!("rec{i:06}").as_bytes()).unwrap())
            .collect();
        assert!(s.page_count(f).unwrap() > EXTENT_PAGES);
        for (i, rid) in rids.iter().enumerate() {
            assert_eq!(s.get(*rid).unwrap(), format!("rec{i:06}").as_bytes());
        }
    }

    #[test]
    fn scan_returns_all_records_in_order() {
        let mut s = sm();
        let f = s.create_file(StorageManager::DATA_DISK);
        for i in 0..100u32 {
            s.append(f, &i.to_le_bytes()).unwrap();
        }
        let mut cursor = ScanCursor::new(f);
        let mut seen = Vec::new();
        while let Some((_, rec)) = cursor.next(&mut s).unwrap() {
            seen.push(u32::from_le_bytes(rec.try_into().unwrap()));
        }
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn scan_of_empty_file_is_empty() {
        let mut s = sm();
        let f = s.create_file(StorageManager::DATA_DISK);
        let mut cursor = ScanCursor::new(f);
        assert!(cursor.next(&mut s).unwrap().is_none());
    }

    #[test]
    fn delete_record_then_get_fails() {
        let mut s = sm();
        let f = s.create_file(StorageManager::DATA_DISK);
        let rid = s.append(f, b"x").unwrap();
        s.delete_record(f, rid).unwrap();
        assert!(matches!(s.get(rid), Err(StorageError::NoSuchRecord { .. })));
        assert_eq!(s.record_count(f).unwrap(), 0);
        assert!(matches!(
            s.delete_record(f, rid),
            Err(StorageError::NoSuchRecord { .. })
        ));
    }

    #[test]
    fn scan_skips_deleted_records() {
        let mut s = sm();
        let f = s.create_file(StorageManager::DATA_DISK);
        let rids: Vec<Rid> = (0..10u8).map(|i| s.append(f, &[i]).unwrap()).collect();
        for rid in rids.iter().step_by(2) {
            s.delete_record(f, *rid).unwrap();
        }
        let mut cursor = ScanCursor::new(f);
        let mut seen = Vec::new();
        while let Some((_, rec)) = cursor.next(&mut s).unwrap() {
            seen.push(rec[0]);
        }
        assert_eq!(seen, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn deleted_file_is_gone_and_pages_reused() {
        let mut s = sm();
        let f = s.create_file(StorageManager::DATA_DISK);
        for i in 0..50u32 {
            s.append(f, &i.to_le_bytes()).unwrap();
        }
        s.delete_file(f).unwrap();
        assert!(matches!(
            s.record_count(f),
            Err(StorageError::NoSuchFile(_))
        ));
        // A new file reuses the released pages (the disk does not grow).
        let before = s.disks[0].allocated_pages();
        let g = s.create_file(StorageManager::DATA_DISK);
        for i in 0..50u32 {
            s.append(g, &i.to_le_bytes()).unwrap();
        }
        assert_eq!(s.disks[0].allocated_pages(), before);
    }

    #[test]
    fn temp_file_within_buffer_costs_no_io() {
        // The paper: temporary pages "remain in the buffer pool from run
        // creation to merging and deletion" — no transfers at all.
        let mut s = StorageManager::new(StorageConfig::large());
        let f = s.create_file(StorageManager::DATA_DISK);
        for i in 0..100u32 {
            s.append(f, &i.to_le_bytes()).unwrap();
        }
        let mut cursor = ScanCursor::new(f);
        while cursor.next(&mut s).unwrap().is_some() {}
        s.delete_file(f).unwrap();
        assert_eq!(s.io_stats().transfers(), 0);
    }

    #[test]
    fn sequential_scan_after_eviction_reads_sequentially() {
        // Tiny buffer (4 frames): a 100-record file cannot stay cached, so
        // the scan must reread pages — sequentially, with few seeks.
        let mut s = StorageManager::new(StorageConfig {
            data_page_size: 256,
            run_page_size: 128,
            buffer_bytes: 4 * 256,
            work_memory_bytes: 1 << 20,
        });
        let f = s.create_file(StorageManager::DATA_DISK);
        for i in 0..300u32 {
            s.append(f, &i.to_le_bytes()).unwrap();
        }
        s.flush_all().unwrap();
        s.reset_stats();
        let mut cursor = ScanCursor::new(f);
        let mut n = 0;
        while cursor.next(&mut s).unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 300);
        let stats = s.io_stats();
        assert!(stats.reads > 0, "file larger than pool must read");
        assert!(
            stats.seeks * 4 <= stats.reads,
            "extent-based scan should be mostly sequential: {stats:?}"
        );
    }

    #[test]
    fn oversized_record_rejected() {
        let mut s = sm();
        let f = s.create_file(StorageManager::DATA_DISK);
        assert!(matches!(
            s.append(f, &vec![0u8; 300]),
            Err(StorageError::RecordTooLarge { .. })
        ));
    }
}
