//! The simulated disk and the paper's experimental I/O cost model.
//!
//! The paper's file system "simulates a disk using a UNIX file or main
//! memory"; this implementation uses main memory. What matters for the
//! reproduction is not where the bytes live but the *statistics*: the paper
//! computed I/O cost from file-system statistics using the Table 3
//! parameters (20 ms per physical seek, 8 ms rotational latency per
//! transfer, 0.5 ms per KB transferred, 2 ms CPU per transfer). The disk
//! therefore records every transfer, distinguishing sequential transfers
//! (next page in the direction of travel) from transfers requiring a seek.

use crate::error::StorageError;
use crate::Result;

/// Identifies one simulated disk within a [`crate::StorageManager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DiskId(pub usize);

/// Identifies one page: a disk and a page number on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId {
    /// The disk holding the page.
    pub disk: DiskId,
    /// Zero-based page number on that disk.
    pub page: u64,
}

impl PageId {
    /// Creates a page id.
    pub fn new(disk: DiskId, page: u64) -> Self {
        PageId { disk, page }
    }
}

/// Statistics collected by a simulated disk.
///
/// These are the raw counts the paper's Table 3 prices: the run-time
/// reported for an experiment is measured CPU time plus the I/O cost
/// computed from these statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Page reads.
    pub reads: u64,
    /// Page writes.
    pub writes: u64,
    /// Transfers that required a physical seek (non-sequential access).
    pub seeks: u64,
    /// Total bytes transferred in either direction.
    pub bytes: u64,
}

impl IoStats {
    /// Total transfers (reads + writes).
    pub fn transfers(&self) -> u64 {
        self.reads + self.writes
    }

    /// Component-wise sum.
    pub fn merge(&self, other: &IoStats) -> IoStats {
        IoStats {
            reads: self.reads + other.reads,
            writes: self.writes + other.writes,
            seeks: self.seeks + other.seeks,
            bytes: self.bytes + other.bytes,
        }
    }

    /// Component-wise difference `self - earlier`, saturating at zero.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
            seeks: self.seeks.saturating_sub(earlier.seeks),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }
}

/// The experimental I/O cost parameters of the paper's Table 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoCostParams {
    /// Milliseconds per physical seek on the device (Table 3: 20 ms).
    pub seek_ms: f64,
    /// Rotational latency per transfer in milliseconds (Table 3: 8 ms).
    pub latency_ms: f64,
    /// Transfer time per kilobyte in milliseconds (Table 3: 0.5 ms).
    pub per_kb_ms: f64,
    /// CPU cost per transfer in milliseconds (Table 3: 2 ms).
    pub cpu_per_transfer_ms: f64,
}

impl IoCostParams {
    /// The exact parameter values of the paper's Table 3.
    pub fn paper() -> Self {
        IoCostParams {
            seek_ms: 20.0,
            latency_ms: 8.0,
            per_kb_ms: 0.5,
            cpu_per_transfer_ms: 2.0,
        }
    }

    /// I/O cost in milliseconds for the given statistics, computed exactly
    /// as the paper computed experimental I/O cost from file-system
    /// statistics.
    pub fn cost_ms(&self, stats: &IoStats) -> f64 {
        stats.seeks as f64 * self.seek_ms
            + stats.transfers() as f64 * (self.latency_ms + self.cpu_per_transfer_ms)
            + (stats.bytes as f64 / 1024.0) * self.per_kb_ms
    }
}

impl Default for IoCostParams {
    fn default() -> Self {
        IoCostParams::paper()
    }
}

/// A memory-backed simulated disk with fixed-size pages.
///
/// The page size is the transfer unit: the paper used 8 KB transfers,
/// "except for sort runs where it was 1 KB to allow high fan-in" — hence a
/// `StorageManager` typically holds one 8 KB-page disk for base and
/// temporary data and one 1 KB-page disk for sort runs.
#[derive(Debug)]
pub struct SimDisk {
    page_size: usize,
    pages: Vec<Box<[u8]>>,
    free: Vec<u64>,
    stats: IoStats,
    /// Page number of the last transfer, used to detect sequential access.
    last_page: Option<u64>,
}

impl SimDisk {
    /// Creates an empty disk with the given page (transfer) size.
    pub fn new(page_size: usize) -> Self {
        assert!(page_size >= 64, "page size must be at least 64 bytes");
        SimDisk {
            page_size,
            pages: Vec::new(),
            free: Vec::new(),
            stats: IoStats::default(),
            last_page: None,
        }
    }

    /// The disk's page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of allocated pages (including freed-and-reusable ones).
    pub fn allocated_pages(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Allocates a new zeroed page and returns its page number.
    ///
    /// Allocation itself is free (no transfer); the page is charged when it
    /// is first written back from the buffer pool.
    pub fn allocate(&mut self) -> u64 {
        if let Some(p) = self.free.pop() {
            self.pages[p as usize].fill(0);
            return p;
        }
        let p = self.pages.len() as u64;
        self.pages
            .push(vec![0u8; self.page_size].into_boxed_slice());
        p
    }

    /// Allocates `n` physically contiguous pages and returns the first page
    /// number. Extent-based files use this so sequential scans do not seek.
    ///
    /// Prefers a contiguous run from the free list (so dropped temporary
    /// files are recycled instead of growing the disk), falling back to
    /// extending the disk.
    pub fn allocate_extent(&mut self, n: u64) -> u64 {
        if n > 0 && self.free.len() as u64 >= n {
            self.free.sort_unstable();
            let mut run_start = 0usize;
            for i in 1..=self.free.len() {
                let contiguous = i < self.free.len() && self.free[i] == self.free[i - 1] + 1;
                if !contiguous {
                    if (i - run_start) as u64 >= n {
                        let first = self.free[run_start];
                        let taken: Vec<u64> =
                            self.free.drain(run_start..run_start + n as usize).collect();
                        for p in taken {
                            self.pages[p as usize].fill(0);
                        }
                        return first;
                    }
                    run_start = i;
                }
            }
        }
        let first = self.pages.len() as u64;
        for _ in 0..n {
            self.pages
                .push(vec![0u8; self.page_size].into_boxed_slice());
        }
        first
    }

    /// Returns a page to the free list. Temporary files release their pages
    /// when deleted.
    pub fn release(&mut self, page: u64) {
        debug_assert!((page as usize) < self.pages.len());
        self.free.push(page);
    }

    fn check(&self, page: u64) -> Result<()> {
        if (page as usize) < self.pages.len() {
            Ok(())
        } else {
            Err(StorageError::PageOutOfRange {
                page,
                allocated: self.pages.len() as u64,
            })
        }
    }

    fn account(&mut self, page: u64) {
        // A transfer of the page after the previous one is sequential and
        // needs no seek; everything else pays a physical seek.
        let sequential =
            self.last_page == Some(page.wrapping_sub(1)) || self.last_page == Some(page);
        if !sequential {
            self.stats.seeks += 1;
        }
        self.stats.bytes += self.page_size as u64;
        self.last_page = Some(page);
    }

    /// Reads a page into `buf` (which must be `page_size` long), recording
    /// one transfer.
    pub fn read(&mut self, page: u64, buf: &mut [u8]) -> Result<()> {
        self.check(page)?;
        debug_assert_eq!(buf.len(), self.page_size);
        self.account(page);
        self.stats.reads += 1;
        buf.copy_from_slice(&self.pages[page as usize]);
        Ok(())
    }

    /// Writes `buf` to a page, recording one transfer.
    pub fn write(&mut self, page: u64, buf: &[u8]) -> Result<()> {
        self.check(page)?;
        debug_assert_eq!(buf.len(), self.page_size);
        self.account(page);
        self.stats.writes += 1;
        self.pages[page as usize].copy_from_slice(buf);
        Ok(())
    }

    /// The statistics collected so far.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Resets the statistics (not the data).
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
        self.last_page = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_read_write_roundtrip() {
        let mut d = SimDisk::new(128);
        let p = d.allocate();
        let data = vec![7u8; 128];
        d.write(p, &data).unwrap();
        let mut out = vec![0u8; 128];
        d.read(p, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn out_of_range_page_is_an_error() {
        let mut d = SimDisk::new(128);
        let mut buf = vec![0u8; 128];
        assert!(matches!(
            d.read(0, &mut buf),
            Err(StorageError::PageOutOfRange {
                page: 0,
                allocated: 0
            })
        ));
    }

    #[test]
    fn sequential_transfers_do_not_seek() {
        let mut d = SimDisk::new(128);
        let first = d.allocate_extent(4);
        let buf = vec![0u8; 128];
        for i in 0..4 {
            d.write(first + i, &buf).unwrap();
        }
        let s = d.stats();
        assert_eq!(s.writes, 4);
        // First transfer seeks; the remaining three are sequential.
        assert_eq!(s.seeks, 1);
        assert_eq!(s.bytes, 4 * 128);
    }

    #[test]
    fn random_transfers_seek_every_time() {
        let mut d = SimDisk::new(128);
        d.allocate_extent(10);
        let buf = vec![0u8; 128];
        for p in [0u64, 5, 2, 9] {
            d.write(p, &buf).unwrap();
        }
        assert_eq!(d.stats().seeks, 4);
    }

    #[test]
    fn rereading_same_page_does_not_seek() {
        let mut d = SimDisk::new(128);
        let p = d.allocate();
        let mut buf = vec![0u8; 128];
        d.read(p, &mut buf).unwrap();
        d.read(p, &mut buf).unwrap();
        assert_eq!(d.stats().seeks, 1);
    }

    #[test]
    fn released_pages_are_reused_zeroed() {
        let mut d = SimDisk::new(128);
        let p = d.allocate();
        d.write(p, &[9u8; 128]).unwrap();
        d.release(p);
        let q = d.allocate();
        assert_eq!(p, q);
        let mut buf = vec![1u8; 128];
        d.read(q, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn paper_cost_model_prices_a_transfer() {
        // One 8 KB random read: 20 (seek) + 8 (latency) + 2 (cpu) + 4 (8 KB
        // at 0.5 ms/KB) = 34 ms.
        let params = IoCostParams::paper();
        let stats = IoStats {
            reads: 1,
            writes: 0,
            seeks: 1,
            bytes: 8192,
        };
        assert!((params.cost_ms(&stats) - 34.0).abs() < 1e-9);
    }

    #[test]
    fn sequential_8kb_transfer_costs_14ms() {
        // Without the seek: 8 + 2 + 4 = 14 ms, close to the analytical
        // model's 15 ms SIO unit for an 8 KB page.
        let params = IoCostParams::paper();
        let stats = IoStats {
            reads: 1,
            writes: 0,
            seeks: 0,
            bytes: 8192,
        };
        assert!((params.cost_ms(&stats) - 14.0).abs() < 1e-9);
    }

    #[test]
    fn stats_merge_and_since() {
        let a = IoStats {
            reads: 1,
            writes: 2,
            seeks: 3,
            bytes: 4,
        };
        let b = IoStats {
            reads: 10,
            writes: 20,
            seeks: 30,
            bytes: 40,
        };
        assert_eq!(
            b.since(&a),
            IoStats {
                reads: 9,
                writes: 18,
                seeks: 27,
                bytes: 36
            }
        );
        assert_eq!(a.merge(&b).transfers(), 33);
    }

    #[test]
    fn reset_stats_clears_counts_and_position() {
        let mut d = SimDisk::new(128);
        let p = d.allocate();
        let mut buf = vec![0u8; 128];
        d.read(p, &mut buf).unwrap();
        d.reset_stats();
        assert_eq!(d.stats(), IoStats::default());
        // After reset the next access pays a seek again.
        d.read(p, &mut buf).unwrap();
        assert_eq!(d.stats().seeks, 1);
    }
}
