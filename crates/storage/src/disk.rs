//! The simulated disk and the paper's experimental I/O cost model.
//!
//! The paper's file system "simulates a disk using a UNIX file or main
//! memory"; this implementation uses main memory. What matters for the
//! reproduction is not where the bytes live but the *statistics*: the paper
//! computed I/O cost from file-system statistics using the Table 3
//! parameters (20 ms per physical seek, 8 ms rotational latency per
//! transfer, 0.5 ms per KB transferred, 2 ms CPU per transfer). The disk
//! therefore records every transfer, distinguishing sequential transfers
//! (next page in the direction of travel) from transfers requiring a seek.

use crate::error::StorageError;
use crate::fault::{FaultPlan, FaultStats, ReadFault, WriteFault};
use crate::Result;

/// FNV-1a 64-bit hash of a page's bytes — the per-page checksum.
///
/// Not cryptographic: the goal is detecting torn writes and bit rot in
/// the simulation, where FNV's single multiply-xor per byte keeps the
/// fault-free overhead negligible.
pub(crate) fn page_checksum(buf: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in buf {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Identifies one simulated disk within a [`crate::StorageManager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DiskId(pub usize);

/// Identifies one page: a disk and a page number on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId {
    /// The disk holding the page.
    pub disk: DiskId,
    /// Zero-based page number on that disk.
    pub page: u64,
}

impl PageId {
    /// Creates a page id.
    pub fn new(disk: DiskId, page: u64) -> Self {
        PageId { disk, page }
    }
}

/// Statistics collected by a simulated disk.
///
/// These are the raw counts the paper's Table 3 prices: the run-time
/// reported for an experiment is measured CPU time plus the I/O cost
/// computed from these statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Page reads.
    pub reads: u64,
    /// Page writes.
    pub writes: u64,
    /// Transfers that required a physical seek (non-sequential access).
    pub seeks: u64,
    /// Total bytes transferred in either direction.
    pub bytes: u64,
}

impl IoStats {
    /// Total transfers (reads + writes).
    pub fn transfers(&self) -> u64 {
        self.reads + self.writes
    }

    /// Component-wise sum.
    pub fn merge(&self, other: &IoStats) -> IoStats {
        IoStats {
            reads: self.reads + other.reads,
            writes: self.writes + other.writes,
            seeks: self.seeks + other.seeks,
            bytes: self.bytes + other.bytes,
        }
    }

    /// Component-wise difference `self - earlier`, saturating at zero.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
            seeks: self.seeks.saturating_sub(earlier.seeks),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }
}

/// The experimental I/O cost parameters of the paper's Table 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoCostParams {
    /// Milliseconds per physical seek on the device (Table 3: 20 ms).
    pub seek_ms: f64,
    /// Rotational latency per transfer in milliseconds (Table 3: 8 ms).
    pub latency_ms: f64,
    /// Transfer time per kilobyte in milliseconds (Table 3: 0.5 ms).
    pub per_kb_ms: f64,
    /// CPU cost per transfer in milliseconds (Table 3: 2 ms).
    pub cpu_per_transfer_ms: f64,
}

impl IoCostParams {
    /// The exact parameter values of the paper's Table 3.
    pub fn paper() -> Self {
        IoCostParams {
            seek_ms: 20.0,
            latency_ms: 8.0,
            per_kb_ms: 0.5,
            cpu_per_transfer_ms: 2.0,
        }
    }

    /// I/O cost in milliseconds for the given statistics, computed exactly
    /// as the paper computed experimental I/O cost from file-system
    /// statistics.
    pub fn cost_ms(&self, stats: &IoStats) -> f64 {
        stats.seeks as f64 * self.seek_ms
            + stats.transfers() as f64 * (self.latency_ms + self.cpu_per_transfer_ms)
            + (stats.bytes as f64 / 1024.0) * self.per_kb_ms
    }
}

impl Default for IoCostParams {
    fn default() -> Self {
        IoCostParams::paper()
    }
}

/// A memory-backed simulated disk with fixed-size pages.
///
/// The page size is the transfer unit: the paper used 8 KB transfers,
/// "except for sort runs where it was 1 KB to allow high fan-in" — hence a
/// `StorageManager` typically holds one 8 KB-page disk for base and
/// temporary data and one 1 KB-page disk for sort runs.
#[derive(Debug)]
pub struct SimDisk {
    page_size: usize,
    pages: Vec<Box<[u8]>>,
    free: Vec<u64>,
    stats: IoStats,
    /// Page number of the last transfer, used to detect sequential access.
    last_page: Option<u64>,
    /// Checksum of each page as recorded at write time (out of band, like
    /// a controller's DIF bytes; the page payload itself is unchanged).
    checksums: Vec<u64>,
    /// Checksum of an all-zero page, precomputed once per disk.
    zero_checksum: u64,
    /// Whether reads verify the stored checksum.
    verify_checksums: bool,
    /// Installed fault plan, if any.
    faults: Option<FaultPlan>,
}

impl SimDisk {
    /// Creates an empty disk with the given page (transfer) size.
    pub fn new(page_size: usize) -> Self {
        assert!(page_size >= 64, "page size must be at least 64 bytes");
        SimDisk {
            page_size,
            pages: Vec::new(),
            free: Vec::new(),
            stats: IoStats::default(),
            last_page: None,
            checksums: Vec::new(),
            zero_checksum: page_checksum(&vec![0u8; page_size]),
            verify_checksums: true,
            faults: None,
        }
    }

    /// Installs a fault plan; subsequent transfers consult it. Replaces
    /// any previous plan (and its statistics).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// Removes the fault plan; the disk becomes reliable again.
    pub fn clear_fault_plan(&mut self) {
        self.faults = None;
    }

    /// Statistics of the installed fault plan (zeroes when none).
    pub fn fault_stats(&self) -> FaultStats {
        self.faults
            .as_ref()
            .map(FaultPlan::stats)
            .unwrap_or_default()
    }

    /// Enables or disables checksum verification on reads. Writes always
    /// record checksums; only the verify step is toggled (the knob the
    /// robustness benchmark uses to measure checksum overhead).
    pub fn set_checksums_enabled(&mut self, enabled: bool) {
        self.verify_checksums = enabled;
    }

    /// Corrupts the stored bytes of `page` without updating its checksum,
    /// simulating silent bit rot for tests.
    pub fn corrupt_page(&mut self, page: u64) -> Result<()> {
        self.check(page)?;
        self.pages[page as usize][0] ^= 0xFF;
        Ok(())
    }

    /// The disk's page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of allocated pages (including freed-and-reusable ones).
    pub fn allocated_pages(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Allocates a new zeroed page and returns its page number.
    ///
    /// Allocation itself is free (no transfer); the page is charged when it
    /// is first written back from the buffer pool.
    pub fn allocate(&mut self) -> u64 {
        if let Some(p) = self.free.pop() {
            self.pages[p as usize].fill(0);
            self.checksums[p as usize] = self.zero_checksum;
            return p;
        }
        let p = self.pages.len() as u64;
        self.pages
            .push(vec![0u8; self.page_size].into_boxed_slice());
        self.checksums.push(self.zero_checksum);
        p
    }

    /// Allocates `n` physically contiguous pages and returns the first page
    /// number. Extent-based files use this so sequential scans do not seek.
    ///
    /// Prefers a contiguous run from the free list (so dropped temporary
    /// files are recycled instead of growing the disk), falling back to
    /// extending the disk.
    pub fn allocate_extent(&mut self, n: u64) -> u64 {
        if n > 0 && self.free.len() as u64 >= n {
            self.free.sort_unstable();
            let mut run_start = 0usize;
            for i in 1..=self.free.len() {
                let contiguous = i < self.free.len() && self.free[i] == self.free[i - 1] + 1;
                if !contiguous {
                    if (i - run_start) as u64 >= n {
                        let first = self.free[run_start];
                        let taken: Vec<u64> =
                            self.free.drain(run_start..run_start + n as usize).collect();
                        for p in taken {
                            self.pages[p as usize].fill(0);
                            self.checksums[p as usize] = self.zero_checksum;
                        }
                        return first;
                    }
                    run_start = i;
                }
            }
        }
        let first = self.pages.len() as u64;
        for _ in 0..n {
            self.pages
                .push(vec![0u8; self.page_size].into_boxed_slice());
            self.checksums.push(self.zero_checksum);
        }
        first
    }

    /// Returns a page to the free list. Temporary files release their pages
    /// when deleted.
    pub fn release(&mut self, page: u64) {
        debug_assert!((page as usize) < self.pages.len());
        self.free.push(page);
    }

    fn check(&self, page: u64) -> Result<()> {
        if (page as usize) < self.pages.len() {
            Ok(())
        } else {
            Err(StorageError::PageOutOfRange {
                page,
                allocated: self.pages.len() as u64,
            })
        }
    }

    fn account(&mut self, page: u64) {
        // A transfer of the page after the previous one is sequential and
        // needs no seek; everything else pays a physical seek.
        let sequential =
            self.last_page == Some(page.wrapping_sub(1)) || self.last_page == Some(page);
        if !sequential {
            self.stats.seeks += 1;
        }
        self.stats.bytes += self.page_size as u64;
        self.last_page = Some(page);
    }

    /// Reads a page into `buf` (which must be `page_size` long), recording
    /// one transfer.
    ///
    /// Consults the fault plan first — a failed transfer is not charged to
    /// the I/O statistics — and verifies the page checksum after the copy,
    /// so torn writes and bit rot surface as
    /// [`StorageError::ChecksumMismatch`] instead of silently wrong data.
    pub fn read(&mut self, page: u64, buf: &mut [u8]) -> Result<()> {
        self.check(page)?;
        debug_assert_eq!(buf.len(), self.page_size);
        if let Some(plan) = &mut self.faults {
            match plan.on_read(page) {
                ReadFault::None => {}
                ReadFault::Transient => return Err(StorageError::Transient { op: "read", page }),
                ReadFault::Permanent => return Err(StorageError::Permanent { op: "read", page }),
            }
        }
        self.account(page);
        self.stats.reads += 1;
        buf.copy_from_slice(&self.pages[page as usize]);
        if self.verify_checksums {
            let expected = self.checksums[page as usize];
            let actual = page_checksum(buf);
            if actual != expected {
                if let Some(plan) = &mut self.faults {
                    plan.note_checksum_failure();
                }
                return Err(StorageError::ChecksumMismatch {
                    page,
                    expected,
                    actual,
                });
            }
        }
        Ok(())
    }

    /// Writes `buf` to a page, recording one transfer and the page's new
    /// checksum.
    ///
    /// A transiently failed write leaves the page untouched and uncharged.
    /// A *torn* write reports success but persists only the first half of
    /// the payload while recording the checksum of the full payload — the
    /// damage is silent here and detected on the next [`SimDisk::read`].
    pub fn write(&mut self, page: u64, buf: &[u8]) -> Result<()> {
        self.check(page)?;
        debug_assert_eq!(buf.len(), self.page_size);
        let mut torn = false;
        if let Some(plan) = &mut self.faults {
            match plan.on_write(page) {
                WriteFault::None => {}
                WriteFault::Transient => return Err(StorageError::Transient { op: "write", page }),
                WriteFault::Permanent => return Err(StorageError::Permanent { op: "write", page }),
                WriteFault::Torn => torn = true,
            }
        }
        self.account(page);
        self.stats.writes += 1;
        if torn {
            let half = self.page_size / 2;
            self.pages[page as usize][..half].copy_from_slice(&buf[..half]);
        } else {
            self.pages[page as usize].copy_from_slice(buf);
        }
        self.checksums[page as usize] = page_checksum(buf);
        Ok(())
    }

    /// The statistics collected so far.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Resets the statistics (not the data).
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
        self.last_page = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_read_write_roundtrip() {
        let mut d = SimDisk::new(128);
        let p = d.allocate();
        let data = vec![7u8; 128];
        d.write(p, &data).unwrap();
        let mut out = vec![0u8; 128];
        d.read(p, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn out_of_range_page_is_an_error() {
        let mut d = SimDisk::new(128);
        let mut buf = vec![0u8; 128];
        assert!(matches!(
            d.read(0, &mut buf),
            Err(StorageError::PageOutOfRange {
                page: 0,
                allocated: 0
            })
        ));
    }

    #[test]
    fn sequential_transfers_do_not_seek() {
        let mut d = SimDisk::new(128);
        let first = d.allocate_extent(4);
        let buf = vec![0u8; 128];
        for i in 0..4 {
            d.write(first + i, &buf).unwrap();
        }
        let s = d.stats();
        assert_eq!(s.writes, 4);
        // First transfer seeks; the remaining three are sequential.
        assert_eq!(s.seeks, 1);
        assert_eq!(s.bytes, 4 * 128);
    }

    #[test]
    fn random_transfers_seek_every_time() {
        let mut d = SimDisk::new(128);
        d.allocate_extent(10);
        let buf = vec![0u8; 128];
        for p in [0u64, 5, 2, 9] {
            d.write(p, &buf).unwrap();
        }
        assert_eq!(d.stats().seeks, 4);
    }

    #[test]
    fn rereading_same_page_does_not_seek() {
        let mut d = SimDisk::new(128);
        let p = d.allocate();
        let mut buf = vec![0u8; 128];
        d.read(p, &mut buf).unwrap();
        d.read(p, &mut buf).unwrap();
        assert_eq!(d.stats().seeks, 1);
    }

    #[test]
    fn released_pages_are_reused_zeroed() {
        let mut d = SimDisk::new(128);
        let p = d.allocate();
        d.write(p, &[9u8; 128]).unwrap();
        d.release(p);
        let q = d.allocate();
        assert_eq!(p, q);
        let mut buf = vec![1u8; 128];
        d.read(q, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn paper_cost_model_prices_a_transfer() {
        // One 8 KB random read: 20 (seek) + 8 (latency) + 2 (cpu) + 4 (8 KB
        // at 0.5 ms/KB) = 34 ms.
        let params = IoCostParams::paper();
        let stats = IoStats {
            reads: 1,
            writes: 0,
            seeks: 1,
            bytes: 8192,
        };
        assert!((params.cost_ms(&stats) - 34.0).abs() < 1e-9);
    }

    #[test]
    fn sequential_8kb_transfer_costs_14ms() {
        // Without the seek: 8 + 2 + 4 = 14 ms, close to the analytical
        // model's 15 ms SIO unit for an 8 KB page.
        let params = IoCostParams::paper();
        let stats = IoStats {
            reads: 1,
            writes: 0,
            seeks: 0,
            bytes: 8192,
        };
        assert!((params.cost_ms(&stats) - 14.0).abs() < 1e-9);
    }

    #[test]
    fn stats_merge_and_since() {
        let a = IoStats {
            reads: 1,
            writes: 2,
            seeks: 3,
            bytes: 4,
        };
        let b = IoStats {
            reads: 10,
            writes: 20,
            seeks: 30,
            bytes: 40,
        };
        assert_eq!(
            b.since(&a),
            IoStats {
                reads: 9,
                writes: 18,
                seeks: 27,
                bytes: 36
            }
        );
        assert_eq!(a.merge(&b).transfers(), 33);
    }

    #[test]
    fn transient_read_fault_is_uncharged_and_retry_succeeds() {
        let mut d = SimDisk::new(128);
        let p = d.allocate();
        d.write(p, &[5u8; 128]).unwrap();
        d.set_fault_plan(FaultPlan::seeded(1).with_read_failure_at(0));
        let mut buf = vec![0u8; 128];
        assert_eq!(
            d.read(p, &mut buf),
            Err(StorageError::Transient {
                op: "read",
                page: p
            })
        );
        assert_eq!(d.stats().reads, 0, "failed transfer not charged");
        d.read(p, &mut buf).unwrap();
        assert_eq!(buf, vec![5u8; 128]);
        assert_eq!(d.fault_stats().transient_reads, 1);
    }

    #[test]
    fn transient_write_fault_leaves_page_untouched() {
        let mut d = SimDisk::new(128);
        let p = d.allocate();
        d.write(p, &[1u8; 128]).unwrap();
        d.set_fault_plan(FaultPlan::seeded(1).with_write_failure_at(0));
        assert_eq!(
            d.write(p, &[2u8; 128]),
            Err(StorageError::Transient {
                op: "write",
                page: p
            })
        );
        d.clear_fault_plan();
        let mut buf = vec![0u8; 128];
        d.read(p, &mut buf).unwrap();
        assert_eq!(buf, vec![1u8; 128], "failed write must not tear the page");
    }

    #[test]
    fn bad_page_fails_permanently_in_both_directions() {
        let mut d = SimDisk::new(128);
        let p = d.allocate();
        d.set_fault_plan(FaultPlan::seeded(0).with_bad_page(p));
        let mut buf = vec![0u8; 128];
        assert_eq!(
            d.read(p, &mut buf),
            Err(StorageError::Permanent {
                op: "read",
                page: p
            })
        );
        assert_eq!(
            d.write(p, &buf),
            Err(StorageError::Permanent {
                op: "write",
                page: p
            })
        );
        assert_eq!(d.fault_stats().permanent_denials, 2);
    }

    #[test]
    fn torn_write_is_silent_until_read_detects_it() {
        let mut d = SimDisk::new(128);
        let p = d.allocate();
        d.set_fault_plan(FaultPlan::seeded(3).with_torn_write_rate(1.0));
        // The torn write itself reports success.
        d.write(p, &[9u8; 128]).unwrap();
        let mut buf = vec![0u8; 128];
        match d.read(p, &mut buf) {
            Err(StorageError::ChecksumMismatch {
                page,
                expected,
                actual,
            }) => {
                assert_eq!(page, p);
                assert_ne!(expected, actual);
            }
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
        let fs = d.fault_stats();
        assert_eq!(fs.torn_writes, 1);
        assert_eq!(fs.checksum_failures, 1);
    }

    #[test]
    fn silent_corruption_is_detected_only_with_checksums_on() {
        let mut d = SimDisk::new(128);
        let p = d.allocate();
        d.write(p, &[4u8; 128]).unwrap();
        d.corrupt_page(p).unwrap();
        let mut buf = vec![0u8; 128];
        assert!(matches!(
            d.read(p, &mut buf),
            Err(StorageError::ChecksumMismatch { .. })
        ));
        d.set_checksums_enabled(false);
        d.read(p, &mut buf).unwrap();
        assert_eq!(buf[0], 4u8 ^ 0xFF, "without checksums the rot is served");
    }

    #[test]
    fn reused_pages_get_fresh_checksums() {
        let mut d = SimDisk::new(128);
        let p = d.allocate();
        d.write(p, &[8u8; 128]).unwrap();
        d.release(p);
        let q = d.allocate();
        assert_eq!(p, q);
        let mut buf = vec![1u8; 128];
        d.read(q, &mut buf).unwrap(); // zeroed page verifies cleanly
        let first = d.allocate_extent(2);
        let mut buf2 = vec![2u8; 128];
        d.read(first, &mut buf2).unwrap();
        d.read(first + 1, &mut buf2).unwrap();
    }

    #[test]
    fn reset_stats_clears_counts_and_position() {
        let mut d = SimDisk::new(128);
        let p = d.allocate();
        let mut buf = vec![0u8; 128];
        d.read(p, &mut buf).unwrap();
        d.reset_stats();
        assert_eq!(d.stats(), IoStats::default());
        // After reset the next access pays a seek again.
        d.read(p, &mut buf).unwrap();
        assert_eq!(d.stats().seeks, 1);
    }
}
