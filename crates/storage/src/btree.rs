//! B+-trees over the buffered page abstraction.
//!
//! One of the "main services" of the paper's record-oriented file system
//! ("extent-based files, records, B+-trees, scans, ..."). The trees map
//! byte-string keys to [`Rid`]s; duplicate keys are permitted (the divisor
//! of a division frequently arrives from a non-key projection). Index
//! (semi-)joins in the execution engine use the trees, and examples use
//! them to fetch dividend tuples by key.
//!
//! Deletion is *lazy* (entries are removed, but underfull nodes are not
//! merged), the strategy of several production B-tree implementations;
//! structural invariants — sorted keys, balanced height, separator
//! consistency — are maintained by inserts and checked by `validate`.

use crate::buffer::Reuse;
use crate::disk::{DiskId, PageId};
use crate::error::StorageError;
use crate::file::Rid;
use crate::manager::StorageManager;
use crate::Result;

const NO_LEAF: u64 = u64::MAX;

/// A B+-tree rooted on a page of one disk.
#[derive(Debug, Clone, Copy)]
pub struct BTree {
    disk: DiskId,
    root: u64,
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        next: u64,
        entries: Vec<(Vec<u8>, Rid)>,
    },
    Internal {
        /// `children.len() == separators.len() + 1`.
        separators: Vec<Vec<u8>>,
        children: Vec<u64>,
    },
}

impl Node {
    fn encoded_len(&self) -> usize {
        match self {
            Node::Leaf { entries, .. } => {
                11 + entries.iter().map(|(k, _)| 2 + k.len() + 12).sum::<usize>()
            }
            Node::Internal { separators, .. } => {
                11 + 8 + separators.iter().map(|k| 2 + k.len() + 8).sum::<usize>()
            }
        }
    }

    fn encode(&self, buf: &mut [u8]) {
        buf.fill(0);
        match self {
            Node::Leaf { next, entries } => {
                buf[0] = 1;
                buf[1..9].copy_from_slice(&next.to_le_bytes());
                buf[9..11].copy_from_slice(&(entries.len() as u16).to_le_bytes());
                let mut at = 11;
                for (k, rid) in entries {
                    buf[at..at + 2].copy_from_slice(&(k.len() as u16).to_le_bytes());
                    at += 2;
                    buf[at..at + k.len()].copy_from_slice(k);
                    at += k.len();
                    buf[at..at + 2].copy_from_slice(&(rid.page.disk.0 as u16).to_le_bytes());
                    buf[at + 2..at + 10].copy_from_slice(&rid.page.page.to_le_bytes());
                    buf[at + 10..at + 12].copy_from_slice(&rid.slot.to_le_bytes());
                    at += 12;
                }
            }
            Node::Internal {
                separators,
                children,
            } => {
                buf[0] = 0;
                buf[9..11].copy_from_slice(&(separators.len() as u16).to_le_bytes());
                buf[11..19].copy_from_slice(&children[0].to_le_bytes());
                let mut at = 19;
                for (k, &child) in separators.iter().zip(&children[1..]) {
                    buf[at..at + 2].copy_from_slice(&(k.len() as u16).to_le_bytes());
                    at += 2;
                    buf[at..at + k.len()].copy_from_slice(k);
                    at += k.len();
                    buf[at..at + 8].copy_from_slice(&child.to_le_bytes());
                    at += 8;
                }
            }
        }
    }

    fn decode(buf: &[u8]) -> Result<Node> {
        let corrupt = |m: &str| StorageError::CorruptPage(format!("btree node: {m}"));
        let count = u16::from_le_bytes([buf[9], buf[10]]) as usize;
        if buf[0] == 1 {
            let next = u64::from_le_bytes(buf[1..9].try_into().expect("8 bytes"));
            let mut at = 11;
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                let klen = u16::from_le_bytes([buf[at], buf[at + 1]]) as usize;
                at += 2;
                if at + klen + 12 > buf.len() {
                    return Err(corrupt("leaf entry overruns page"));
                }
                let key = buf[at..at + klen].to_vec();
                at += klen;
                let disk = u16::from_le_bytes([buf[at], buf[at + 1]]) as usize;
                let page = u64::from_le_bytes(buf[at + 2..at + 10].try_into().expect("8 bytes"));
                let slot = u16::from_le_bytes([buf[at + 10], buf[at + 11]]);
                at += 12;
                entries.push((
                    key,
                    Rid {
                        page: PageId::new(DiskId(disk), page),
                        slot,
                    },
                ));
            }
            Ok(Node::Leaf { next, entries })
        } else {
            let mut children = Vec::with_capacity(count + 1);
            children.push(u64::from_le_bytes(buf[11..19].try_into().expect("8 bytes")));
            let mut separators = Vec::with_capacity(count);
            let mut at = 19;
            for _ in 0..count {
                let klen = u16::from_le_bytes([buf[at], buf[at + 1]]) as usize;
                at += 2;
                if at + klen + 8 > buf.len() {
                    return Err(corrupt("internal entry overruns page"));
                }
                separators.push(buf[at..at + klen].to_vec());
                at += klen;
                children.push(u64::from_le_bytes(
                    buf[at..at + 8].try_into().expect("8 bytes"),
                ));
                at += 8;
            }
            Ok(Node::Internal {
                separators,
                children,
            })
        }
    }
}

impl BTree {
    /// Creates an empty tree on `disk`.
    pub fn create(sm: &mut StorageManager, disk: DiskId) -> Result<BTree> {
        let root = Node::Leaf {
            next: NO_LEAF,
            entries: Vec::new(),
        };
        let (pid, fid) = sm.new_page(disk)?;
        root.encode(sm.page_mut(fid)?);
        sm.unfix(fid, Reuse::Lru)?;
        Ok(BTree {
            disk,
            root: pid.page,
        })
    }

    fn load(&self, sm: &mut StorageManager, page: u64) -> Result<Node> {
        let fid = sm.fix(PageId::new(self.disk, page))?;
        let node = Node::decode(sm.page(fid)?);
        sm.unfix(fid, Reuse::Lru)?;
        node
    }

    fn store(&self, sm: &mut StorageManager, page: u64, node: &Node) -> Result<()> {
        debug_assert!(node.encoded_len() <= sm.page_size(self.disk));
        let fid = sm.fix(PageId::new(self.disk, page))?;
        node.encode(sm.page_mut(fid)?);
        sm.unfix(fid, Reuse::Lru)
    }

    fn alloc(&self, sm: &mut StorageManager, node: &Node) -> Result<u64> {
        let (pid, fid) = sm.new_page(self.disk)?;
        node.encode(sm.page_mut(fid)?);
        sm.unfix(fid, Reuse::Lru)?;
        Ok(pid.page)
    }

    /// Inserts `(key, rid)`. Duplicate keys are allowed.
    pub fn insert(&mut self, sm: &mut StorageManager, key: &[u8], rid: Rid) -> Result<()> {
        let max = sm.page_size(self.disk);
        if 11 + 2 + key.len() + 12 > max / 2 {
            // A key must be small enough that a split always succeeds.
            return Err(StorageError::RecordTooLarge {
                record: key.len(),
                max: max / 2 - 25,
            });
        }
        if let Some((sep, right)) = self.insert_rec(sm, self.root, key, rid)? {
            let new_root = Node::Internal {
                separators: vec![sep],
                children: vec![self.root, right],
            };
            self.root = self.alloc(sm, &new_root)?;
        }
        Ok(())
    }

    fn insert_rec(
        &self,
        sm: &mut StorageManager,
        page: u64,
        key: &[u8],
        rid: Rid,
    ) -> Result<Option<(Vec<u8>, u64)>> {
        let max = sm.page_size(self.disk);
        match self.load(sm, page)? {
            Node::Leaf { next, mut entries } => {
                let at = entries.partition_point(|(k, r)| (k.as_slice(), r) <= (key, &rid));
                entries.insert(at, (key.to_vec(), rid));
                let node = Node::Leaf { next, entries };
                if node.encoded_len() <= max {
                    self.store(sm, page, &node)?;
                    return Ok(None);
                }
                // Split: upper half moves to a new right sibling.
                let Node::Leaf { next, mut entries } = node else {
                    unreachable!()
                };
                let mid = entries.len() / 2;
                let right_entries = entries.split_off(mid);
                let sep = right_entries[0].0.clone();
                let right = self.alloc(
                    sm,
                    &Node::Leaf {
                        next,
                        entries: right_entries,
                    },
                )?;
                self.store(
                    sm,
                    page,
                    &Node::Leaf {
                        next: right,
                        entries,
                    },
                )?;
                Ok(Some((sep, right)))
            }
            Node::Internal {
                mut separators,
                mut children,
            } => {
                let idx = separators.partition_point(|s| s.as_slice() <= key);
                let split = self.insert_rec(sm, children[idx], key, rid)?;
                let Some((sep, right)) = split else {
                    return Ok(None);
                };
                separators.insert(idx, sep);
                children.insert(idx + 1, right);
                let node = Node::Internal {
                    separators,
                    children,
                };
                if node.encoded_len() <= max {
                    self.store(sm, page, &node)?;
                    return Ok(None);
                }
                let Node::Internal {
                    mut separators,
                    mut children,
                } = node
                else {
                    unreachable!()
                };
                let mid = separators.len() / 2;
                let promoted = separators[mid].clone();
                let right_seps = separators.split_off(mid + 1);
                separators.pop(); // the promoted separator moves up
                let right_children = children.split_off(mid + 1);
                let right = self.alloc(
                    sm,
                    &Node::Internal {
                        separators: right_seps,
                        children: right_children,
                    },
                )?;
                self.store(
                    sm,
                    page,
                    &Node::Internal {
                        separators,
                        children,
                    },
                )?;
                Ok(Some((promoted, right)))
            }
        }
    }

    fn leaf_for(&self, sm: &mut StorageManager, key: &[u8]) -> Result<u64> {
        let mut page = self.root;
        loop {
            match self.load(sm, page)? {
                Node::Leaf { .. } => return Ok(page),
                Node::Internal {
                    separators,
                    children,
                } => {
                    // Descend left of the first separator > key; duplicates
                    // of `key` can only live at or right of this child.
                    let idx = separators.partition_point(|s| s.as_slice() <= key);
                    // For duplicate-spanning lookups we must start at the
                    // leftmost child that can contain `key`.
                    let idx_lo = separators.partition_point(|s| s.as_slice() < key);
                    page = children[idx_lo.min(idx)];
                }
            }
        }
    }

    /// Returns the RIDs of all entries with exactly `key`.
    pub fn search(&self, sm: &mut StorageManager, key: &[u8]) -> Result<Vec<Rid>> {
        let mut out = Vec::new();
        let mut page = self.leaf_for(sm, key)?;
        loop {
            let Node::Leaf { next, entries } = self.load(sm, page)? else {
                return Err(StorageError::CorruptTree(
                    "leaf_for returned internal".into(),
                ));
            };
            let mut past_key = false;
            for (k, rid) in &entries {
                match k.as_slice().cmp(key) {
                    std::cmp::Ordering::Less => {}
                    std::cmp::Ordering::Equal => out.push(*rid),
                    std::cmp::Ordering::Greater => {
                        past_key = true;
                        break;
                    }
                }
            }
            if past_key || next == NO_LEAF {
                return Ok(out);
            }
            page = next;
        }
    }

    /// Returns all `(key, rid)` entries with `lo <= key < hi`, in key order.
    pub fn range(
        &self,
        sm: &mut StorageManager,
        lo: &[u8],
        hi: &[u8],
    ) -> Result<Vec<(Vec<u8>, Rid)>> {
        let mut out = Vec::new();
        if lo >= hi {
            return Ok(out);
        }
        let mut page = self.leaf_for(sm, lo)?;
        loop {
            let Node::Leaf { next, entries } = self.load(sm, page)? else {
                return Err(StorageError::CorruptTree(
                    "leaf_for returned internal".into(),
                ));
            };
            for (k, rid) in &entries {
                if k.as_slice() >= hi {
                    return Ok(out);
                }
                if k.as_slice() >= lo {
                    out.push((k.clone(), *rid));
                }
            }
            if next == NO_LEAF {
                return Ok(out);
            }
            page = next;
        }
    }

    /// Removes the entry `(key, rid)`. Returns whether it was present.
    pub fn delete(&mut self, sm: &mut StorageManager, key: &[u8], rid: Rid) -> Result<bool> {
        let mut page = self.leaf_for(sm, key)?;
        loop {
            let Node::Leaf { next, mut entries } = self.load(sm, page)? else {
                return Err(StorageError::CorruptTree(
                    "leaf_for returned internal".into(),
                ));
            };
            if let Some(pos) = entries
                .iter()
                .position(|(k, r)| k.as_slice() == key && *r == rid)
            {
                entries.remove(pos);
                self.store(sm, page, &Node::Leaf { next, entries })?;
                return Ok(true);
            }
            // Entry may be in a later leaf if duplicates span leaves.
            let continue_right =
                entries.last().is_none_or(|(k, _)| k.as_slice() <= key) && next != NO_LEAF;
            if !continue_right {
                return Ok(false);
            }
            page = next;
        }
    }

    /// Walks the whole tree checking structural invariants; returns the
    /// number of entries. Test and debugging aid.
    pub fn validate(&self, sm: &mut StorageManager) -> Result<u64> {
        fn walk(
            tree: &BTree,
            sm: &mut StorageManager,
            page: u64,
            lo: Option<&[u8]>,
            hi: Option<&[u8]>,
            depth: usize,
            leaf_depth: &mut Option<usize>,
        ) -> Result<u64> {
            let in_bounds = |k: &[u8]| lo.is_none_or(|l| k >= l) && hi.is_none_or(|h| k <= h);
            match tree.load(sm, page)? {
                Node::Leaf { entries, .. } => {
                    match leaf_depth {
                        Some(d) if *d != depth => {
                            return Err(StorageError::CorruptTree("unbalanced leaves".into()))
                        }
                        None => *leaf_depth = Some(depth),
                        _ => {}
                    }
                    if !entries.windows(2).all(|w| w[0] <= w[1]) {
                        return Err(StorageError::CorruptTree("unsorted leaf".into()));
                    }
                    if !entries.iter().all(|(k, _)| in_bounds(k)) {
                        return Err(StorageError::CorruptTree("leaf key out of bounds".into()));
                    }
                    Ok(entries.len() as u64)
                }
                Node::Internal {
                    separators,
                    children,
                } => {
                    if children.len() != separators.len() + 1 || children.is_empty() {
                        return Err(StorageError::CorruptTree("child/separator arity".into()));
                    }
                    if !separators.windows(2).all(|w| w[0] <= w[1]) {
                        return Err(StorageError::CorruptTree("unsorted separators".into()));
                    }
                    let mut total = 0;
                    for (i, &child) in children.iter().enumerate() {
                        let clo = if i == 0 {
                            lo
                        } else {
                            Some(separators[i - 1].as_slice())
                        };
                        let chi = if i == separators.len() {
                            hi
                        } else {
                            Some(separators[i].as_slice())
                        };
                        total += walk(tree, sm, child, clo, chi, depth + 1, leaf_depth)?;
                    }
                    Ok(total)
                }
            }
        }
        let mut leaf_depth = None;
        walk(self, sm, self.root, None, None, 0, &mut leaf_depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::StorageConfig;

    fn sm() -> StorageManager {
        StorageManager::new(StorageConfig {
            data_page_size: 256,
            run_page_size: 128,
            buffer_bytes: 1 << 20,
            work_memory_bytes: 1 << 20,
        })
    }

    fn rid(n: u64) -> Rid {
        Rid {
            page: PageId::new(DiskId(0), n),
            slot: (n % 7) as u16,
        }
    }

    fn key(n: u64) -> Vec<u8> {
        // Big-endian so byte order == numeric order.
        n.to_be_bytes().to_vec()
    }

    #[test]
    fn empty_tree_finds_nothing() {
        let mut s = sm();
        let t = BTree::create(&mut s, DiskId(0)).unwrap();
        assert!(t.search(&mut s, &key(1)).unwrap().is_empty());
        assert_eq!(t.validate(&mut s).unwrap(), 0);
    }

    #[test]
    fn insert_and_search_single_leaf() {
        let mut s = sm();
        let mut t = BTree::create(&mut s, DiskId(0)).unwrap();
        for n in [5u64, 1, 3] {
            t.insert(&mut s, &key(n), rid(n)).unwrap();
        }
        assert_eq!(t.search(&mut s, &key(3)).unwrap(), vec![rid(3)]);
        assert!(t.search(&mut s, &key(2)).unwrap().is_empty());
    }

    #[test]
    fn many_inserts_force_splits_and_stay_consistent() {
        let mut s = sm();
        let mut t = BTree::create(&mut s, DiskId(0)).unwrap();
        // 256-byte pages hold ~11 leaf entries: 1000 keys force a deep tree.
        let mut order: Vec<u64> = (0..1000).collect();
        // Deterministic shuffle (LCG) to mix insert order.
        let mut x = 12345u64;
        for i in (1..order.len()).rev() {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            order.swap(i, (x % (i as u64 + 1)) as usize);
        }
        for &n in &order {
            t.insert(&mut s, &key(n), rid(n)).unwrap();
        }
        assert_eq!(t.validate(&mut s).unwrap(), 1000);
        for n in (0..1000).step_by(97) {
            assert_eq!(t.search(&mut s, &key(n)).unwrap(), vec![rid(n)], "key {n}");
        }
    }

    #[test]
    fn duplicates_are_all_returned() {
        let mut s = sm();
        let mut t = BTree::create(&mut s, DiskId(0)).unwrap();
        for i in 0..50 {
            t.insert(&mut s, &key(7), rid(i)).unwrap();
            t.insert(&mut s, &key(9), rid(100 + i)).unwrap();
        }
        let hits = t.search(&mut s, &key(7)).unwrap();
        assert_eq!(hits.len(), 50);
        assert_eq!(t.validate(&mut s).unwrap(), 100);
    }

    #[test]
    fn range_scan_is_sorted_and_half_open() {
        let mut s = sm();
        let mut t = BTree::create(&mut s, DiskId(0)).unwrap();
        for n in 0..300u64 {
            t.insert(&mut s, &key(n * 2), rid(n)).unwrap(); // even keys only
        }
        let out = t.range(&mut s, &key(10), &key(21)).unwrap();
        let keys: Vec<u64> = out
            .iter()
            .map(|(k, _)| u64::from_be_bytes(k.as_slice().try_into().unwrap()))
            .collect();
        assert_eq!(keys, vec![10, 12, 14, 16, 18, 20]);
        assert!(t.range(&mut s, &key(21), &key(10)).unwrap().is_empty());
    }

    #[test]
    fn delete_removes_exactly_one_matching_entry() {
        let mut s = sm();
        let mut t = BTree::create(&mut s, DiskId(0)).unwrap();
        for i in 0..30 {
            t.insert(&mut s, &key(4), rid(i)).unwrap();
        }
        assert!(t.delete(&mut s, &key(4), rid(17)).unwrap());
        assert!(!t.delete(&mut s, &key(4), rid(17)).unwrap());
        let hits = t.search(&mut s, &key(4)).unwrap();
        assert_eq!(hits.len(), 29);
        assert!(!hits.contains(&rid(17)));
    }

    #[test]
    fn delete_missing_key_is_false() {
        let mut s = sm();
        let mut t = BTree::create(&mut s, DiskId(0)).unwrap();
        t.insert(&mut s, &key(1), rid(1)).unwrap();
        assert!(!t.delete(&mut s, &key(2), rid(2)).unwrap());
    }

    #[test]
    fn insert_delete_mixed_workload_validates() {
        let mut s = sm();
        let mut t = BTree::create(&mut s, DiskId(0)).unwrap();
        for n in 0..500u64 {
            t.insert(&mut s, &key(n), rid(n)).unwrap();
        }
        for n in (0..500u64).step_by(3) {
            assert!(t.delete(&mut s, &key(n), rid(n)).unwrap());
        }
        let expected = 500 - 500u64.div_ceil(3);
        assert_eq!(t.validate(&mut s).unwrap(), expected);
        assert!(t.search(&mut s, &key(3)).unwrap().is_empty());
        assert_eq!(t.search(&mut s, &key(4)).unwrap(), vec![rid(4)]);
    }

    #[test]
    fn oversized_key_is_rejected() {
        let mut s = sm();
        let mut t = BTree::create(&mut s, DiskId(0)).unwrap();
        assert!(matches!(
            t.insert(&mut s, &[0u8; 200], rid(0)),
            Err(StorageError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn variable_length_keys_sort_bytewise() {
        let mut s = sm();
        let mut t = BTree::create(&mut s, DiskId(0)).unwrap();
        for (i, k) in ["b", "a", "ab", "aa", "ba"].iter().enumerate() {
            t.insert(&mut s, k.as_bytes(), rid(i as u64)).unwrap();
        }
        let out = t.range(&mut s, b"a", b"bz").unwrap();
        let keys: Vec<&str> = out
            .iter()
            .map(|(k, _)| std::str::from_utf8(k).unwrap())
            .collect();
        assert_eq!(keys, vec!["a", "aa", "ab", "b", "ba"]);
    }
}
