//! # reldiv-storage — the record-oriented storage substrate
//!
//! Reimplementation of the storage system underneath the experiments in
//! Graefe's *"Relational Division: Four Algorithms and Their Performance"*.
//! The paper ran "on top of a record-oriented file system developed at the
//! Oregon Graduate Center using experiences from WiSS and GAMMA. It
//! simulates a disk using a UNIX file or main memory. Its main services are
//! extent-based files, records, B+-trees, scans, a fast buffer manager, and
//! a main memory manager."
//!
//! This crate provides the same services:
//!
//! * [`disk`] — a simulated disk with per-transfer statistics (seeks,
//!   sequential transfers, bytes) and the paper's Table 3 cost model,
//! * [`page`] — slotted pages holding variable-length records,
//! * [`buffer`] — a fix/unfix buffer manager with pin counts, an LRU
//!   replacement list, dynamic growth up to a byte budget, and hit/miss
//!   statistics,
//! * [`mod@file`] — extent-based record files addressed by record identifiers
//!   (RIDs), with sequential scans,
//! * [`btree`] — B+-trees mapping byte-string keys to RIDs,
//! * [`memory`] — a budgeted main-memory pool for hash tables, bit maps,
//!   and chain elements; exhaustion is the signal for hash-table overflow
//!   handling (Section 3.4 of the paper),
//! * [`manager`] — [`StorageManager`], the façade coordinating all of the
//!   above, plus the shared [`StorageRef`] handle used by query operators.
//!
//! The disk is backed by main memory (one of the two backings the paper
//! names); I/O *costs* are computed from the collected statistics exactly as
//! the paper computed them, so buffer-pool effects (e.g. "temporary file
//! pages remain in the buffer pool from run creation to merging") are
//! faithfully reflected in the reported costs.

#![deny(missing_docs)]

pub mod btree;
pub mod buffer;
pub mod disk;
pub mod error;
pub mod fault;
pub mod file;
pub mod manager;
pub mod memory;
pub mod page;

pub use buffer::{BufferStats, RetryPolicy, Reuse};
pub use disk::{DiskId, IoCostParams, IoStats, PageId};
pub use error::StorageError;
pub use fault::{FaultPlan, FaultStats};
pub use file::{FileId, Rid};
pub use manager::{StorageManager, StorageRef};
pub use memory::MemoryPool;

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, StorageError>;
