//! Slotted-page layout for variable-length records.
//!
//! Layout of a page of `N` bytes:
//!
//! ```text
//! +--------+-------------------------+---------------------+
//! | header | record payloads (grow →)| ← slot directory    |
//! +--------+-------------------------+---------------------+
//! ```
//!
//! * header: `slot_count: u16`, `free_ptr: u16` (offset of the first free
//!   payload byte), `record_count: u16` (live records).
//! * slot directory grows downward from the end of the page; each slot is
//!   `(offset: u16, len: u16)`. A slot with `offset == u16::MAX` is
//!   deleted/free.
//!
//! Deleting a record frees its slot; `compact` (invoked automatically by
//! `insert` when fragmentation blocks an otherwise-fitting insert) squeezes
//! payloads together. Slot numbers are stable across compaction, so RIDs
//! remain valid, which the record files and B+-trees rely on.

use crate::error::StorageError;
use crate::Result;

const HEADER: usize = 6;
const SLOT: usize = 4;
const DELETED: u16 = u16::MAX;

/// A view over one page's bytes providing the slotted-record operations.
///
/// `SlottedPage` does not own the bytes; the buffer manager does. All
/// methods take the raw page slice so the same code serves fixed frames.
pub struct SlottedPage;

impl SlottedPage {
    /// Initializes an empty slotted page in `buf`.
    pub fn init(buf: &mut [u8]) {
        buf[..HEADER].fill(0);
        write_u16(buf, 2, HEADER as u16); // free_ptr starts after header
    }

    /// Number of slots in the directory (live + deleted).
    pub fn slot_count(buf: &[u8]) -> u16 {
        read_u16(buf, 0)
    }

    /// Number of live records.
    pub fn record_count(buf: &[u8]) -> u16 {
        read_u16(buf, 4)
    }

    /// Maximum payload a record may have on a page of `page_size` bytes.
    pub fn max_record(page_size: usize) -> usize {
        page_size - HEADER - SLOT
    }

    /// Contiguous free space currently available for one more record
    /// (including its slot-directory entry).
    pub fn free_space(buf: &[u8]) -> usize {
        let free_ptr = read_u16(buf, 2) as usize;
        let dir_start = buf.len() - Self::slot_count(buf) as usize * SLOT;
        dir_start.saturating_sub(free_ptr).saturating_sub(SLOT)
    }

    /// Whether a record of `len` bytes fits (possibly after compaction).
    pub fn fits(buf: &[u8], len: usize) -> bool {
        // Reusable deleted slots don't need a new directory entry; one
        // exists exactly when the directory is larger than the live count.
        let has_free_slot = Self::slot_count(buf) > Self::record_count(buf);
        let slot_cost = if has_free_slot { 0 } else { SLOT };
        // Fast path: the contiguous free region suffices. This is the
        // bulk-append case, and it must not scan the directory — appends
        // would otherwise cost O(records-per-page) each.
        if Self::contiguous_free(buf) >= len + slot_cost {
            return true;
        }
        // Slow path: sum live payloads to see whether compaction would
        // reclaim enough fragmented space.
        let live: usize = Self::iter_slots(buf)
            .filter_map(|(_, s)| s.map(|(_, l)| l as usize))
            .sum();
        let dir = Self::slot_count(buf) as usize * SLOT;
        buf.len() - HEADER - dir - live >= len + slot_cost
    }

    /// Inserts a record, returning its slot number.
    pub fn insert(buf: &mut [u8], record: &[u8]) -> Result<u16> {
        if record.len() > Self::max_record(buf.len()) {
            return Err(StorageError::RecordTooLarge {
                record: record.len(),
                max: Self::max_record(buf.len()),
            });
        }
        if !Self::fits(buf, record.len()) {
            return Err(StorageError::CorruptPage("insert on full page".into()));
        }
        // Reuse a deleted slot if one exists, else grow the directory.
        // Compaction must happen BEFORE the directory grows: the new
        // directory entry's bytes may currently hold live payload, and
        // compaction must not read an uninitialized entry. The directory
        // is scanned only when the counts prove a deleted slot exists,
        // keeping pure appends O(1).
        let free_slot = if Self::slot_count(buf) > Self::record_count(buf) {
            Self::iter_slots(buf)
                .find(|(_, s)| s.is_none())
                .map(|(i, _)| i)
        } else {
            None
        };
        let needed = record.len() + if free_slot.is_none() { SLOT } else { 0 };
        if Self::contiguous_free(buf) < needed {
            Self::compact(buf);
        }
        debug_assert!(
            Self::contiguous_free(buf) >= needed,
            "compaction must free space"
        );
        let slot = match free_slot {
            Some(i) => i,
            None => {
                let n = Self::slot_count(buf);
                write_u16(buf, 0, n + 1);
                // Initialize the fresh directory entry (its bytes are in
                // the now-contiguous free area).
                Self::write_slot(buf, n, DELETED, 0);
                n
            }
        };
        let needed = record.len();
        let free_ptr = read_u16(buf, 2) as usize;
        buf[free_ptr..free_ptr + needed].copy_from_slice(record);
        write_u16(buf, 2, (free_ptr + needed) as u16);
        Self::write_slot(buf, slot, free_ptr as u16, needed as u16);
        write_u16(buf, 4, Self::record_count(buf) + 1);
        Ok(slot)
    }

    /// Returns the record bytes at `slot`.
    pub fn get(buf: &[u8], slot: u16) -> Option<&[u8]> {
        let (off, len) = Self::read_slot(buf, slot)?;
        if off == DELETED {
            return None;
        }
        Some(&buf[off as usize..off as usize + len as usize])
    }

    /// Deletes the record at `slot`. Returns whether a record was present.
    pub fn delete(buf: &mut [u8], slot: u16) -> bool {
        match Self::read_slot(buf, slot) {
            Some((off, _)) if off != DELETED => {
                Self::write_slot(buf, slot, DELETED, 0);
                write_u16(buf, 4, Self::record_count(buf) - 1);
                true
            }
            _ => false,
        }
    }

    /// Iterates `(slot, record)` pairs over live records.
    pub fn records(buf: &[u8]) -> impl Iterator<Item = (u16, &[u8])> {
        (0..Self::slot_count(buf)).filter_map(move |s| Self::get(buf, s).map(|r| (s, r)))
    }

    fn contiguous_free(buf: &[u8]) -> usize {
        let free_ptr = read_u16(buf, 2) as usize;
        let dir_start = buf.len() - Self::slot_count(buf) as usize * SLOT;
        dir_start.saturating_sub(free_ptr)
    }

    /// Squeezes live payloads to the front, preserving slot numbers.
    pub fn compact(buf: &mut [u8]) {
        let n = Self::slot_count(buf);
        let mut live: Vec<(u16, u16, u16)> = (0..n)
            .filter_map(|s| {
                let (off, len) = Self::read_slot(buf, s).expect("slot < count");
                (off != DELETED).then_some((s, off, len))
            })
            .collect();
        live.sort_by_key(|&(_, off, _)| off);
        let mut write_at = HEADER;
        for (slot, off, len) in live {
            let (off, len) = (off as usize, len as usize);
            if off != write_at {
                buf.copy_within(off..off + len, write_at);
                Self::write_slot(buf, slot, write_at as u16, len as u16);
            }
            write_at += len;
        }
        write_u16(buf, 2, write_at as u16);
    }

    fn iter_slots(buf: &[u8]) -> impl Iterator<Item = (u16, Option<(u16, u16)>)> + '_ {
        (0..Self::slot_count(buf)).map(move |s| {
            let entry = Self::read_slot(buf, s).filter(|(off, _)| *off != DELETED);
            (s, entry)
        })
    }

    fn slot_pos(buf: &[u8], slot: u16) -> usize {
        buf.len() - (slot as usize + 1) * SLOT
    }

    fn read_slot(buf: &[u8], slot: u16) -> Option<(u16, u16)> {
        if slot >= Self::slot_count(buf) {
            return None;
        }
        let p = Self::slot_pos(buf, slot);
        Some((read_u16(buf, p), read_u16(buf, p + 2)))
    }

    fn write_slot(buf: &mut [u8], slot: u16, off: u16, len: u16) {
        let p = Self::slot_pos(buf, slot);
        write_u16(buf, p, off);
        write_u16(buf, p + 2, len);
    }
}

fn read_u16(buf: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([buf[at], buf[at + 1]])
}

fn write_u16(buf: &mut [u8], at: usize, v: u16) {
    buf[at..at + 2].copy_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(n: usize) -> Vec<u8> {
        let mut buf = vec![0u8; n];
        SlottedPage::init(&mut buf);
        buf
    }

    #[test]
    fn insert_and_get() {
        let mut p = page(256);
        let s0 = SlottedPage::insert(&mut p, b"hello").unwrap();
        let s1 = SlottedPage::insert(&mut p, b"world!").unwrap();
        assert_eq!(SlottedPage::get(&p, s0), Some(&b"hello"[..]));
        assert_eq!(SlottedPage::get(&p, s1), Some(&b"world!"[..]));
        assert_eq!(SlottedPage::record_count(&p), 2);
    }

    #[test]
    fn get_missing_slot_is_none() {
        let p = page(256);
        assert_eq!(SlottedPage::get(&p, 0), None);
        assert_eq!(SlottedPage::get(&p, 99), None);
    }

    #[test]
    fn delete_frees_slot_for_reuse() {
        let mut p = page(256);
        let s0 = SlottedPage::insert(&mut p, b"aaaa").unwrap();
        let s1 = SlottedPage::insert(&mut p, b"bbbb").unwrap();
        assert!(SlottedPage::delete(&mut p, s0));
        assert!(!SlottedPage::delete(&mut p, s0)); // second delete is a no-op
        assert_eq!(SlottedPage::get(&p, s0), None);
        assert_eq!(SlottedPage::get(&p, s1), Some(&b"bbbb"[..]));
        let s2 = SlottedPage::insert(&mut p, b"cccc").unwrap();
        assert_eq!(s2, s0, "deleted slot is reused");
        assert_eq!(SlottedPage::record_count(&p), 2);
    }

    #[test]
    fn fill_page_to_capacity() {
        let mut p = page(128);
        let mut n = 0;
        while SlottedPage::fits(&p, 10) {
            SlottedPage::insert(&mut p, &[n as u8; 10]).unwrap();
            n += 1;
        }
        // 122 usable bytes, 14 per record (10 payload + 4 slot) => 8 records.
        assert_eq!(n, 8);
        assert!(SlottedPage::insert(&mut p, &[0u8; 10]).is_err());
        // All records intact.
        for (i, (_, r)) in SlottedPage::records(&p).enumerate() {
            assert_eq!(r, &[i as u8; 10]);
        }
    }

    #[test]
    fn compaction_reclaims_fragmented_space() {
        let mut p = page(128);
        // Fill with 8 x 10-byte records, delete every other one, then insert
        // a 30-byte record: only possible after compaction.
        let slots: Vec<u16> = (0..8)
            .map(|i| SlottedPage::insert(&mut p, &[i as u8; 10]).unwrap())
            .collect();
        for s in slots.iter().step_by(2) {
            SlottedPage::delete(&mut p, *s);
        }
        assert!(SlottedPage::fits(&p, 30));
        let s = SlottedPage::insert(&mut p, &[0xAB; 30]).unwrap();
        assert_eq!(SlottedPage::get(&p, s), Some(&[0xAB; 30][..]));
        // Survivors unharmed by compaction.
        for (i, slot) in slots.iter().enumerate() {
            if i % 2 == 1 {
                assert_eq!(SlottedPage::get(&p, *slot), Some(&[i as u8; 10][..]));
            }
        }
    }

    #[test]
    fn record_too_large_is_rejected() {
        let mut p = page(128);
        let max = SlottedPage::max_record(128);
        assert!(SlottedPage::insert(&mut p, &vec![0u8; max + 1]).is_err());
        assert!(SlottedPage::insert(&mut p, &vec![0u8; max]).is_ok());
    }

    #[test]
    fn empty_records_are_allowed() {
        let mut p = page(128);
        let s = SlottedPage::insert(&mut p, b"").unwrap();
        assert_eq!(SlottedPage::get(&p, s), Some(&b""[..]));
        assert!(SlottedPage::delete(&mut p, s));
    }

    #[test]
    fn records_iterator_skips_deleted() {
        let mut p = page(256);
        let a = SlottedPage::insert(&mut p, b"a").unwrap();
        let _b = SlottedPage::insert(&mut p, b"b").unwrap();
        SlottedPage::delete(&mut p, a);
        let got: Vec<_> = SlottedPage::records(&p).map(|(_, r)| r.to_vec()).collect();
        assert_eq!(got, vec![b"b".to_vec()]);
    }
}
