//! Property test: the buffer manager against a model, under random
//! fix/write/unfix/flush/evict sequences with eviction pressure.
//!
//! The model is a plain map from page number to its first byte; the pool
//! is small (4 frames over 12 pages), so most operation sequences force
//! evictions and re-reads. Whatever the replacement order, a page's
//! content observed through `fix` must always equal the model.

use proptest::prelude::*;
use reldiv_storage::manager::{StorageConfig, StorageManager};
use reldiv_storage::{DiskId, PageId, Reuse};
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum BufOp {
    /// Fix page `p`, write `v` to byte 0, unfix with the given hint.
    Write(u8, u8, bool),
    /// Fix page `p`, read byte 0, check against the model, unfix.
    Read(u8),
    /// Flush all dirty pages.
    Flush,
    /// Cold-start: flush + drop every unpinned frame.
    EvictAll,
}

fn buf_op() -> impl Strategy<Value = BufOp> {
    prop_oneof![
        4 => (0u8..12, any::<u8>(), any::<bool>())
            .prop_map(|(p, v, lru)| BufOp::Write(p, v, lru)),
        4 => (0u8..12).prop_map(BufOp::Read),
        1 => Just(BufOp::Flush),
        1 => Just(BufOp::EvictAll),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn buffer_manager_matches_a_model(ops in prop::collection::vec(buf_op(), 1..200)) {
        const PAGE: usize = 256;
        let mut sm = StorageManager::new(StorageConfig {
            data_page_size: PAGE,
            run_page_size: 128,
            buffer_bytes: 4 * PAGE, // 4 frames over 12 pages: evicts a lot
            work_memory_bytes: 1 << 20,
        });
        // Pre-allocate the 12 pages.
        let mut pids = Vec::new();
        for _ in 0..12 {
            let (pid, fid) = sm.new_page(StorageManager::DATA_DISK).unwrap();
            sm.unfix(fid, Reuse::Immediate).unwrap();
            pids.push(pid);
        }
        let mut model: HashMap<u64, u8> = HashMap::new();
        for op in ops {
            match op {
                BufOp::Write(p, v, lru) => {
                    let pid = pids[p as usize];
                    let fid = sm.fix(pid).unwrap();
                    sm.page_mut(fid).unwrap()[0] = v;
                    sm.unfix(fid, if lru { Reuse::Lru } else { Reuse::Immediate }).unwrap();
                    model.insert(pid.page, v);
                }
                BufOp::Read(p) => {
                    let pid = pids[p as usize];
                    let fid = sm.fix(pid).unwrap();
                    let got = sm.page(fid).unwrap()[0];
                    sm.unfix(fid, Reuse::Lru).unwrap();
                    let want = model.get(&pid.page).copied().unwrap_or(0);
                    prop_assert_eq!(got, want, "page {} content diverged", pid.page);
                }
                BufOp::Flush => sm.flush_all().unwrap(),
                BufOp::EvictAll => sm.evict_all().unwrap(),
            }
        }
        // Final sweep: every page equals the model after a cold start.
        sm.evict_all().unwrap();
        for pid in &pids {
            let fid = sm.fix(*pid).unwrap();
            let got = sm.page(fid).unwrap()[0];
            sm.unfix(fid, Reuse::Lru).unwrap();
            let want = model.get(&pid.page).copied().unwrap_or(0);
            prop_assert_eq!(got, want, "page {} lost after cold start", pid.page);
        }
    }

    /// Pinned frames survive arbitrary pressure: a page held fixed keeps
    /// its bytes addressable and unevicted while other traffic churns.
    #[test]
    fn pinned_frames_survive_pressure(traffic in prop::collection::vec(0u8..12, 1..100)) {
        const PAGE: usize = 256;
        let mut sm = StorageManager::new(StorageConfig {
            data_page_size: PAGE,
            run_page_size: 128,
            buffer_bytes: 4 * PAGE,
            work_memory_bytes: 1 << 20,
        });
        let mut pids = Vec::new();
        for _ in 0..12 {
            let (pid, fid) = sm.new_page(StorageManager::DATA_DISK).unwrap();
            sm.unfix(fid, Reuse::Immediate).unwrap();
            pids.push(pid);
        }
        // Pin page 0 with a marker.
        let pinned = sm.fix(pids[0]).unwrap();
        sm.page_mut(pinned).unwrap()[0] = 0xAB;
        for p in traffic {
            let pid = pids[1 + (p as usize % 11)];
            if let Ok(fid) = sm.fix(pid) {
                sm.unfix(fid, Reuse::Lru).unwrap();
            }
        }
        prop_assert_eq!(sm.page(pinned).unwrap()[0], 0xAB);
        sm.unfix(pinned, Reuse::Lru).unwrap();
    }
}

/// Stale handles never read another page's bytes: a `FrameId` becomes
/// invalid the moment its frame is evicted.
#[test]
fn stale_handles_are_always_detected() {
    const PAGE: usize = 256;
    let mut sm = StorageManager::new(StorageConfig {
        data_page_size: PAGE,
        run_page_size: 128,
        buffer_bytes: 2 * PAGE,
        work_memory_bytes: 1 << 20,
    });
    let (_p0, f0) = sm.new_page(StorageManager::DATA_DISK).unwrap();
    // Immediate marks the page as the preferred eviction victim...
    sm.unfix(f0, Reuse::Immediate).unwrap();
    // ...so LRU churn behind it evicts it first and recycles its slot.
    for _ in 0..8 {
        let (_, f) = sm.new_page(StorageManager::DATA_DISK).unwrap();
        sm.unfix(f, Reuse::Lru).unwrap();
    }
    assert!(sm.page(f0).is_err(), "stale frame id must not resolve");
    let _ = DiskId(0);
    let _ = PageId::new(DiskId(0), 0);
}
