//! Property test: the slotted page against a model, under random
//! insert/delete sequences with compaction pressure.
//!
//! The slotted page is the only module that manipulates raw page bytes
//! with manual offsets; this suite drives it through thousands of random
//! operation sequences and checks every record against a `HashMap` model
//! after each step, including the stability of slot numbers across
//! compaction.

use proptest::prelude::*;
use reldiv_storage::page::SlottedPage;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum PageOp {
    /// Insert a record of this length filled with the given byte.
    Insert(u8, u8),
    /// Delete the i-th live slot (modulo the live count).
    Delete(usize),
}

fn page_op() -> impl Strategy<Value = PageOp> {
    prop_oneof![
        3 => (1u8..40, 0u8..255).prop_map(|(len, fill)| PageOp::Insert(len, fill)),
        1 => (0usize..64).prop_map(PageOp::Delete),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn slotted_page_matches_model(
        ops in prop::collection::vec(page_op(), 1..200),
        page_size in prop::sample::select(vec![128usize, 256, 512]),
    ) {
        let mut buf = vec![0u8; page_size];
        SlottedPage::init(&mut buf);
        // Model: slot -> record bytes.
        let mut model: HashMap<u16, Vec<u8>> = HashMap::new();
        for op in ops {
            match op {
                PageOp::Insert(len, fill) => {
                    let record = vec![fill; len as usize];
                    if SlottedPage::fits(&buf, record.len()) {
                        let slot = SlottedPage::insert(&mut buf, &record)
                            .expect("fits() promised room");
                        prop_assert!(
                            model.insert(slot, record).is_none(),
                            "insert reused a live slot"
                        );
                    } else {
                        prop_assert!(
                            SlottedPage::insert(&mut buf, &record).is_err(),
                            "fits() said no but insert succeeded"
                        );
                    }
                }
                PageOp::Delete(i) => {
                    let mut live: Vec<u16> = model.keys().copied().collect();
                    if live.is_empty() {
                        continue;
                    }
                    live.sort_unstable();
                    let slot = live[i % live.len()];
                    prop_assert!(SlottedPage::delete(&mut buf, slot));
                    model.remove(&slot);
                }
            }
            // Full-state check after every operation.
            prop_assert_eq!(SlottedPage::record_count(&buf) as usize, model.len());
            for (&slot, record) in &model {
                prop_assert_eq!(
                    SlottedPage::get(&buf, slot),
                    Some(record.as_slice()),
                    "slot {} corrupted",
                    slot
                );
            }
            let live_from_page: HashMap<u16, Vec<u8>> =
                SlottedPage::records(&buf).map(|(s, r)| (s, r.to_vec())).collect();
            prop_assert_eq!(live_from_page, model.clone());
        }
    }

    /// `fits` is exact at the boundary: after filling a page greedily,
    /// deleting any record makes space for a same-sized record again.
    #[test]
    fn delete_always_makes_room_for_an_equal_record(
        len in 1usize..30,
        page_size in prop::sample::select(vec![128usize, 256]),
    ) {
        let mut buf = vec![0u8; page_size];
        SlottedPage::init(&mut buf);
        let mut slots = Vec::new();
        while SlottedPage::fits(&buf, len) {
            slots.push(SlottedPage::insert(&mut buf, &vec![1u8; len]).expect("fits"));
        }
        prop_assert!(!slots.is_empty());
        let victim = slots[slots.len() / 2];
        SlottedPage::delete(&mut buf, victim);
        prop_assert!(SlottedPage::fits(&buf, len), "freed space must be reusable");
        let slot = SlottedPage::insert(&mut buf, &vec![2u8; len]).expect("reuse");
        prop_assert_eq!(slot, victim, "the freed slot is recycled");
    }
}
