//! Admission control and graceful shutdown under load.
//!
//! A 1-worker, 1-slot service keeps at most two queries in the system;
//! flooding it with slow queries must produce `Overloaded` rejections
//! (not unbounded queueing), every admitted query must still answer
//! correctly, and a shutdown issued under load must complete all
//! admitted queries while refusing new ones.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use reldiv_core::Algorithm;
use reldiv_rel::Relation;
use reldiv_service::{QueryOptions, Service, ServiceConfig, ServiceError};
use reldiv_workload::WorkloadSpec;

/// A workload big enough that one (naive, sort-heavy) division takes a
/// visible amount of time even on a fast machine.
fn slow_workload() -> (Relation, Relation, usize) {
    let quotient_size = 300;
    let w = WorkloadSpec {
        divisor_size: 24,
        quotient_size,
        incomplete_groups: 100,
        incomplete_fill: 0.5,
        noise_per_group: 3,
        ..WorkloadSpec::default()
    }
    .generate(7);
    (w.dividend, w.divisor, quotient_size as usize)
}

fn slow_options() -> QueryOptions {
    QueryOptions {
        algorithm: Some(Algorithm::Naive),
        assume_unique: false,
        spec: None,
        deadline: None,
        profile: false,
        distribute: None,
        restricted_divisor: None,
        mem_budget: None,
    }
}

#[test]
fn one_slot_queue_rejects_excess_load_with_overloaded() {
    let (dividend, divisor, quotient_size) = slow_workload();
    let service = Service::start(ServiceConfig {
        workers: 1,
        queue_depth: 1,
        cache_capacity: 0, // every query must execute, none absorbed by the cache
        ..ServiceConfig::default()
    })
    .expect("start service");
    service.register("r", dividend).unwrap();
    service.register("s", divisor).unwrap();

    const CLIENTS: usize = 8;
    let completed = Arc::new(AtomicUsize::new(0));
    let rejected = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let service = service.clone();
            let completed = completed.clone();
            let rejected = rejected.clone();
            std::thread::spawn(move || match service.divide("r", "s", &slow_options()) {
                Ok(response) => {
                    assert_eq!(response.tuples.len(), quotient_size);
                    completed.fetch_add(1, Ordering::Relaxed);
                }
                Err(ServiceError::Overloaded) => {
                    rejected.fetch_add(1, Ordering::Relaxed);
                }
                Err(other) => panic!("unexpected error: {other}"),
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let completed = completed.load(Ordering::Relaxed);
    let rejected = rejected.load(Ordering::Relaxed);
    assert_eq!(completed + rejected, CLIENTS);
    assert!(completed >= 1, "at least the first query is admitted");
    assert!(
        rejected >= 1,
        "a 1-slot queue under {CLIENTS} concurrent slow queries must shed load"
    );
    let stats = service.stats();
    assert_eq!(stats.rejections as usize, rejected);
    assert_eq!(stats.queries as usize, completed);
    service.shutdown();
}

#[test]
fn rejected_queries_return_fast_while_a_slow_query_runs() {
    // Admission control must reject immediately, not after waiting in
    // line behind the running query.
    let (dividend, divisor, _) = slow_workload();
    let service = Service::start(ServiceConfig {
        workers: 1,
        queue_depth: 1,
        cache_capacity: 0,
        ..ServiceConfig::default()
    })
    .expect("start service");
    service.register("r", dividend).unwrap();
    service.register("s", divisor).unwrap();

    // Saturate: one executing, one queued (requests race, so take the
    // first two that are admitted).
    let mut background = Vec::new();
    let mut admitted = 0u64;
    while admitted < 2 {
        let worker = service.clone();
        let handle = std::thread::spawn(move || worker.divide("r", "s", &slow_options()));
        std::thread::sleep(Duration::from_millis(20));
        if service.stats().cache_misses > admitted {
            admitted = service.stats().cache_misses;
        }
        background.push(handle);
    }

    let start = Instant::now();
    let result = service.divide("r", "s", &slow_options());
    let elapsed = start.elapsed();
    if matches!(result, Err(ServiceError::Overloaded)) {
        assert!(
            elapsed < Duration::from_millis(250),
            "rejection took {elapsed:?}; admission control must not queue-wait"
        );
    }
    for handle in background {
        let _ = handle.join().unwrap();
    }
    service.shutdown();
}

#[test]
fn graceful_shutdown_completes_all_admitted_queries() {
    let (dividend, divisor, quotient_size) = slow_workload();
    let service = Service::start(ServiceConfig {
        workers: 1,
        queue_depth: 8,
        cache_capacity: 0,
        ..ServiceConfig::default()
    })
    .expect("start service");
    service.register("r", dividend).unwrap();
    service.register("s", divisor).unwrap();

    const CLIENTS: u64 = 4;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let service = service.clone();
            std::thread::spawn(move || service.divide("r", "s", &slow_options()))
        })
        .collect();

    // Wait until all four queries are submitted (the queue holds them
    // all), then shut down while they are in flight.
    let deadline = Instant::now() + Duration::from_secs(30);
    while service.stats().cache_misses < CLIENTS {
        assert!(Instant::now() < deadline, "queries never got submitted");
        std::thread::sleep(Duration::from_millis(5));
    }
    service.shutdown();

    // Every admitted query completed with a correct quotient — none were
    // dropped by the shutdown.
    for handle in handles {
        let response = handle
            .join()
            .unwrap()
            .expect("admitted query must complete");
        assert_eq!(response.tuples.len(), quotient_size);
    }

    // New work is refused after shutdown.
    assert!(!service.is_accepting());
    assert!(matches!(
        service.divide("r", "s", &slow_options()),
        Err(ServiceError::ShuttingDown)
    ));
    assert!(matches!(
        service.register(
            "t",
            Relation::from_tuples(
                reldiv_workload::divisor_schema(),
                vec![reldiv_rel::tuple::ints(&[1])],
            )
            .unwrap()
        ),
        Err(ServiceError::ShuttingDown)
    ));
    let stats = service.stats();
    assert_eq!(stats.queries, CLIENTS);
    assert!(stats.shed_shutdown >= 1);
}

#[test]
fn queue_depth_bounds_in_flight_work() {
    // The submission queue is the only buffer: with D slots and W
    // workers, no more than W + D queries can be past admission at once,
    // so memory for in-flight work is bounded regardless of offered load.
    let (dividend, divisor, _) = slow_workload();
    let service = Service::start(ServiceConfig {
        workers: 2,
        queue_depth: 2,
        cache_capacity: 0,
        ..ServiceConfig::default()
    })
    .expect("start service");
    service.register("r", dividend).unwrap();
    service.register("s", divisor).unwrap();

    const CLIENTS: usize = 16;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let service = service.clone();
            std::thread::spawn(move || service.divide("r", "s", &slow_options()).is_ok())
        })
        .collect();
    let outcomes: Vec<bool> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let stats = service.stats();
    assert_eq!(
        stats.queries + stats.rejections,
        CLIENTS as u64,
        "every request either completed or was rejected: {stats:?}"
    );
    assert!(outcomes.iter().any(|&ok| ok));
    service.shutdown();
}
