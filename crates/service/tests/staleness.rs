//! Property: interleaved catalog updates and (cached) queries never
//! serve a stale quotient. The test keeps its own model of what each
//! relation currently holds, replays a random interleaving of updates
//! and divisions against the service, and checks every answer against a
//! brute-force division of the *model's current state*. Because cache
//! keys embed exact catalog versions, a hit for replaced data is
//! impossible — this test would catch any regression of that property.

use proptest::prelude::*;
use reldiv_core::Algorithm;
use reldiv_rel::{RecordCodec, Relation, Schema, Tuple};
use reldiv_service::{DivideRequest, DivisionClient, InProcClient, Service, ServiceConfig};
use reldiv_workload::{brute_force_divide, WorkloadSpec};

fn canonical_bytes(schema: &Schema, tuples: &[Tuple]) -> Vec<Vec<u8>> {
    let codec = RecordCodec::new(schema.clone());
    let mut records: Vec<Vec<u8>> = tuples
        .iter()
        .map(|t| codec.encode(t).expect("tuples fit their schema"))
        .collect();
    records.sort();
    records
}

fn generate_pair(seed: u64) -> (Relation, Relation) {
    let w = WorkloadSpec {
        divisor_size: 2 + seed % 4,
        quotient_size: 1 + seed % 7,
        incomplete_groups: seed % 5,
        incomplete_fill: 0.5,
        // No noise tuples: the no-join aggregation columns assume the
        // dividend's divisor-ids are drawn from the divisor (the paper's
        // "unrestricted divisor" case), and this test runs all six.
        noise_per_group: 0,
        ..WorkloadSpec::default()
    }
    .generate(seed);
    (w.dividend, w.divisor)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn interleaved_updates_never_serve_stale_quotients(
        ops in proptest::collection::vec((0u8..4u8, 0u64..1u64 << 48), 4..32),
        base_seed in 0u64..1u64 << 32,
    ) {
        let service = Service::start(ServiceConfig {
            workers: 2,
            queue_depth: 16,
            cache_capacity: 8,
            ..ServiceConfig::default()
        }).expect("start service");
        let mut client = InProcClient::new(service.clone());

        // The model: what the catalog should currently hold.
        let (mut model_dividend, mut model_divisor) = generate_pair(base_seed);
        client.register("r", &model_dividend).unwrap();
        client.register("s", &model_divisor).unwrap();

        for (kind, seed) in ops {
            match kind {
                // Replace the dividend (a catalog update).
                0 => {
                    let (dividend, _) = generate_pair(seed);
                    model_dividend = dividend;
                    client.register("r", &model_dividend).unwrap();
                }
                // Replace the divisor.
                1 => {
                    let (_, divisor) = generate_pair(seed);
                    model_divisor = divisor;
                    client.register("s", &model_divisor).unwrap();
                }
                // Divide (2 and 3: queries twice as likely as updates).
                // Independently updated inputs can leave the divisor a
                // proper subset of the dividend's divisor-id domain —
                // the paper's "restricted divisor" case, where the
                // no-join aggregation columns are incorrect by design —
                // so rotate through the four always-correct algorithms.
                _ => {
                    let algorithms = [
                        Algorithm::Naive,
                        Algorithm::SortAggregation { join: true },
                        Algorithm::HashAggregation { join: true },
                        Algorithm::HashDivision {
                            mode: reldiv_core::HashDivisionMode::Standard,
                        },
                    ];
                    let algorithm = algorithms[(seed % 4) as usize];
                    let reply = client.divide(&DivideRequest {
                        dividend: "r".into(),
                        divisor: "s".into(),
                        algorithm: Some(algorithm),
                        assume_unique: false,
                        spec: None,
                        deadline_ms: None,
                        profile: false,
                        distribute: None,
                        restricted: None,
                        mem_budget: None,
                    }).unwrap();
                    let expected = brute_force_divide(
                        &model_dividend,
                        &model_divisor,
                        &[1],
                        &[0],
                    );
                    prop_assert_eq!(
                        canonical_bytes(&reply.schema, &reply.tuples),
                        canonical_bytes(&reply.schema, &expected),
                        "stale or wrong quotient from {:?} (cached: {})",
                        algorithm,
                        reply.cached
                    );
                }
            }
        }
        service.shutdown();
    }
}
