//! Chaos harness: closed-loop verification under injected disk faults,
//! deadlines, panicking queries, and concurrent catalog churn.
//!
//! The acceptance bar (ISSUE PR 2): with a seeded fault plan firing
//! transient disk errors on every worker's storage, an updater churning
//! the relations, a fail-point query panicking inside the pool, and
//! deadline-carrying queries racing the clock, **every completed reply is
//! byte-identical to a brute-force oracle** and the process never dies.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use reldiv_core::{Algorithm, HashDivisionMode};
use reldiv_rel::{RecordCodec, Relation, Tuple};
use reldiv_service::{QueryOptions, Service, ServiceConfig, ServiceError};
use reldiv_storage::manager::StorageConfig;
use reldiv_storage::FaultPlan;
use reldiv_workload::{brute_force_divide, WorkloadSpec};

/// Algorithms exact for any input pair, including restricted divisors.
const ALGORITHMS: [Algorithm; 4] = [
    Algorithm::Naive,
    Algorithm::SortAggregation { join: true },
    Algorithm::HashAggregation { join: true },
    Algorithm::HashDivision {
        mode: HashDivisionMode::Standard,
    },
];

fn generate(seed: u64, dividend: bool) -> Relation {
    generate_scaled(seed, dividend, 10 + seed % 20)
}

/// Big enough that dividend + divisor overflow the soak's 64 KiB buffer
/// pool: every query does real page I/O through the fault plan.
fn generate_big(seed: u64, dividend: bool) -> Relation {
    generate_scaled(seed, dividend, 300 + seed % 100)
}

fn generate_scaled(seed: u64, dividend: bool, quotient_size: u64) -> Relation {
    let w = WorkloadSpec {
        divisor_size: 3 + seed % 4,
        quotient_size,
        incomplete_groups: seed % 6,
        incomplete_fill: 0.5,
        noise_per_group: 1,
        ..WorkloadSpec::default()
    }
    .generate(seed);
    if dividend {
        w.dividend
    } else {
        w.divisor
    }
}

fn canonical(schema_source: &Relation, tuples: &[Tuple], quotient_keys: &[usize]) -> Vec<Vec<u8>> {
    let schema = schema_source
        .schema()
        .project(quotient_keys)
        .expect("projectable");
    let codec = RecordCodec::new(schema);
    let mut records: Vec<Vec<u8>> = tuples
        .iter()
        .map(|t| codec.encode(t).expect("tuples fit schema"))
        .collect();
    records.sort();
    records
}

/// Silences the intentional fail-point panics so the chaos runs do not
/// spam stderr; every other panic still reaches the default hook.
fn quiet_fail_point_panics() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !msg.contains("fail point") {
            default_hook(info);
        }
    }));
}

#[test]
fn panicking_query_is_isolated_and_the_worker_is_replaced() {
    quiet_fail_point_panics();
    let service = Service::start(ServiceConfig {
        workers: 1, // one worker: if the panic killed it, nothing would ever answer again
        queue_depth: 4,
        cache_capacity: 0,
        fail_point_relation: Some("bait".into()),
        ..ServiceConfig::default()
    })
    .expect("start service");
    service.register("r", generate(1, true)).unwrap();
    service.register("s", generate(1, false)).unwrap();
    service.register("bait", generate(2, true)).unwrap();

    let options = QueryOptions::default();
    for round in 0..3 {
        let err = service.divide("bait", "s", &options).unwrap_err();
        assert!(
            matches!(err, ServiceError::Internal(_)),
            "round {round}: {err}"
        );
        // The pool's only worker was rebuilt and still serves.
        let ok = service.divide("r", "s", &options).unwrap();
        assert!(!ok.tuples.is_empty());
    }
    assert_eq!(service.stats().worker_panics, 3);
    assert!(service.is_accepting());
}

#[test]
fn expired_deadlines_cancel_without_killing_the_service() {
    let service = Service::start(ServiceConfig {
        workers: 2,
        queue_depth: 8,
        cache_capacity: 0,
        ..ServiceConfig::default()
    })
    .expect("start service");
    service.register("r", generate(3, true)).unwrap();
    service.register("s", generate(3, false)).unwrap();

    let instant = QueryOptions {
        deadline: Some(Duration::ZERO),
        ..QueryOptions::default()
    };
    let err = service.divide("r", "s", &instant).unwrap_err();
    assert_eq!(err, ServiceError::DeadlineExceeded);
    assert_eq!(service.stats().timeouts, 1);

    // A sane deadline still completes.
    let relaxed = QueryOptions {
        deadline: Some(Duration::from_secs(30)),
        ..QueryOptions::default()
    };
    assert!(service.divide("r", "s", &relaxed).is_ok());
}

/// The soak: seeded transient disk faults on every worker, tiny buffer
/// pool (every query does real I/O through the fault plan), catalog
/// churn, interleaved fail-point panics and zero deadlines — and every
/// completed reply must equal the brute-force oracle for the exact
/// versions it reports.
#[test]
fn chaos_soak_every_completed_reply_matches_the_oracle() {
    quiet_fail_point_panics();
    const SEED: u64 = 0xC4A0_5EED;
    const CLIENTS: usize = 4;
    const QUERIES_PER_CLIENT: u64 = 60;

    let service = Service::start(ServiceConfig {
        workers: 3,
        queue_depth: 8,
        cache_capacity: 16,
        storage: StorageConfig {
            data_page_size: 4096,
            run_page_size: 1024,
            // Smaller than one dividend: scans evict constantly, so every
            // query does real page I/O through the fault plan.
            buffer_bytes: 24 * 1024,
            work_memory_bytes: 128 * 1024,
        },
        storage_faults: Some(
            FaultPlan::seeded(SEED)
                .with_read_error_rate(0.05)
                .with_write_error_rate(0.05),
        ),
        fail_point_relation: Some("bait".into()),
        ..ServiceConfig::default()
    })
    .expect("start service");

    // Oracle: every relation version ever registered.
    let versions: Arc<Mutex<HashMap<u64, Relation>>> = Arc::default();
    let register = |name: &str, rel: Relation| {
        let v = service.register(name, rel.clone()).expect("register");
        versions.lock().unwrap().insert(v, rel);
    };
    register("r0", generate_big(SEED, true));
    register("r1", generate_big(SEED + 1, true));
    register("s0", generate_big(SEED + 2, false));
    register("s1", generate_big(SEED + 3, false));
    register("bait", generate(SEED + 4, true));

    let incorrect = Arc::new(AtomicU64::new(0));
    let completed = Arc::new(AtomicU64::new(0));
    let panics_triggered = Arc::new(AtomicU64::new(0));
    let failed_under_fault = Arc::new(AtomicU64::new(0));
    let clients_done = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        for client_id in 0..CLIENTS {
            let service = &service;
            let versions = versions.clone();
            let incorrect = incorrect.clone();
            let completed = completed.clone();
            let panics_triggered = panics_triggered.clone();
            let failed_under_fault = failed_under_fault.clone();
            let clients_done = clients_done.clone();
            scope.spawn(move || {
                let mut rng = SEED.wrapping_add(client_id as u64 * 7919);
                let mut draw = |n: u64| {
                    rng = rng
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (rng >> 33) % n
                };
                let mut served = 0u64;
                while served < QUERIES_PER_CLIENT {
                    let kind = draw(12);
                    // 1-in-12: poke the fail point.
                    if kind == 0 {
                        match service.divide("bait", "s0", &QueryOptions::default()) {
                            Err(ServiceError::Internal(_)) => {
                                panics_triggered.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => panic!("fail point returned {e}"),
                            Ok(_) => panic!("fail point did not fire"),
                        }
                        continue;
                    }
                    // 1-in-12: an already-expired deadline must cancel.
                    if kind == 1 {
                        let opts = QueryOptions {
                            deadline: Some(Duration::ZERO),
                            ..QueryOptions::default()
                        };
                        match service.divide("r0", "s0", &opts) {
                            Err(ServiceError::DeadlineExceeded) => {}
                            Err(e) => panic!("expired deadline returned {e}"),
                            Ok(_) => panic!("expired deadline completed"),
                        }
                        continue;
                    }
                    let dividend = if draw(2) == 0 { "r0" } else { "r1" };
                    let divisor = if draw(2) == 0 { "s0" } else { "s1" };
                    let options = QueryOptions {
                        algorithm: Some(ALGORITHMS[draw(ALGORITHMS.len() as u64) as usize]),
                        ..QueryOptions::default()
                    };
                    match service.divide(dividend, divisor, &options) {
                        Ok(reply) => {
                            let (dividend_rel, divisor_rel) = {
                                let v = versions.lock().unwrap();
                                (
                                    v.get(&reply.dividend_version).cloned(),
                                    v.get(&reply.divisor_version).cloned(),
                                )
                            };
                            let (Some(dividend_rel), Some(divisor_rel)) =
                                (dividend_rel, divisor_rel)
                            else {
                                panic!(
                                    "reply pinned versions {}/{} unknown to the oracle",
                                    reply.dividend_version, reply.divisor_version
                                );
                            };
                            let want = brute_force_divide(&dividend_rel, &divisor_rel, &[1], &[0]);
                            let want = canonical(&dividend_rel, &want, &[0]);
                            let got = canonical(&dividend_rel, &reply.tuples, &[0]);
                            if got != want {
                                incorrect.fetch_add(1, Ordering::Relaxed);
                            }
                            completed.fetch_add(1, Ordering::Relaxed);
                            served += 1;
                        }
                        Err(ServiceError::Overloaded) => {
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        Err(ServiceError::Exec(_) | ServiceError::Internal(_)) => {
                            // A transient fault burst can out-last the
                            // retry budget; failing cleanly is allowed,
                            // serving a wrong quotient is not.
                            failed_under_fault.fetch_add(1, Ordering::Relaxed);
                            served += 1;
                        }
                        Err(e) => panic!("unexpected service error: {e}"),
                    }
                }
                clients_done.fetch_add(1, Ordering::Relaxed);
            });
        }

        // Updater: churn the catalog until every client finished.
        let versions_u = versions.clone();
        let service_ref = &service;
        let clients_done_u = clients_done.clone();
        scope.spawn(move || {
            let mut churn_seed = SEED ^ 0xD1_71DE;
            // Deadman: a panicked client never increments clients_done, so
            // bound the churn loop rather than hang the scope forever.
            let deadman = std::time::Instant::now();
            while clients_done_u.load(Ordering::Relaxed) < CLIENTS as u64
                && deadman.elapsed() < Duration::from_secs(300)
            {
                churn_seed = churn_seed.wrapping_add(0x9E37_79B9);
                let names = ["r0", "r1", "s0", "s1"];
                let name = names[(churn_seed >> 7) as usize % names.len()];
                let rel = generate_big(churn_seed, name.starts_with('r'));
                if let Ok(v) = service_ref.register(name, rel.clone()) {
                    versions_u.lock().unwrap().insert(v, rel);
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        });
    });

    let stats = service.stats();
    let completed = completed.load(Ordering::Relaxed);
    let incorrect = incorrect.load(Ordering::Relaxed);
    assert_eq!(
        incorrect, 0,
        "{incorrect} of {completed} completed replies diverged from the oracle"
    );
    assert!(completed >= CLIENTS as u64 * QUERIES_PER_CLIENT / 2);
    assert!(
        panics_triggered.load(Ordering::Relaxed) > 0,
        "the fail point never fired"
    );
    assert_eq!(
        stats.worker_panics,
        panics_triggered.load(Ordering::Relaxed),
        "every triggered panic must be accounted for"
    );
    assert!(
        stats.io_retries > 0,
        "the fault plan should have forced buffer-manager retries"
    );
    assert!(stats.timeouts > 0, "expired deadlines should be counted");
    // The service survived all of it.
    assert!(service.is_accepting());
    let final_reply = service
        .divide("r0", "s0", &QueryOptions::default())
        .expect("service still serves after the soak");
    assert!(!final_reply.schema.fields().is_empty());
}
