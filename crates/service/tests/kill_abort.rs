//! Regression: `ServerHandle::kill()` must abort *in-flight* worker
//! executions, not just sever the sockets. Before the fix, kill()
//! severed connections but the workers kept computing the quotient
//! off-wire to completion — a "dead" node that keeps writing spill
//! pages, and a kill() that blocks for the rest of the query.
//!
//! The observable: kill() joins the worker pool, so if the in-flight
//! query is not cancelled at its next checkpoint, kill() takes about as
//! long as the query's remaining runtime. With the abort flag wired
//! through, kill() returns in checkpoint time.

use std::time::{Duration, Instant};

use reldiv_core::Algorithm;
use reldiv_service::{
    DivideRequest, DivisionClient, ServerHandle, Service, ServiceConfig, TcpClient,
};
use reldiv_workload::WorkloadSpec;

fn request() -> DivideRequest {
    DivideRequest {
        dividend: "r".into(),
        divisor: "s".into(),
        // Naive division: the slowest algorithm in the repertoire, so a
        // mid-flight kill has the most runtime left to cut short.
        algorithm: Some(Algorithm::Naive),
        assume_unique: false,
        spec: None,
        deadline_ms: None,
        profile: false,
        distribute: None,
        restricted: None,
        mem_budget: None,
    }
}

#[test]
fn kill_aborts_in_flight_worker_executions() {
    // Scale the workload until the baseline query is slow enough that
    // "kill returned quickly" and "kill waited for the query" are
    // unmistakably different, whatever machine runs this.
    let mut baseline = Duration::ZERO;
    let mut workload = None;
    for quotient_size in [2_000u64, 8_000, 32_000] {
        let w = WorkloadSpec {
            divisor_size: 48,
            quotient_size,
            noise_per_group: 4,
            ..WorkloadSpec::default()
        }
        .generate(113);
        let service = Service::start(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        })
        .expect("start service");
        let mut server = ServerHandle::start(service, "127.0.0.1:0").expect("bind");
        let mut client = TcpClient::connect(server.local_addr()).expect("connect");
        client.register("r", &w.dividend).expect("register r");
        client.register("s", &w.divisor).expect("register s");
        let started = Instant::now();
        client.divide(&request()).expect("healthy baseline query");
        baseline = started.elapsed();
        server.shutdown();
        if baseline >= Duration::from_millis(400) {
            workload = Some(w);
            break;
        }
    }
    let w = workload.unwrap_or_else(|| {
        panic!("even the largest workload ran in {baseline:?}; cannot calibrate")
    });

    // Fresh server, same workload. Launch the same query and kill the
    // server while it is mid-execution. The timing bound is retried: a
    // loaded machine can deschedule the worker past its checkpoint, but
    // an *un-aborted* execution blocks kill() for the residual ~3/4 of
    // the baseline on every attempt, so three slow attempts in a row
    // mean the regression, not the scheduler.
    let mut last = Duration::ZERO;
    for attempt in 1..=3 {
        let service = Service::start(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        })
        .expect("start service");
        let mut server = ServerHandle::start(service, "127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        let mut client = TcpClient::connect(addr).expect("connect");
        client.register("r", &w.dividend).expect("register r");
        client.register("s", &w.divisor).expect("register s");

        let query = std::thread::spawn(move || {
            let mut client = TcpClient::connect(addr).expect("connect query client");
            client.divide(&request())
        });
        // Let the query get well into execution, but nowhere near done.
        std::thread::sleep(baseline / 4);

        let killed_at = Instant::now();
        server.kill();
        let kill_took = killed_at.elapsed();

        // The in-flight client saw the connection die, not a completed
        // quotient — asserted on every attempt.
        let outcome = query.join().expect("query thread");
        assert!(
            outcome.is_err(),
            "a killed node must not deliver the quotient"
        );
        // The regression assertion: kill() returned in checkpoint time,
        // not in remaining-query time.
        if kill_took < baseline / 2 {
            return;
        }
        eprintln!("attempt {attempt}: kill() took {kill_took:?} against a {baseline:?} query");
        last = kill_took;
    }
    panic!(
        "kill() took {last:?} against a {baseline:?} query on every attempt — \
         the in-flight execution was not aborted"
    );
}

#[test]
fn kill_refuses_queued_but_unstarted_work() {
    // A query still sitting in the admission queue when kill() lands
    // must be refused at the checkpoint before execution starts — the
    // abort flag is checked on dequeue, too.
    let w = WorkloadSpec {
        divisor_size: 32,
        quotient_size: 4_000,
        noise_per_group: 4,
        ..WorkloadSpec::default()
    }
    .generate(127);
    let service = Service::start(ServiceConfig {
        workers: 1,
        queue_depth: 8,
        ..ServiceConfig::default()
    })
    .expect("start service");
    let mut server = ServerHandle::start(service, "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let mut client = TcpClient::connect(addr).expect("connect");
    client.register("r", &w.dividend).expect("register r");
    client.register("s", &w.divisor).expect("register s");

    // One worker: the first query occupies it, the rest queue behind.
    let clients: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = TcpClient::connect(addr).expect("connect");
                client.divide(&request())
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(50));
    let killed_at = Instant::now();
    server.kill();
    let kill_took = killed_at.elapsed();
    for handle in clients {
        let outcome = handle.join().expect("client thread");
        assert!(outcome.is_err(), "killed node must not answer");
    }
    assert!(
        kill_took < Duration::from_secs(10),
        "kill() with a full queue took {kill_took:?}; queued work must be refused, not run"
    );
}
