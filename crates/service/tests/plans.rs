//! Composed plans through the service: `Service::exec_plan` end to end
//! (in-process and over TCP), the plan cache, whole-plan profiling, and
//! the restricted-divisor gate — client assertions and plan hints are
//! honored only while no storage fault injection is active.
//!
//! Every result is checked against `reldiv-plan`'s brute-force reference
//! interpreter, byte for byte.

use std::time::Duration;

use reldiv_core::Algorithm;
use reldiv_plan::{bind, canonical_bytes, evaluate, parse, MemCatalog};
use reldiv_rel::schema::Field;
use reldiv_rel::tuple::ints;
use reldiv_rel::{Relation, Schema, Tuple, Value};
use reldiv_service::{
    DivisionClient, ExecPlanRequest, PlanOptions, QueryOptions, ServerHandle, Service,
    ServiceConfig, ServiceError, TcpClient,
};
use reldiv_storage::FaultPlan;

/// The paper's schema: who took what, and what the courses are called.
fn transcript() -> Relation {
    Relation::from_tuples(
        Schema::new(vec![Field::int("student-id"), Field::int("course-no")]),
        vec![
            ints(&[1, 10]),
            ints(&[1, 11]),
            ints(&[1, 12]),
            ints(&[2, 10]),
            ints(&[2, 12]),
            ints(&[3, 11]),
        ],
    )
    .unwrap()
}

fn courses() -> Relation {
    Relation::from_tuples(
        Schema::new(vec![Field::int("course-no"), Field::str("title", 24)]),
        vec![
            Tuple::new(vec![Value::Int(10), Value::Str("Database Systems".into())]),
            Tuple::new(vec![Value::Int(11), Value::Str("Compilers".into())]),
            Tuple::new(vec![Value::Int(12), Value::Str("Database Theory".into())]),
        ],
    )
    .unwrap()
}

const MOTIVATING: &str = "(divide (on course-no) \
     (scan transcript) \
     (project (course-no) \
       (filter (contains title \"database\") (scan courses))))";

/// Filter + join + division + HAVING COUNT in one plan: students who
/// took all database courses, joined back to their transcripts, kept if
/// they appear at least twice.
const COMPOSED: &str = "(having-count >= 2 \
     (group-count (student-id) \
       (join (on (student-id student-id)) \
         (divide (on course-no) \
           (scan transcript) \
           (project (course-no) \
             (filter (contains title \"database\") (scan courses)))) \
         (scan transcript))))";

/// What the reference interpreter says `text` produces over the same
/// relations the service holds.
fn oracle_bytes(text: &str) -> Vec<Vec<u8>> {
    let mut catalog = MemCatalog::new();
    catalog.insert("transcript", transcript());
    catalog.insert("courses", courses());
    let bound = bind(&parse(text).unwrap(), &catalog).unwrap();
    canonical_bytes(&evaluate(&bound, &catalog).unwrap())
}

fn response_bytes(schema: &Schema, tuples: &[Tuple]) -> Vec<Vec<u8>> {
    canonical_bytes(&Relation::from_tuples(schema.clone(), tuples.to_vec()).unwrap())
}

/// A running service with the course relations, plus the catalog
/// versions `register` assigned to (transcript, courses).
fn course_service() -> (std::sync::Arc<Service>, u64, u64) {
    let service = Service::start(ServiceConfig::default()).expect("start service");
    let tv = service.register("transcript", transcript()).unwrap();
    let cv = service.register("courses", courses()).unwrap();
    (service, tv, cv)
}

#[test]
fn motivating_plan_matches_the_reference_oracle() {
    let (service, tv, cv) = course_service();
    let response = service
        .exec_plan(MOTIVATING, &PlanOptions::default())
        .expect("plan executes");
    assert!(!response.cached);
    assert_eq!(response.algorithms.len(), 1, "one division in the plan");
    assert_eq!(
        response.relations,
        vec![("courses".to_owned(), cv), ("transcript".to_owned(), tv)],
        "pins are sorted by name and carry catalog versions"
    );
    assert_eq!(
        response_bytes(&response.schema, &response.tuples),
        oracle_bytes(MOTIVATING)
    );
    assert!(!response.tuples.is_empty(), "students 1 and 2 qualify");
    service.shutdown();
}

#[test]
fn composed_plan_matches_the_reference_oracle() {
    let (service, _, _) = course_service();
    let response = service
        .exec_plan(COMPOSED, &PlanOptions::default())
        .expect("plan executes");
    assert_eq!(
        response_bytes(&response.schema, &response.tuples),
        oracle_bytes(COMPOSED)
    );
    assert!(!response.tuples.is_empty());
    service.shutdown();
}

#[test]
fn plan_cache_hits_on_canonical_text_and_invalidates_on_update() {
    let (service, tv, _) = course_service();
    let first = service
        .exec_plan(MOTIVATING, &PlanOptions::default())
        .unwrap();
    assert!(!first.cached);
    assert_eq!(service.plan_cache_len(), 1);

    // A reformatted but identical plan hits: the cache keys on the
    // canonical printing, not the client's whitespace.
    let reformatted = MOTIVATING.replace(") ", ")\n   ");
    let hit = service
        .exec_plan(
            &reformatted,
            &PlanOptions {
                deadline: None,
                profile: true,
            },
        )
        .unwrap();
    assert!(hit.cached);
    assert_eq!(hit.tuples, first.tuples, "cache shares the tuple vector");
    assert!(
        hit.profile.is_none(),
        "cache hits execute nothing, so there is nothing to profile"
    );
    assert_eq!(hit.ops, Default::default());

    // Updating any pinned relation purges the entry; the re-run pins the
    // new version.
    let new_cv = service.register("courses", courses()).unwrap();
    assert_eq!(service.plan_cache_len(), 0);
    let reran = service
        .exec_plan(MOTIVATING, &PlanOptions::default())
        .unwrap();
    assert!(!reran.cached);
    assert_eq!(
        reran.relations,
        vec![
            ("courses".to_owned(), new_cv),
            ("transcript".to_owned(), tv)
        ]
    );
    service.shutdown();
}

#[test]
fn plan_errors_map_to_the_service_error_taxonomy() {
    let (service, _, _) = course_service();
    let opts = PlanOptions::default();
    assert!(matches!(
        service.exec_plan("(scan", &opts),
        Err(ServiceError::BadRequest(_))
    ));
    assert!(matches!(
        service.exec_plan("(scan nosuch)", &opts),
        Err(ServiceError::UnknownRelation(_))
    ));
    assert!(matches!(
        service.exec_plan("(filter (= nosuch-col 1) (scan transcript))", &opts),
        Err(ServiceError::BadRequest(_))
    ));
    let oversized = format!(
        "(scan transcript){}",
        " ".repeat(reldiv_service::proto::MAX_PLAN_WIRE)
    );
    assert!(matches!(
        service.exec_plan(&oversized, &opts),
        Err(ServiceError::BadRequest(_))
    ));
    assert!(matches!(
        service.exec_plan(
            MOTIVATING,
            &PlanOptions {
                deadline: Some(Duration::ZERO),
                profile: false,
            }
        ),
        Err(ServiceError::DeadlineExceeded)
    ));
    let stats = service.stats();
    assert_eq!(stats.queries, 0, "failed plans never count as queries");
    assert_eq!(stats.timeouts, 1);
    assert!(stats.errors >= 4);
    service.shutdown();
}

#[test]
fn composed_plan_runs_over_tcp_with_a_span_per_operator() {
    let (service, _, _) = course_service();
    let mut server = ServerHandle::start(service, "127.0.0.1:0").unwrap();
    let mut client = TcpClient::connect(server.local_addr()).unwrap();

    let reply = client
        .exec_plan(&ExecPlanRequest {
            plan: COMPOSED.to_owned(),
            deadline_ms: Some(60_000),
            profile: true,
        })
        .expect("plan executes over TCP");
    assert!(!reply.cached);
    assert_eq!(reply.algorithms.len(), 1);
    assert_eq!(
        response_bytes(&reply.schema, &reply.tuples),
        oracle_bytes(COMPOSED),
        "TCP answer is byte-identical to the reference oracle"
    );

    // EXPLAIN ANALYZE travelled with the reply: every plan node shows up
    // as a span under the whole-plan root.
    let profile = reply.profile.expect("profiled plan carries a span tree");
    let mut labels = Vec::new();
    fn walk(n: &reldiv_service::ProfileNode, out: &mut Vec<String>) {
        out.push(n.label.clone());
        for c in &n.children {
            walk(c, out);
        }
    }
    walk(&profile.root, &mut labels);
    // A bare-scan dividend streams into the division directly (no
    // materialize span); the computed divisor side shows its pipeline.
    for want in [
        "plan",
        "having count >= 2",
        "group-count",
        "hash-join",
        "scan transcript",
        "scan courses",
        "filter",
        "project",
        "divide",
        "materialize divisor",
    ] {
        assert!(
            labels.iter().any(|l| l.starts_with(want)),
            "missing {want:?} span in {labels:?}"
        );
    }

    server.shutdown();
}

// ---------------------------------------------------------------------
// The restricted-divisor gate (client assertions and plan hints).
// ---------------------------------------------------------------------

/// 100 complete groups over a 100-row divisor, duplicate-free: exactly
/// the regime where the cost model's recommendation differs between a
/// restricted and an unrestricted divisor.
fn hint_relations() -> (Relation, Relation) {
    let dividend = Relation::from_tuples(
        Schema::new(vec![Field::int("q"), Field::int("s")]),
        (0..100)
            .flat_map(|q| (0..100).map(move |s| ints(&[q, s])))
            .collect(),
    )
    .unwrap();
    let divisor = Relation::from_tuples(
        Schema::new(vec![Field::int("s")]),
        (0..100).map(|s| ints(&[s])).collect(),
    )
    .unwrap();
    (dividend, divisor)
}

fn hint_service(config: ServiceConfig) -> std::sync::Arc<Service> {
    let (dividend, divisor) = hint_relations();
    let service = Service::start(config).expect("start service");
    service.register("enroll", dividend).unwrap();
    service.register("req", divisor).unwrap();
    service
}

fn unique_options(restricted: Option<bool>) -> QueryOptions {
    QueryOptions {
        assume_unique: true,
        restricted_divisor: restricted,
        ..QueryOptions::default()
    }
}

#[test]
fn restricted_assertion_unlocks_no_join_plans_on_a_healthy_service() {
    let service = hint_service(ServiceConfig::default());

    // Conservative default: the planner must assume dividend values may
    // fall outside the divisor, which rules out the no-join aggregations.
    let default = service
        .divide("enroll", "req", &unique_options(None))
        .unwrap();
    assert!(
        matches!(default.algorithm, Algorithm::HashDivision { .. }),
        "conservative choice was {:?}",
        default.algorithm
    );

    // The client vouches for referential integrity: the cheaper no-join
    // aggregation becomes legal and the cost model picks it here.
    let asserted = service
        .divide("enroll", "req", &unique_options(Some(false)))
        .unwrap();
    assert_eq!(
        asserted.algorithm,
        Algorithm::HashAggregation { join: false },
        "the assertion must reach the cost model"
    );

    // The hint changes the plan, never the answer.
    assert_eq!(default.tuples.len(), 100);
    assert_eq!(
        response_bytes(&default.schema, &default.tuples),
        response_bytes(&asserted.schema, &asserted.tuples)
    );
    service.shutdown();
}

#[test]
fn restricted_assertion_is_ignored_while_fault_injection_is_active() {
    // The fault plan injects nothing (all rates zero) — its mere
    // presence must be enough to void integrity assertions, since a
    // fault-recovered relation may have dropped divisor tuples.
    let service = hint_service(ServiceConfig {
        storage_faults: Some(FaultPlan::seeded(7)),
        ..ServiceConfig::default()
    });
    let default = service
        .divide("enroll", "req", &unique_options(None))
        .unwrap();
    let asserted = service
        .divide("enroll", "req", &unique_options(Some(false)))
        .unwrap();
    assert_eq!(
        asserted.algorithm, default.algorithm,
        "under fault injection the assertion must not change the plan"
    );
    assert!(matches!(asserted.algorithm, Algorithm::HashDivision { .. }));
    service.shutdown();
}

const HINTED_PLAN: &str = "(divide (on s) (unique yes) (restricted no) \
     (scan enroll) (scan req))";

#[test]
fn plan_restricted_hints_obey_the_same_fault_gate() {
    let healthy = hint_service(ServiceConfig::default());
    let honored = healthy
        .exec_plan(HINTED_PLAN, &PlanOptions::default())
        .unwrap();
    assert_eq!(
        honored.algorithms,
        vec![Algorithm::HashAggregation { join: false }],
        "a healthy service honors the (restricted no) hint"
    );
    healthy.shutdown();

    let faulty = hint_service(ServiceConfig {
        storage_faults: Some(FaultPlan::seeded(7)),
        ..ServiceConfig::default()
    });
    let ignored = faulty
        .exec_plan(HINTED_PLAN, &PlanOptions::default())
        .unwrap();
    assert_eq!(ignored.algorithms.len(), 1);
    assert!(
        matches!(ignored.algorithms[0], Algorithm::HashDivision { .. }),
        "under fault injection the hint is ignored, got {:?}",
        ignored.algorithms[0]
    );
    // Same answer either way — the gate only constrains plan choice.
    assert_eq!(
        response_bytes(&honored.schema, &honored.tuples),
        response_bytes(&ignored.schema, &ignored.tuples)
    );
    faulty.shutdown();
}
