//! The service must answer exactly what the engine answers: for every
//! algorithm column of the paper's tables, a served quotient is
//! byte-identical (as a canonically ordered record set) to a direct
//! `reldiv_core::api::divide_relations` call — over both transports.

use reldiv_core::api::divide_relations;
use reldiv_core::Algorithm;
use reldiv_rel::{RecordCodec, Relation, Schema, Tuple};
use reldiv_service::{
    DivideRequest, DivisionClient, InProcClient, ServerHandle, Service, ServiceConfig, TcpClient,
};
use reldiv_workload::WorkloadSpec;

/// Canonical byte image of a relation: each tuple encoded with the
/// fixed-width record codec, records sorted. Two relations are the same
/// bag iff these are equal (duplicates preserved).
fn canonical_bytes(schema: &Schema, tuples: &[Tuple]) -> Vec<Vec<u8>> {
    let codec = RecordCodec::new(schema.clone());
    let mut records: Vec<Vec<u8>> = tuples
        .iter()
        .map(|t| codec.encode(t).expect("tuples fit their schema"))
        .collect();
    records.sort();
    records
}

fn workload() -> (Relation, Relation) {
    let w = WorkloadSpec {
        divisor_size: 6,
        quotient_size: 12,
        incomplete_groups: 9,
        incomplete_fill: 0.5,
        noise_per_group: 2,
        ..WorkloadSpec::default()
    }
    .generate(20260806);
    (w.dividend, w.divisor)
}

fn check_all_columns(client: &mut impl DivisionClient) {
    let (dividend, divisor) = workload();
    client.register("transcript", &dividend).unwrap();
    client.register("courses", &divisor).unwrap();

    for algorithm in Algorithm::table_columns() {
        let request = DivideRequest {
            dividend: "transcript".into(),
            divisor: "courses".into(),
            algorithm: Some(algorithm),
            assume_unique: false,
            spec: None,
            deadline_ms: None,
            profile: false,
            distribute: None,
            restricted: None,
            mem_budget: None,
        };
        let served = client.divide(&request).unwrap();
        let direct = divide_relations(&dividend, &divisor, algorithm).unwrap();

        assert_eq!(served.algorithm, algorithm);
        assert_eq!(served.schema, *direct.schema(), "{algorithm:?}");
        assert_eq!(
            canonical_bytes(&served.schema, &served.tuples),
            canonical_bytes(direct.schema(), direct.tuples()),
            "served and direct quotients differ for {algorithm:?}"
        );

        // A repeat of the same query is a cache hit serving the same bytes.
        let repeat = client.divide(&request).unwrap();
        assert!(repeat.cached, "{algorithm:?} repeat should hit the cache");
        assert!(!served.cached, "{algorithm:?} first run cannot be cached");
        assert_eq!(
            canonical_bytes(&repeat.schema, &repeat.tuples),
            canonical_bytes(&served.schema, &served.tuples),
        );
        assert_eq!(repeat.dividend_version, served.dividend_version);
        assert_eq!(repeat.divisor_version, served.divisor_version);
    }
}

#[test]
fn all_six_columns_match_direct_execution_in_process() {
    let service = Service::start(ServiceConfig::default()).expect("start service");
    let mut client = InProcClient::new(service.clone());
    check_all_columns(&mut client);
    let stats = service.stats();
    assert_eq!(stats.cache_hits, 6);
    assert_eq!(stats.cache_misses, 6);
    service.shutdown();
}

#[test]
fn all_six_columns_match_direct_execution_over_tcp() {
    let service = Service::start(ServiceConfig::default()).expect("start service");
    let mut server = ServerHandle::start(service, "127.0.0.1:0").unwrap();
    let mut client = TcpClient::connect(server.local_addr()).unwrap();
    client.ping().unwrap();
    check_all_columns(&mut client);
    server.shutdown();
}

#[test]
fn auto_algorithm_resolves_and_caches_like_the_explicit_choice() {
    let service = Service::start(ServiceConfig::default()).expect("start service");
    let mut client = InProcClient::new(service.clone());
    let (dividend, divisor) = workload();
    client.register("r", &dividend).unwrap();
    client.register("s", &divisor).unwrap();

    let auto = DivideRequest {
        dividend: "r".into(),
        divisor: "s".into(),
        algorithm: None,
        assume_unique: false,
        spec: None,
        deadline_ms: None,
        profile: false,
        distribute: None,
        restricted: None,
        mem_budget: None,
    };
    let first = client.divide(&auto).unwrap();
    assert!(!first.cached);
    // The resolved algorithm shares a cache entry with the explicit pick.
    let explicit = DivideRequest {
        algorithm: Some(first.algorithm),
        ..auto.clone()
    };
    assert!(client.divide(&explicit).unwrap().cached);
    assert!(client.divide(&auto).unwrap().cached);
    service.shutdown();
}

#[test]
fn errors_travel_over_tcp() {
    let service = Service::start(ServiceConfig::default()).expect("start service");
    let mut server = ServerHandle::start(service, "127.0.0.1:0").unwrap();
    let mut client = TcpClient::connect(server.local_addr()).unwrap();

    let request = DivideRequest {
        dividend: "nope".into(),
        divisor: "nada".into(),
        algorithm: None,
        assume_unique: false,
        spec: None,
        deadline_ms: None,
        profile: false,
        distribute: None,
        restricted: None,
        mem_budget: None,
    };
    assert!(matches!(
        client.divide(&request),
        Err(reldiv_service::ServiceError::UnknownRelation(_))
    ));
    assert!(matches!(
        client.drop_relation("nope"),
        Err(reldiv_service::ServiceError::UnknownRelation(_))
    ));
    let stats = client.stats().unwrap();
    assert_eq!(stats.errors, 1);
    server.shutdown();
}

#[test]
fn shutdown_request_stops_the_server() {
    let service = Service::start(ServiceConfig::default()).expect("start service");
    let mut server = ServerHandle::start(service, "127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let mut client = TcpClient::connect(addr).unwrap();
    client.shutdown_server().unwrap();
    server.wait_for_shutdown_request();
    server.shutdown();
    assert!(!server.service().is_accepting());
}
