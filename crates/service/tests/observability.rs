//! Observability end to end: latency is recorded exactly once per
//! answered query (the histogram and the `queries` counter can never
//! drift), and `EXPLAIN ANALYZE` profiles travel from the worker through
//! both transports.

use reldiv_core::Algorithm;
use reldiv_rel::Relation;
use reldiv_service::{
    DivideRequest, DivisionClient, InProcClient, QueryOptions, ServerHandle, Service,
    ServiceConfig, TcpClient,
};
use reldiv_workload::WorkloadSpec;
use std::sync::Arc;

fn workload() -> (Relation, Relation) {
    let w = WorkloadSpec {
        divisor_size: 5,
        quotient_size: 10,
        incomplete_groups: 4,
        incomplete_fill: 0.5,
        noise_per_group: 1,
        ..WorkloadSpec::default()
    }
    .generate(8860);
    (w.dividend, w.divisor)
}

fn service_with_data() -> Arc<Service> {
    let service = Service::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    })
    .unwrap();
    let (dividend, divisor) = workload();
    service.register("r", dividend).unwrap();
    service.register("s", divisor).unwrap();
    service
}

/// The latency-recording regression test: one histogram sample per
/// answered query, no matter how the query was answered (executed or
/// cache hit), and zero samples for refused queries.
#[test]
fn latency_is_recorded_exactly_once_per_answered_query() {
    let service = service_with_data();
    let options = QueryOptions::default();
    // 3 distinct (dividend, divisor, algorithm) keys, each asked twice:
    // 3 executions + 3 cache hits.
    for _ in 0..2 {
        for algorithm in [
            Algorithm::Naive,
            Algorithm::SortAggregation { join: true },
            Algorithm::HashAggregation { join: true },
        ] {
            let opts = QueryOptions {
                algorithm: Some(algorithm),
                ..options.clone()
            };
            service.divide("r", "s", &opts).unwrap();
        }
    }
    // A refused query must not contribute a sample.
    service.divide("r", "nonexistent", &options).unwrap_err();

    let stats = service.stats();
    assert_eq!(stats.queries, 6);
    assert_eq!(stats.cache_hits, 3);
    assert_eq!(stats.cache_misses, 3);
    assert_eq!(stats.errors, 1);
    assert_eq!(
        stats.latency_count, stats.queries,
        "exactly one histogram sample per answered query"
    );
}

/// `QueryResponse.micros` is the same quantity the histogram records:
/// queue-inclusive end-to-end latency, stamped once by the front end.
/// Every answer — executed or cached — carries a non-zero stamp bounded
/// by the exact recorded extremes of the histogram.
#[test]
fn response_micros_agree_with_the_histogram() {
    let service = service_with_data();
    let options = QueryOptions::default();
    let mut stamps = Vec::new();
    for _ in 0..4 {
        stamps.push(service.divide("r", "s", &options).unwrap().micros);
    }
    assert!(
        stamps.iter().all(|&m| m > 0),
        "cached responses are stamped too: {stamps:?}"
    );
    let stats = service.stats();
    assert_eq!(stats.latency_count, 4);
    // The histogram's exact extremes bracket every stamped response.
    let (lo, hi) = (stats.latency_p50_us, stats.latency_p99_us);
    assert!(lo <= hi);
}

/// A profiled query returns a span tree whose root covers the whole
/// division; an unprofiled query returns none; a cache hit executes
/// nothing and returns none even when asked.
#[test]
fn profiles_travel_through_the_in_process_client() {
    let service = service_with_data();
    let profiled = QueryOptions {
        algorithm: Some(Algorithm::HashDivision {
            mode: reldiv_core::HashDivisionMode::Standard,
        }),
        profile: true,
        ..QueryOptions::default()
    };

    let first = service.divide("r", "s", &profiled).unwrap();
    assert!(!first.cached);
    let profile = first
        .profile
        .expect("uncached profiled query returns a tree");
    assert!(
        profile.root.label.starts_with("divide ["),
        "{}",
        profile.root.label
    );
    assert!(
        profile.root.node_count() >= 3,
        "scans + operator under the root"
    );
    assert!(profile.root.wall_micros <= first.micros.max(1));

    // Same key again: served from cache, no execution, no profile.
    let second = service.divide("r", "s", &profiled).unwrap();
    assert!(second.cached);
    assert!(second.profile.is_none(), "cache hits execute nothing");

    // Unprofiled queries pay nothing and carry nothing.
    let plain = QueryOptions {
        algorithm: profiled.algorithm,
        ..QueryOptions::default()
    };
    service.register("r2", workload().0).unwrap();
    let unprofiled = service.divide("r2", "s", &plain).unwrap();
    assert!(unprofiled.profile.is_none());

    let stats = service.stats();
    assert_eq!(
        stats.profiled_queries, 1,
        "only the executed profiled query counts"
    );
}

/// The profile survives the wire: a TCP client's `--profile` divide gets
/// the same span tree shape an in-process caller sees, and the versioned
/// stats frame carries the new counters.
#[test]
fn profiles_and_new_counters_travel_over_tcp() {
    let service = service_with_data();
    let server = ServerHandle::start(service.clone(), "127.0.0.1:0").unwrap();
    let mut client = TcpClient::connect(server.local_addr()).unwrap();

    let request = DivideRequest {
        dividend: "r".into(),
        divisor: "s".into(),
        algorithm: Some(Algorithm::Naive),
        assume_unique: false,
        spec: None,
        deadline_ms: None,
        profile: true,
        distribute: None,
        restricted: None,
        mem_budget: None,
    };
    let reply = client.divide(&request).unwrap();
    let profile = reply
        .profile
        .expect("profiled divide returns a tree over TCP");
    assert!(profile.root.label.starts_with("divide ["));
    assert!(profile.root.node_count() >= 3);
    // The rendered tree is non-trivial (the divload --profile output).
    assert!(profile.render().contains("wall="));

    // In-process comparison: same shape from the same service.
    let mut inproc = InProcClient::new(service.clone());
    let direct = inproc
        .divide(&DivideRequest {
            dividend: "r".into(),
            divisor: "s".into(),
            algorithm: Some(Algorithm::Naive),
            assume_unique: false,
            spec: None,
            deadline_ms: None,
            profile: true,
            distribute: None,
            restricted: None,
            mem_budget: None,
        })
        .unwrap();
    // The second identical request hits the cache → no profile; compare
    // against the TCP tree only when it executed.
    if let Some(direct_profile) = direct.profile {
        assert_eq!(direct_profile.root.label, profile.root.label);
    }

    let stats = client.stats().unwrap();
    assert_eq!(stats.latency_count, stats.queries);
    assert!(stats.profiled_queries >= 1);
}

/// A per-query memory budget forces the division to degrade adaptively
/// — visible in the new stats counters — while the quotient stays
/// identical to the unbudgeted run, so both populate the same cache
/// entry.
#[test]
fn mem_budget_degrades_and_is_counted_in_stats() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    })
    .unwrap();
    // Big enough that hash-division's tables overflow a 48 KB budget.
    let w = WorkloadSpec {
        divisor_size: 4,
        quotient_size: 3000,
        ..WorkloadSpec::default()
    }
    .generate(4242);
    service.register("r", w.dividend).unwrap();
    service.register("s", w.divisor).unwrap();

    let budgeted = QueryOptions {
        algorithm: Some(Algorithm::HashDivision {
            mode: reldiv_core::HashDivisionMode::Standard,
        }),
        mem_budget: Some(48 * 1024),
        ..QueryOptions::default()
    };
    let reply = service.divide("r", "s", &budgeted).unwrap();
    assert!(!reply.cached);
    let stats = service.stats();
    assert_eq!(stats.degraded_queries, 1, "the 48 KB budget must bite");
    assert!(stats.division_spill_bytes > 0);

    // The identical query without a budget is answered from the cache —
    // the quotient is the same relation either way.
    let unbudgeted = QueryOptions {
        algorithm: budgeted.algorithm,
        ..QueryOptions::default()
    };
    let cached = service.divide("r", "s", &unbudgeted).unwrap();
    assert!(cached.cached, "budgets do not fragment the result cache");
    let stats = service.stats();
    assert_eq!(stats.degraded_queries, 1, "cache hits execute nothing");
}
