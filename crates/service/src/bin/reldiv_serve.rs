//! `reldiv-serve` — the division query server.
//!
//! ```text
//! reldiv-serve [--addr HOST:PORT] [--workers N] [--queue N] [--cache N]
//! ```
//!
//! Serves the length-prefixed protocol of `docs/PROTOCOL.md` until a
//! client sends a `Shutdown` request; shutdown is graceful (admitted
//! queries complete, new ones are refused).

use std::process::ExitCode;

use reldiv_service::{ServerHandle, Service, ServiceConfig};

fn usage() -> ! {
    eprintln!(
        "usage: reldiv-serve [--addr HOST:PORT] [--workers N] [--queue N] [--cache N] \
         [--deadline-ms MS]\n\
         defaults: --addr 127.0.0.1:7171 --workers 4 --queue 64 --cache 256, no deadline"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(args: &mut std::env::Args, flag: &str) -> T {
    let Some(value) = args.next() else { usage() };
    match value.parse() {
        Ok(parsed) => parsed,
        Err(_) => {
            eprintln!("bad value for {flag}: {value:?}");
            usage();
        }
    }
}

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7171".to_owned();
    let mut config = ServiceConfig::default();
    let mut args = std::env::args();
    args.next();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = parse(&mut args, "--addr"),
            "--workers" => config.workers = parse(&mut args, "--workers"),
            "--queue" => config.queue_depth = parse(&mut args, "--queue"),
            "--cache" => config.cache_capacity = parse(&mut args, "--cache"),
            "--deadline-ms" => {
                config.default_deadline = Some(std::time::Duration::from_millis(parse(
                    &mut args,
                    "--deadline-ms",
                )));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
    }

    let service = match Service::start(config.clone()) {
        Ok(service) => service,
        Err(e) => {
            eprintln!("reldiv-serve: cannot start the worker pool: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut server = match ServerHandle::start(service, addr.as_str()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("reldiv-serve: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "reldiv-serve listening on {} ({} workers, queue {}, cache {})",
        server.local_addr(),
        config.workers,
        config.queue_depth,
        config.cache_capacity
    );
    server.wait_for_shutdown_request();
    println!("reldiv-serve: shutdown requested, draining");
    server.shutdown();
    let stats = server.service().stats();
    println!(
        "reldiv-serve: served {} queries ({} cache hits, {} rejections), p99 {} us",
        stats.queries, stats.cache_hits, stats.rejections, stats.latency_p99_us
    );
    ExitCode::SUCCESS
}
