//! Clients: in-process (sharing the [`Service`] handle) and TCP (speaking
//! the wire protocol). Both implement [`DivisionClient`], so tests and
//! the load generator run identically against either transport.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;

use reldiv_rel::Relation;

use crate::error::{Result, ServiceError};
use crate::metrics::MetricsSnapshot;
use crate::proto::{self, DivideReply, DivideRequest, Reply, Request};
use crate::service::{QueryOptions, Service};

/// The operations a service client offers, transport-independent.
pub trait DivisionClient {
    /// Liveness probe.
    fn ping(&mut self) -> Result<()>;
    /// Installs (or replaces) a named relation; returns its version.
    fn register(&mut self, name: &str, relation: &Relation) -> Result<u64>;
    /// Removes a named relation.
    fn drop_relation(&mut self, name: &str) -> Result<()>;
    /// Runs a division query.
    fn divide(&mut self, request: &DivideRequest) -> Result<DivideReply>;
    /// Reads the service counters.
    fn stats(&mut self) -> Result<MetricsSnapshot>;
}

/// A client calling straight into an embedded [`Service`].
#[derive(Clone)]
pub struct InProcClient {
    service: Arc<Service>,
}

impl InProcClient {
    /// Wraps a service handle.
    pub fn new(service: Arc<Service>) -> InProcClient {
        InProcClient { service }
    }
}

impl DivisionClient for InProcClient {
    fn ping(&mut self) -> Result<()> {
        Ok(())
    }

    fn register(&mut self, name: &str, relation: &Relation) -> Result<u64> {
        self.service.register(name, relation.clone())
    }

    fn drop_relation(&mut self, name: &str) -> Result<()> {
        self.service.drop_relation(name)
    }

    fn divide(&mut self, request: &DivideRequest) -> Result<DivideReply> {
        let options = QueryOptions {
            algorithm: request.algorithm,
            assume_unique: request.assume_unique,
            spec: request.spec.clone(),
        };
        let r = self
            .service
            .divide(&request.dividend, &request.divisor, &options)?;
        Ok(DivideReply {
            algorithm: r.algorithm,
            cached: r.cached,
            dividend_version: r.dividend_version,
            divisor_version: r.divisor_version,
            micros: r.micros,
            ops: r.ops,
            schema: r.schema,
            tuples: r.tuples,
        })
    }

    fn stats(&mut self) -> Result<MetricsSnapshot> {
        Ok(self.service.stats())
    }
}

/// A client speaking the length-prefixed protocol over TCP.
pub struct TcpClient {
    stream: TcpStream,
}

impl TcpClient {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<TcpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpClient { stream })
    }

    fn call(&mut self, request: &Request) -> Result<Reply> {
        let payload = request.encode()?;
        proto::write_frame(&mut self.stream, &payload).map_err(io_err)?;
        let frame = proto::read_frame(&mut self.stream)
            .map_err(io_err)?
            .ok_or_else(|| ServiceError::Protocol("server closed the connection".into()))?;
        proto::decode_response(&frame)?
    }

    /// Asks the server to shut down gracefully. The server acknowledges,
    /// stops accepting connections, and drains in-flight queries.
    pub fn shutdown_server(&mut self) -> Result<()> {
        match self.call(&Request::Shutdown)? {
            Reply::ShuttingDown => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

fn io_err(e: io::Error) -> ServiceError {
    ServiceError::Protocol(format!("transport: {e}"))
}

fn unexpected(reply: &Reply) -> ServiceError {
    ServiceError::Protocol(format!("unexpected reply {reply:?}"))
}

impl DivisionClient for TcpClient {
    fn ping(&mut self) -> Result<()> {
        match self.call(&Request::Ping)? {
            Reply::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    fn register(&mut self, name: &str, relation: &Relation) -> Result<u64> {
        let request = Request::Register {
            name: name.to_owned(),
            schema: relation.schema().clone(),
            tuples: relation.tuples().to_vec(),
        };
        match self.call(&request)? {
            Reply::Registered { version } => Ok(version),
            other => Err(unexpected(&other)),
        }
    }

    fn drop_relation(&mut self, name: &str) -> Result<()> {
        let request = Request::DropRelation {
            name: name.to_owned(),
        };
        match self.call(&request)? {
            Reply::Dropped => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    fn divide(&mut self, request: &DivideRequest) -> Result<DivideReply> {
        match self.call(&Request::Divide(request.clone()))? {
            Reply::Divided(reply) => Ok(reply),
            other => Err(unexpected(&other)),
        }
    }

    fn stats(&mut self) -> Result<MetricsSnapshot> {
        match self.call(&Request::Stats)? {
            Reply::Stats(stats) => Ok(stats),
            other => Err(unexpected(&other)),
        }
    }
}
