//! Clients: in-process (sharing the [`Service`] handle) and TCP (speaking
//! the wire protocol). Both implement [`DivisionClient`], so tests and
//! the load generator run identically against either transport.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use reldiv_parallel::filter::BitVectorFilter;
use reldiv_rel::{Relation, Schema, Tuple};

use crate::error::{Result, ServiceError};
use crate::metrics::MetricsSnapshot;
use crate::proto::{
    self, DivideReply, DivideRequest, ExecPlanRequest, PartialQuotientReply, PlanReply,
    RepartitionRequest, Reply, Request, ShardRequest,
};
use crate::service::{PlanOptions, QueryOptions, Service};

/// The operations a service client offers, transport-independent.
pub trait DivisionClient {
    /// Liveness probe.
    fn ping(&mut self) -> Result<()>;
    /// Installs (or replaces) a named relation; returns its version.
    fn register(&mut self, name: &str, relation: &Relation) -> Result<u64>;
    /// Removes a named relation.
    fn drop_relation(&mut self, name: &str) -> Result<()>;
    /// Runs a division query.
    fn divide(&mut self, request: &DivideRequest) -> Result<DivideReply>;
    /// Executes a composed query plan.
    fn exec_plan(&mut self, request: &ExecPlanRequest) -> Result<PlanReply>;
    /// Reads the service counters.
    fn stats(&mut self) -> Result<MetricsSnapshot>;
}

/// A client calling straight into an embedded [`Service`].
#[derive(Clone)]
pub struct InProcClient {
    service: Arc<Service>,
}

impl InProcClient {
    /// Wraps a service handle.
    pub fn new(service: Arc<Service>) -> InProcClient {
        InProcClient { service }
    }
}

impl DivisionClient for InProcClient {
    fn ping(&mut self) -> Result<()> {
        Ok(())
    }

    fn register(&mut self, name: &str, relation: &Relation) -> Result<u64> {
        self.service.register(name, relation.clone())
    }

    fn drop_relation(&mut self, name: &str) -> Result<()> {
        self.service.drop_relation(name)
    }

    fn divide(&mut self, request: &DivideRequest) -> Result<DivideReply> {
        let options = QueryOptions {
            algorithm: request.algorithm,
            assume_unique: request.assume_unique,
            spec: request.spec.clone(),
            deadline: request.deadline_ms.map(Duration::from_millis),
            profile: request.profile,
            distribute: request.distribute,
            restricted_divisor: request.restricted,
            mem_budget: request.mem_budget.map(|b| b as usize),
        };
        let r = self
            .service
            .divide(&request.dividend, &request.divisor, &options)?;
        Ok(DivideReply {
            algorithm: r.algorithm,
            cached: r.cached,
            dividend_version: r.dividend_version,
            divisor_version: r.divisor_version,
            micros: r.micros,
            ops: r.ops,
            schema: r.schema,
            tuples: r.tuples,
            profile: r.profile,
        })
    }

    fn exec_plan(&mut self, request: &ExecPlanRequest) -> Result<PlanReply> {
        let options = PlanOptions {
            deadline: request.deadline_ms.map(Duration::from_millis),
            profile: request.profile,
        };
        let r = self.service.exec_plan(&request.plan, &options)?;
        Ok(PlanReply {
            algorithms: r.algorithms,
            cached: r.cached,
            micros: r.micros,
            ops: r.ops,
            relations: r.relations,
            schema: r.schema,
            tuples: r.tuples,
            profile: r.profile,
        })
    }

    fn stats(&mut self) -> Result<MetricsSnapshot> {
        Ok(self.service.stats())
    }
}

/// A client speaking the length-prefixed protocol over TCP.
pub struct TcpClient {
    stream: TcpStream,
}

impl TcpClient {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<TcpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpClient { stream })
    }

    fn call(&mut self, request: &Request) -> Result<Reply> {
        let payload = request.encode()?;
        proto::write_frame(&mut self.stream, &payload).map_err(io_err)?;
        let frame = proto::read_frame(&mut self.stream)
            .map_err(io_err)?
            .ok_or_else(|| ServiceError::Protocol("server closed the connection".into()))?;
        proto::decode_response(&frame)?
    }

    /// Asks the server to shut down gracefully. The server acknowledges,
    /// stops accepting connections, and drains in-flight queries.
    pub fn shutdown_server(&mut self) -> Result<()> {
        match self.call(&Request::Shutdown)? {
            Reply::ShuttingDown => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Installs one shard of a hash-partitioned relation on the node;
    /// returns the node's catalog version for it.
    pub fn shard(&mut self, request: &ShardRequest) -> Result<u64> {
        match self.call(&Request::Shard(request.clone()))? {
            Reply::Sharded { version } => Ok(version),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the node to hash-partition a stored relation's local tuples;
    /// returns `(schema, buckets, filtered)`.
    pub fn repartition(
        &mut self,
        request: &RepartitionRequest,
    ) -> Result<(Schema, Vec<Vec<Tuple>>, u64)> {
        match self.call(&Request::Repartition(request.clone()))? {
            Reply::Repartitioned {
                schema,
                buckets,
                filtered,
            } => Ok((schema, buckets, filtered)),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the node to build a bit-vector filter over a stored
    /// relation's local tuples; returns `(filter, insertions)`.
    pub fn build_filter(
        &mut self,
        name: &str,
        keys: &[usize],
        bits: u32,
    ) -> Result<(BitVectorFilter, u64)> {
        let request = Request::BuildFilter {
            name: name.to_owned(),
            keys: keys.to_vec(),
            bits,
            epoch: None,
        };
        match self.call(&request)? {
            Reply::Filter { filter, insertions } => Ok((filter, insertions)),
            other => Err(unexpected(&other)),
        }
    }

    /// Runs one node's share of a cluster division; the tag is echoed in
    /// the reply so a collection site can map it back.
    pub fn divide_partial(
        &mut self,
        tag: u16,
        query: &DivideRequest,
    ) -> Result<PartialQuotientReply> {
        let request = Request::DividePartial {
            tag,
            query: query.clone(),
            epoch: None,
        };
        match self.call(&request)? {
            Reply::PartialQuotient(reply) => Ok(reply),
            other => Err(unexpected(&other)),
        }
    }
}

fn io_err(e: io::Error) -> ServiceError {
    ServiceError::Protocol(format!("transport: {e}"))
}

fn unexpected(reply: &Reply) -> ServiceError {
    ServiceError::Protocol(format!("unexpected reply {reply:?}"))
}

impl DivisionClient for TcpClient {
    fn ping(&mut self) -> Result<()> {
        match self.call(&Request::Ping)? {
            Reply::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    fn register(&mut self, name: &str, relation: &Relation) -> Result<u64> {
        let request = Request::Register {
            name: name.to_owned(),
            schema: relation.schema().clone(),
            tuples: relation.tuples().to_vec(),
        };
        match self.call(&request)? {
            Reply::Registered { version } => Ok(version),
            other => Err(unexpected(&other)),
        }
    }

    fn drop_relation(&mut self, name: &str) -> Result<()> {
        let request = Request::DropRelation {
            name: name.to_owned(),
        };
        match self.call(&request)? {
            Reply::Dropped => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    fn divide(&mut self, request: &DivideRequest) -> Result<DivideReply> {
        match self.call(&Request::Divide(request.clone()))? {
            Reply::Divided(reply) => Ok(reply),
            other => Err(unexpected(&other)),
        }
    }

    fn exec_plan(&mut self, request: &ExecPlanRequest) -> Result<PlanReply> {
        match self.call(&Request::ExecPlan(request.clone()))? {
            Reply::Plan(reply) => Ok(reply),
            other => Err(unexpected(&other)),
        }
    }

    fn stats(&mut self) -> Result<MetricsSnapshot> {
        match self.call(&Request::Stats)? {
            Reply::Stats(stats) => Ok(stats),
            other => Err(unexpected(&other)),
        }
    }
}

/// Retry schedule for [`RetryingClient`]: bounded attempts with jittered
/// exponential backoff. The jitter (a deterministic splitmix64 stream
/// seeded per client) keeps a fleet of clients retrying an overloaded
/// server from stampeding it in lockstep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Retries after the first attempt (0 disables retrying).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub base: Duration,
    /// Upper bound on any single backoff.
    pub cap: Duration,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            max_retries: 4,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(250),
            seed: 0x5EED,
        }
    }
}

impl BackoffPolicy {
    /// The jittered delay before retry number `attempt` (1-based):
    /// uniformly in `[half, full]` of the capped exponential step.
    fn delay(&self, attempt: u32, rng: &mut u64) -> Duration {
        let exp = self.base.saturating_mul(1u32 << (attempt - 1).min(20));
        let full = exp.min(self.cap).as_nanos() as u64;
        *rng = splitmix64(*rng);
        let jittered = full / 2 + if full == 0 { 0 } else { *rng % (full / 2 + 1) };
        Duration::from_nanos(jittered)
    }
}

fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A [`DivisionClient`] decorator that retries
/// [retryable](ServiceError::is_retryable) failures — admission-control
/// rejections and worker deaths — with jittered exponential backoff.
/// Non-retryable errors (bad requests, unknown relations, deadline
/// exceeded, protocol faults) pass straight through.
pub struct RetryingClient<C> {
    inner: C,
    policy: BackoffPolicy,
    rng: u64,
    retries_performed: u64,
}

impl<C: DivisionClient> RetryingClient<C> {
    /// Wraps `inner` with the given retry schedule.
    pub fn new(inner: C, policy: BackoffPolicy) -> RetryingClient<C> {
        RetryingClient {
            inner,
            policy,
            rng: splitmix64(policy.seed),
            retries_performed: 0,
        }
    }

    /// The wrapped client.
    pub fn into_inner(self) -> C {
        self.inner
    }

    /// Total retries this client has performed (observability for load
    /// generators and the chaos harness).
    pub fn retries_performed(&self) -> u64 {
        self.retries_performed
    }

    fn with_retry<T>(&mut self, mut op: impl FnMut(&mut C) -> Result<T>) -> Result<T> {
        let mut attempt = 0u32;
        loop {
            match op(&mut self.inner) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_retryable() && attempt < self.policy.max_retries => {
                    attempt += 1;
                    self.retries_performed += 1;
                    std::thread::sleep(self.policy.delay(attempt, &mut self.rng));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl<C: DivisionClient> DivisionClient for RetryingClient<C> {
    fn ping(&mut self) -> Result<()> {
        self.with_retry(|c| c.ping())
    }

    fn register(&mut self, name: &str, relation: &Relation) -> Result<u64> {
        // Registering is idempotent (it replaces), so retrying is safe.
        self.with_retry(|c| c.register(name, relation))
    }

    fn drop_relation(&mut self, name: &str) -> Result<()> {
        self.with_retry(|c| c.drop_relation(name))
    }

    fn divide(&mut self, request: &DivideRequest) -> Result<DivideReply> {
        self.with_retry(|c| c.divide(request))
    }

    fn exec_plan(&mut self, request: &ExecPlanRequest) -> Result<PlanReply> {
        self.with_retry(|c| c.exec_plan(request))
    }

    fn stats(&mut self) -> Result<MetricsSnapshot> {
        self.with_retry(|c| c.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reldiv_core::Algorithm;
    use reldiv_rel::counters::OpSnapshot;
    use reldiv_rel::{Field, Schema};

    /// A scripted client: *every* method fails `failures_left` times
    /// with the configured (typed, cloneable) error, then succeeds with
    /// a stub value. No method panics — a mock that `unimplemented!()`s
    /// half the trait silently exempts those methods from coverage.
    struct Flaky {
        failures_left: u32,
        calls: u32,
        error: ServiceError,
    }

    impl Flaky {
        fn new(failures_left: u32, error: ServiceError) -> Flaky {
            Flaky {
                failures_left,
                calls: 0,
                error,
            }
        }

        fn step(&mut self) -> Result<()> {
            self.calls += 1;
            if self.failures_left > 0 {
                self.failures_left -= 1;
                Err(self.error.clone())
            } else {
                Ok(())
            }
        }
    }

    impl DivisionClient for Flaky {
        fn ping(&mut self) -> Result<()> {
            self.step()
        }
        fn register(&mut self, _: &str, _: &Relation) -> Result<u64> {
            self.step().map(|()| 1)
        }
        fn drop_relation(&mut self, _: &str) -> Result<()> {
            self.step()
        }
        fn divide(&mut self, _: &DivideRequest) -> Result<DivideReply> {
            self.step().map(|()| DivideReply {
                algorithm: Algorithm::Naive,
                cached: false,
                dividend_version: 1,
                divisor_version: 1,
                micros: 1,
                ops: OpSnapshot::default(),
                schema: Schema::new(vec![Field::int("q")]),
                tuples: Arc::new(Vec::new()),
                profile: None,
            })
        }
        fn exec_plan(&mut self, _: &ExecPlanRequest) -> Result<PlanReply> {
            self.step().map(|()| PlanReply {
                algorithms: Vec::new(),
                cached: false,
                micros: 1,
                ops: OpSnapshot::default(),
                relations: Vec::new(),
                schema: Schema::new(vec![Field::int("q")]),
                tuples: Arc::new(Vec::new()),
                profile: None,
            })
        }
        fn stats(&mut self) -> Result<MetricsSnapshot> {
            self.step().map(|()| MetricsSnapshot::default())
        }
    }

    fn fast_policy(max_retries: u32) -> BackoffPolicy {
        BackoffPolicy {
            max_retries,
            base: Duration::ZERO,
            cap: Duration::ZERO,
            seed: 7,
        }
    }

    fn sample_request() -> DivideRequest {
        DivideRequest {
            dividend: "r".into(),
            divisor: "s".into(),
            algorithm: None,
            assume_unique: false,
            spec: None,
            deadline_ms: None,
            profile: false,
            distribute: None,
            restricted: None,
            mem_budget: None,
        }
    }

    /// A named exercise of one [`DivisionClient`] method.
    type MethodCall = (&'static str, fn(&mut RetryingClient<Flaky>) -> Result<()>);

    /// Every method a [`DivisionClient`] offers, as a callable the retry
    /// tests can iterate over — so no method silently escapes coverage.
    fn all_methods() -> Vec<MethodCall> {
        vec![
            ("ping", |c| c.ping()),
            ("register", |c| {
                let relation =
                    Relation::from_tuples(Schema::new(vec![Field::int("q")]), vec![]).unwrap();
                c.register("r", &relation).map(|_| ())
            }),
            ("drop_relation", |c| c.drop_relation("r")),
            ("divide", |c| c.divide(&sample_request()).map(|_| ())),
            ("exec_plan", |c| {
                let request = ExecPlanRequest {
                    plan: "(scan r)".into(),
                    deadline_ms: None,
                    profile: false,
                };
                c.exec_plan(&request).map(|_| ())
            }),
            ("stats", |c| c.stats().map(|_| ())),
        ]
    }

    #[test]
    fn every_method_retries_transient_failures_until_success() {
        for (name, call) in all_methods() {
            let mut c =
                RetryingClient::new(Flaky::new(3, ServiceError::Overloaded), fast_policy(4));
            call(&mut c).unwrap_or_else(|e| panic!("{name} should recover: {e}"));
            assert_eq!(c.retries_performed(), 3, "{name}");
            assert_eq!(c.into_inner().calls, 4, "{name}: 1 attempt + 3 retries");
        }
    }

    #[test]
    fn every_method_gives_up_after_max_retries() {
        for (name, call) in all_methods() {
            let mut c = RetryingClient::new(
                Flaky::new(u32::MAX, ServiceError::Overloaded),
                fast_policy(2),
            );
            assert_eq!(
                call(&mut c).unwrap_err(),
                ServiceError::Overloaded,
                "{name}"
            );
            assert_eq!(c.into_inner().calls, 3, "{name}: 1 attempt + 2 retries");
        }
    }

    #[test]
    fn every_method_passes_non_retryable_errors_through_immediately() {
        for (name, call) in all_methods() {
            let mut c = RetryingClient::new(
                Flaky::new(u32::MAX, ServiceError::BadRequest("nope".into())),
                fast_policy(5),
            );
            assert!(
                matches!(call(&mut c), Err(ServiceError::BadRequest(_))),
                "{name}"
            );
            assert_eq!(c.retries_performed(), 0, "{name}");
            assert_eq!(c.into_inner().calls, 1, "{name}");
        }
    }

    #[test]
    fn backoff_is_jittered_within_the_exponential_envelope() {
        let policy = BackoffPolicy {
            max_retries: 8,
            base: Duration::from_millis(4),
            cap: Duration::from_millis(64),
            seed: 42,
        };
        let mut rng = splitmix64(policy.seed);
        let mut saw_distinct = false;
        let mut prev = None;
        for attempt in 1..=8 {
            let exp = policy
                .base
                .saturating_mul(1 << (attempt - 1))
                .min(policy.cap);
            let d = policy.delay(attempt, &mut rng);
            assert!(
                d >= exp / 2 && d <= exp,
                "attempt {attempt}: {d:?} vs {exp:?}"
            );
            if prev.is_some() && prev != Some(d) {
                saw_distinct = true;
            }
            prev = Some(d);
        }
        assert!(saw_distinct, "jitter should vary the delays");
    }
}
