//! The result caches (single divisions and whole plans).
//!
//! Keys embed the exact catalog versions of every input, the column
//! spec, and the (resolved) algorithm — or, for plans, the canonical
//! plan text — so a cached result can never be served for data it was
//! not computed from: an update installs a new version number and the
//! new key simply misses. Entries referencing a replaced or dropped
//! relation are additionally purged eagerly so dead results do not
//! occupy capacity until eviction reaches them.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

use parking_lot::Mutex;
use reldiv_core::Algorithm;
use reldiv_rel::counters::OpSnapshot;
use reldiv_rel::{Schema, Tuple};

/// Cache key: everything a division quotient depends on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Dividend name and the exact version the query resolved.
    pub dividend: (String, u64),
    /// Divisor name and the exact version the query resolved.
    pub divisor: (String, u64),
    /// Dividend columns matched against the divisor.
    pub divisor_keys: Vec<usize>,
    /// Dividend columns forming the quotient.
    pub quotient_keys: Vec<usize>,
    /// Resolved algorithm, as its wire code (auto choices are resolved
    /// before keying, so `auto` and the explicit pick share entries).
    pub algorithm: u8,
    /// Whether the inputs were declared duplicate-free (changes the
    /// plans the aggregate algorithms run).
    pub assume_unique: bool,
}

/// A cached quotient with the provenance the response reports.
#[derive(Debug)]
pub struct CachedResult {
    /// Quotient schema.
    pub schema: Schema,
    /// Quotient tuples, shared with every response served from this
    /// entry.
    pub tuples: Arc<Vec<Tuple>>,
    /// Abstract operations the original execution performed.
    pub ops: OpSnapshot,
}

/// Cache key for a whole plan: the canonical plan text (so formatting
/// variants of the same plan share an entry) plus the exact catalog
/// version of every relation the plan reads.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanCacheKey {
    /// Canonical plan text (the parser's round-trip print).
    pub text: String,
    /// `(name, version)` of every relation read, sorted by name.
    pub pins: Vec<(String, u64)>,
}

/// A cached plan result.
#[derive(Debug)]
pub struct CachedPlan {
    /// Result schema.
    pub schema: Schema,
    /// Result tuples, shared with every response served from this entry.
    pub tuples: Arc<Vec<Tuple>>,
    /// The algorithm each division ran with, in execution order.
    pub algorithms: Vec<Algorithm>,
    /// Abstract operations the original execution performed.
    pub ops: OpSnapshot,
}

struct Entry<V> {
    value: Arc<V>,
    last_used: u64,
}

struct Inner<K, V> {
    map: HashMap<K, Entry<V>>,
    clock: u64,
}

/// The shared LRU machinery both caches are built on.
struct Lru<K, V> {
    inner: Mutex<Inner<K, V>>,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> Lru<K, V> {
    fn new(capacity: usize) -> Lru<K, V> {
        Lru {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                clock: 0,
            }),
            capacity,
        }
    }

    fn get(&self, key: &K) -> Option<Arc<V>> {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        inner.map.get_mut(key).map(|e| {
            e.last_used = clock;
            e.value.clone()
        })
    }

    fn insert(&self, key: K, value: Arc<V>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            if let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&oldest);
            }
        }
        inner.map.insert(
            key,
            Entry {
                value,
                last_used: clock,
            },
        );
    }

    fn retain(&self, keep: impl FnMut(&K) -> bool) {
        let mut keep = keep;
        self.inner.lock().map.retain(|k, _| keep(k));
    }

    fn len(&self) -> usize {
        self.inner.lock().map.len()
    }
}

/// A bounded LRU cache of division results.
pub struct ResultCache {
    lru: Lru<CacheKey, CachedResult>,
}

impl ResultCache {
    /// A cache holding at most `capacity` results (0 disables caching).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            lru: Lru::new(capacity),
        }
    }

    /// Looks up a result, refreshing its recency.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<CachedResult>> {
        self.lru.get(key)
    }

    /// Inserts a result, evicting the least-recently-used entry when at
    /// capacity.
    pub fn insert(&self, key: CacheKey, value: Arc<CachedResult>) {
        self.lru.insert(key, value);
    }

    /// Drops every entry that reads `relation` (as dividend or divisor),
    /// whatever version. Called on catalog updates and drops.
    pub fn invalidate_relation(&self, relation: &str) {
        self.lru
            .retain(|k| k.dividend.0 != relation && k.divisor.0 != relation);
    }

    /// Current number of cached results.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A bounded LRU cache of whole-plan results.
pub struct PlanCache {
    lru: Lru<PlanCacheKey, CachedPlan>,
}

impl PlanCache {
    /// A cache holding at most `capacity` results (0 disables caching).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            lru: Lru::new(capacity),
        }
    }

    /// Looks up a plan result, refreshing its recency.
    pub fn get(&self, key: &PlanCacheKey) -> Option<Arc<CachedPlan>> {
        self.lru.get(key)
    }

    /// Inserts a plan result, evicting the least-recently-used entry
    /// when at capacity.
    pub fn insert(&self, key: PlanCacheKey, value: Arc<CachedPlan>) {
        self.lru.insert(key, value);
    }

    /// Drops every entry whose plan reads `relation`, whatever version.
    pub fn invalidate_relation(&self, relation: &str) {
        self.lru
            .retain(|k| k.pins.iter().all(|(name, _)| name != relation));
    }

    /// Current number of cached plan results.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// Whether the cache holds no plan results.
    pub fn is_empty(&self) -> bool {
        self.lru.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reldiv_rel::schema::Field;
    use reldiv_rel::tuple::ints;

    fn key(r: &str, rv: u64, s: &str, sv: u64) -> CacheKey {
        CacheKey {
            dividend: (r.to_owned(), rv),
            divisor: (s.to_owned(), sv),
            divisor_keys: vec![1],
            quotient_keys: vec![0],
            algorithm: 5,
            assume_unique: false,
        }
    }

    fn result(v: i64) -> Arc<CachedResult> {
        Arc::new(CachedResult {
            schema: Schema::new(vec![Field::int("q")]),
            tuples: Arc::new(vec![ints(&[v])]),
            ops: OpSnapshot::default(),
        })
    }

    #[test]
    fn hit_returns_inserted_value() {
        let c = ResultCache::new(4);
        c.insert(key("r", 1, "s", 2), result(7));
        let got = c.get(&key("r", 1, "s", 2)).unwrap();
        assert_eq!(got.tuples[0], ints(&[7]));
        assert!(c.get(&key("r", 2, "s", 2)).is_none(), "version mismatch");
    }

    #[test]
    fn lru_evicts_the_coldest() {
        let c = ResultCache::new(2);
        c.insert(key("r", 1, "s", 1), result(1));
        c.insert(key("r", 2, "s", 1), result(2));
        c.get(&key("r", 1, "s", 1)); // refresh the first
        c.insert(key("r", 3, "s", 1), result(3)); // evicts version 2
        assert!(c.get(&key("r", 1, "s", 1)).is_some());
        assert!(c.get(&key("r", 2, "s", 1)).is_none());
        assert!(c.get(&key("r", 3, "s", 1)).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn invalidate_purges_both_roles() {
        let c = ResultCache::new(8);
        c.insert(key("a", 1, "b", 1), result(1));
        c.insert(key("b", 1, "c", 1), result(2));
        c.insert(key("c", 1, "d", 1), result(3));
        c.invalidate_relation("b");
        assert_eq!(c.len(), 1);
        assert!(c.get(&key("c", 1, "d", 1)).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let c = ResultCache::new(0);
        c.insert(key("r", 1, "s", 1), result(1));
        assert!(c.get(&key("r", 1, "s", 1)).is_none());
        assert!(c.is_empty());
    }

    fn plan_key(text: &str, pins: &[(&str, u64)]) -> PlanCacheKey {
        PlanCacheKey {
            text: text.to_owned(),
            pins: pins.iter().map(|(n, v)| ((*n).to_owned(), *v)).collect(),
        }
    }

    fn plan_result(v: i64) -> Arc<CachedPlan> {
        Arc::new(CachedPlan {
            schema: Schema::new(vec![Field::int("q")]),
            tuples: Arc::new(vec![ints(&[v])]),
            algorithms: vec![reldiv_core::Algorithm::Naive],
            ops: OpSnapshot::default(),
        })
    }

    #[test]
    fn plan_cache_keys_on_text_and_pins() {
        let c = PlanCache::new(4);
        let k = plan_key("(scan r)", &[("r", 3)]);
        c.insert(k.clone(), plan_result(1));
        assert!(c.get(&k).is_some());
        assert!(
            c.get(&plan_key("(scan r)", &[("r", 4)])).is_none(),
            "a new relation version must miss"
        );
        assert!(
            c.get(&plan_key("(distinct (scan r))", &[("r", 3)]))
                .is_none(),
            "a different plan must miss"
        );
    }

    #[test]
    fn plan_cache_invalidates_any_pinned_relation() {
        let c = PlanCache::new(8);
        c.insert(
            plan_key("(join (on (a a)) (scan r) (scan s))", &[("r", 1), ("s", 1)]),
            plan_result(1),
        );
        c.insert(plan_key("(scan t)", &[("t", 1)]), plan_result(2));
        c.invalidate_relation("s");
        assert_eq!(c.len(), 1);
        assert!(c.get(&plan_key("(scan t)", &[("t", 1)])).is_some());
    }
}
