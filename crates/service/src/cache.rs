//! The result cache.
//!
//! Keys embed the exact catalog versions of both inputs, the column
//! spec, and the (resolved) algorithm, so a cached quotient can never be
//! served for data it was not computed from: an update installs a new
//! version number and the new key simply misses. Entries referencing a
//! replaced or dropped relation are additionally purged eagerly so dead
//! results do not occupy capacity until eviction reaches them.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use reldiv_rel::counters::OpSnapshot;
use reldiv_rel::{Schema, Tuple};

/// Cache key: everything the quotient depends on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Dividend name and the exact version the query resolved.
    pub dividend: (String, u64),
    /// Divisor name and the exact version the query resolved.
    pub divisor: (String, u64),
    /// Dividend columns matched against the divisor.
    pub divisor_keys: Vec<usize>,
    /// Dividend columns forming the quotient.
    pub quotient_keys: Vec<usize>,
    /// Resolved algorithm, as its wire code (auto choices are resolved
    /// before keying, so `auto` and the explicit pick share entries).
    pub algorithm: u8,
    /// Whether the inputs were declared duplicate-free (changes the
    /// plans the aggregate algorithms run).
    pub assume_unique: bool,
}

/// A cached quotient with the provenance the response reports.
#[derive(Debug)]
pub struct CachedResult {
    /// Quotient schema.
    pub schema: Schema,
    /// Quotient tuples, shared with every response served from this
    /// entry.
    pub tuples: Arc<Vec<Tuple>>,
    /// Abstract operations the original execution performed.
    pub ops: OpSnapshot,
}

struct Entry {
    value: Arc<CachedResult>,
    last_used: u64,
}

struct Inner {
    map: HashMap<CacheKey, Entry>,
    clock: u64,
}

/// A bounded LRU cache of division results.
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl ResultCache {
    /// A cache holding at most `capacity` results (0 disables caching).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                clock: 0,
            }),
            capacity,
        }
    }

    /// Looks up a result, refreshing its recency.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<CachedResult>> {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        inner.map.get_mut(key).map(|e| {
            e.last_used = clock;
            e.value.clone()
        })
    }

    /// Inserts a result, evicting the least-recently-used entry when at
    /// capacity.
    pub fn insert(&self, key: CacheKey, value: Arc<CachedResult>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            if let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&oldest);
            }
        }
        inner.map.insert(
            key,
            Entry {
                value,
                last_used: clock,
            },
        );
    }

    /// Drops every entry that reads `relation` (as dividend or divisor),
    /// whatever version. Called on catalog updates and drops.
    pub fn invalidate_relation(&self, relation: &str) {
        self.inner
            .lock()
            .map
            .retain(|k, _| k.dividend.0 != relation && k.divisor.0 != relation);
    }

    /// Current number of cached results.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reldiv_rel::schema::Field;
    use reldiv_rel::tuple::ints;

    fn key(r: &str, rv: u64, s: &str, sv: u64) -> CacheKey {
        CacheKey {
            dividend: (r.to_owned(), rv),
            divisor: (s.to_owned(), sv),
            divisor_keys: vec![1],
            quotient_keys: vec![0],
            algorithm: 5,
            assume_unique: false,
        }
    }

    fn result(v: i64) -> Arc<CachedResult> {
        Arc::new(CachedResult {
            schema: Schema::new(vec![Field::int("q")]),
            tuples: Arc::new(vec![ints(&[v])]),
            ops: OpSnapshot::default(),
        })
    }

    #[test]
    fn hit_returns_inserted_value() {
        let c = ResultCache::new(4);
        c.insert(key("r", 1, "s", 2), result(7));
        let got = c.get(&key("r", 1, "s", 2)).unwrap();
        assert_eq!(got.tuples[0], ints(&[7]));
        assert!(c.get(&key("r", 2, "s", 2)).is_none(), "version mismatch");
    }

    #[test]
    fn lru_evicts_the_coldest() {
        let c = ResultCache::new(2);
        c.insert(key("r", 1, "s", 1), result(1));
        c.insert(key("r", 2, "s", 1), result(2));
        c.get(&key("r", 1, "s", 1)); // refresh the first
        c.insert(key("r", 3, "s", 1), result(3)); // evicts version 2
        assert!(c.get(&key("r", 1, "s", 1)).is_some());
        assert!(c.get(&key("r", 2, "s", 1)).is_none());
        assert!(c.get(&key("r", 3, "s", 1)).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn invalidate_purges_both_roles() {
        let c = ResultCache::new(8);
        c.insert(key("a", 1, "b", 1), result(1));
        c.insert(key("b", 1, "c", 1), result(2));
        c.insert(key("c", 1, "d", 1), result(3));
        c.invalidate_relation("b");
        assert_eq!(c.len(), 1);
        assert!(c.get(&key("c", 1, "d", 1)).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let c = ResultCache::new(0);
        c.insert(key("r", 1, "s", 1), result(1));
        assert!(c.get(&key("r", 1, "s", 1)).is_none());
        assert!(c.is_empty());
    }
}
