//! The TCP front end: length-prefixed frames over `std::net`.
//!
//! One thread accepts connections; each connection gets a handler thread
//! that decodes [`Request`] frames, dispatches them to the shared
//! [`Service`], and writes [`Response`] frames back. A `Shutdown` request
//! is acknowledged and then surfaced to whoever is blocked in
//! [`ServerHandle::wait_for_shutdown_request`] (the `reldiv-serve`
//! binary), which stops the listener and drains the service.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};
use reldiv_rel::Relation;

use crate::error::ServiceError;
use crate::proto::{
    self, DivideReply, EpochRequest, PartialQuotientReply, PlanReply, Reply, Request, Response,
};
use crate::service::{ClusterEpochState, PlanOptions, QueryOptions, Service, ShardInfo};

struct Shared {
    service: Arc<Service>,
    stopping: AtomicBool,
    shutdown_requested: Mutex<bool>,
    shutdown_cv: Condvar,
    // Live connection sockets, so `kill` can sever them mid-frame.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
}

/// A running TCP server.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts serving `service`.
    pub fn start(service: Arc<Service>, addr: impl ToSocketAddrs) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            service,
            stopping: AtomicBool::new(false),
            shutdown_requested: Mutex::new(false),
            shutdown_cv: Condvar::new(),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
        });
        let accept_shared = shared.clone();
        let accept_thread = std::thread::Builder::new()
            .name("reldiv-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(ServerHandle {
            shared,
            addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service this server fronts.
    pub fn service(&self) -> &Arc<Service> {
        &self.shared.service
    }

    /// Blocks until some client sends a `Shutdown` request (or
    /// [`ServerHandle::shutdown`] is called from another thread).
    pub fn wait_for_shutdown_request(&self) {
        let mut requested = self.shared.shutdown_requested.lock();
        while !*requested {
            self.shared.shutdown_cv.wait(&mut requested);
        }
    }

    /// Stops accepting connections, then drains the service gracefully
    /// (admitted queries complete; new ones are refused). Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.stopping.store(true, Ordering::Release);
        *self.shared.shutdown_requested.lock() = true;
        self.shared.shutdown_cv.notify_all();
        // Nudge the accept loop out of its blocking accept().
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        self.shared.service.shutdown();
    }

    /// Simulates node death: stops accepting, severs every live
    /// connection mid-frame (so clients see a closed socket rather than
    /// a graceful `ShuttingDown` refusal), and aborts in-flight worker
    /// executions — a killed node must stop computing, not finish its
    /// quotients off-wire. Idempotent.
    pub fn kill(&mut self) {
        self.shared.stopping.store(true, Ordering::Release);
        *self.shared.shutdown_requested.lock() = true;
        self.shared.shutdown_cv.notify_all();
        let _ = TcpStream::connect(self.addr);
        for (_, stream) in self.shared.conns.lock().drain() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        self.shared.service.abort();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stopping.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_shared = shared.clone();
        let _ = std::thread::Builder::new()
            .name("reldiv-conn".into())
            .spawn(move || handle_connection(stream, conn_shared));
    }
}

fn handle_connection(mut stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
    if let Ok(clone) = stream.try_clone() {
        shared.conns.lock().insert(conn_id, clone);
    }
    // Deregister on every exit path so the registry stays bounded.
    struct Deregister<'a>(&'a Shared, u64);
    impl Drop for Deregister<'_> {
        fn drop(&mut self) {
            self.0.conns.lock().remove(&self.1);
        }
    }
    let _guard = Deregister(&shared, conn_id);
    loop {
        let payload = match proto::read_frame(&mut stream) {
            Ok(Some(payload)) => payload,
            Ok(None) => return,
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // A hostile or corrupt length prefix (e.g. a 4 GiB frame):
                // tell the client what happened, then drop the connection
                // rather than allocate.
                let response: Response = Err(ServiceError::Protocol(e.to_string()));
                if let Ok(bytes) = proto::encode_response(&response) {
                    let _ = proto::write_frame(&mut stream, &bytes);
                }
                return;
            }
            Err(_) => return,
        };
        let (response, shutdown) = match Request::decode(&payload) {
            Ok(request) => dispatch(&shared, request),
            Err(e) => (Err(e), false),
        };
        let Ok(bytes) = proto::encode_response(&response) else {
            return;
        };
        if proto::write_frame(&mut stream, &bytes).is_err() {
            return;
        }
        if shutdown {
            *shared.shutdown_requested.lock() = true;
            shared.shutdown_cv.notify_all();
            return;
        }
    }
}

/// Runs one request against the service; the boolean asks the server to
/// begin shutting down after the response is sent.
fn dispatch(shared: &Shared, request: Request) -> (Response, bool) {
    let service = &shared.service;
    let response = match request {
        Request::Ping => Ok(Reply::Pong),
        Request::Register {
            name,
            schema,
            tuples,
        } => Relation::from_tuples(schema, tuples)
            .map_err(|e| ServiceError::BadRequest(e.to_string()))
            .and_then(|relation| service.register(&name, relation))
            .map(|version| Reply::Registered { version }),
        Request::DropRelation { name } => service.drop_relation(&name).map(|()| Reply::Dropped),
        Request::Divide(q) => {
            let options = QueryOptions {
                algorithm: q.algorithm,
                assume_unique: q.assume_unique,
                spec: q.spec,
                deadline: q.deadline_ms.map(std::time::Duration::from_millis),
                profile: q.profile,
                distribute: q.distribute,
                restricted_divisor: q.restricted,
                mem_budget: q.mem_budget.map(|b| b as usize),
            };
            service.divide(&q.dividend, &q.divisor, &options).map(|r| {
                Reply::Divided(DivideReply {
                    algorithm: r.algorithm,
                    cached: r.cached,
                    dividend_version: r.dividend_version,
                    divisor_version: r.divisor_version,
                    micros: r.micros,
                    ops: r.ops,
                    schema: r.schema,
                    tuples: r.tuples,
                    profile: r.profile,
                })
            })
        }
        Request::Shard(s) => service
            .check_epoch(s.epoch)
            .and_then(|()| {
                Relation::from_tuples(s.schema, s.tuples)
                    .map_err(|e| ServiceError::BadRequest(e.to_string()))
            })
            .and_then(|relation| {
                service.install_shard(
                    &s.name,
                    relation,
                    ShardInfo {
                        shard: s.shard,
                        of: s.of,
                        shard_keys: s.shard_keys,
                    },
                )
            })
            .map(|version| Reply::Sharded { version }),
        Request::Repartition(r) => service
            .check_epoch(r.epoch)
            .and_then(|()| {
                service.repartition(&r.name, &r.keys, r.parts as usize, r.filter.as_ref())
            })
            .map(|(schema, buckets, filtered)| Reply::Repartitioned {
                schema,
                buckets,
                filtered,
            }),
        Request::BuildFilter {
            name,
            keys,
            bits,
            epoch,
        } => service
            .check_epoch(epoch)
            .and_then(|()| service.build_filter(&name, &keys, bits as usize))
            .map(|(filter, insertions)| Reply::Filter { filter, insertions }),
        Request::DividePartial {
            tag,
            query: q,
            epoch,
        } => service.check_epoch(epoch).and_then(|()| {
            let options = QueryOptions {
                algorithm: q.algorithm,
                assume_unique: q.assume_unique,
                spec: q.spec,
                deadline: q.deadline_ms.map(std::time::Duration::from_millis),
                profile: q.profile,
                distribute: q.distribute,
                restricted_divisor: q.restricted,
                mem_budget: q.mem_budget.map(|b| b as usize),
            };
            service.divide(&q.dividend, &q.divisor, &options).map(|r| {
                Reply::PartialQuotient(PartialQuotientReply {
                    tag,
                    algorithm: r.algorithm,
                    dividend_version: r.dividend_version,
                    divisor_version: r.divisor_version,
                    micros: r.micros,
                    ops: r.ops,
                    schema: r.schema,
                    tuples: r.tuples.as_ref().clone(),
                    profile: r.profile,
                })
            })
        }),
        Request::ExecPlan(p) => {
            let options = PlanOptions {
                deadline: p.deadline_ms.map(std::time::Duration::from_millis),
                profile: p.profile,
            };
            service.exec_plan(&p.plan, &options).map(|r| {
                Reply::Plan(PlanReply {
                    algorithms: r.algorithms,
                    cached: r.cached,
                    micros: r.micros,
                    ops: r.ops,
                    relations: r.relations,
                    schema: r.schema,
                    tuples: r.tuples,
                    profile: r.profile,
                })
            })
        }
        Request::Stats => Ok(Reply::Stats(service.stats())),
        // Heartbeats bypass the worker queue entirely (this dispatch runs
        // on the connection thread), so a node with a wedged pool still
        // answers its coordinator's probes.
        Request::Heartbeat => Ok(Reply::HeartbeatAck {
            epoch: service.cluster_epoch().map_or(0, |s| s.epoch),
            accepting: service.is_accepting(),
        }),
        Request::ClusterEpoch(EpochRequest::Get) => service
            .cluster_epoch()
            .ok_or_else(|| {
                ServiceError::BadRequest("no cluster membership installed on this node".into())
            })
            .map(|s| Reply::Epoch {
                epoch: s.epoch,
                members: s.members,
                replication: s.replication,
            }),
        Request::ClusterEpoch(EpochRequest::Set {
            epoch,
            members,
            replication,
        }) => service
            .set_cluster_epoch(ClusterEpochState {
                epoch,
                members,
                replication,
            })
            .map(|s| Reply::Epoch {
                epoch: s.epoch,
                members: s.members,
                replication: s.replication,
            }),
        Request::ReplicaWrite(w) => service
            .check_epoch(w.epoch)
            .and_then(|()| {
                Relation::from_tuples(w.schema, w.tuples)
                    .map_err(|e| ServiceError::BadRequest(e.to_string()))
            })
            .and_then(|relation| {
                // Replicas live under a reserved name keyed by fragment
                // index, so one node can hold replicas of many fragments
                // of the same relation without collisions.
                service.install_shard(
                    &proto::replica_name(w.fragment, &w.name),
                    relation,
                    ShardInfo {
                        shard: w.fragment,
                        of: w.of,
                        shard_keys: w.shard_keys,
                    },
                )
            })
            .map(|version| Reply::ReplicaAck {
                version,
                fragment: w.fragment,
            }),
        Request::Shutdown => return (Ok(Reply::ShuttingDown), true),
    };
    (response, false)
}
