//! Service observability: latency histograms and request counters.
//!
//! The histogram is lock-free (an array of atomic buckets) so the worker
//! pool and front-end threads record without contending; percentiles are
//! computed on demand from the bucket counts. Buckets are logarithmic
//! with eight sub-buckets per octave, bounding the relative quantile
//! error at about 12.5% — plenty for p50/p95/p99 reporting.

use std::sync::atomic::{AtomicU64, Ordering};

use reldiv_rel::counters::{OpAccumulator, OpSnapshot};

/// Sub-bucket resolution: 2^3 = 8 sub-buckets per power of two.
const SUB_BITS: u32 = 3;
const SUB_COUNT: u64 = 1 << SUB_BITS;
/// Enough buckets for any u64 value under the scheme below.
const BUCKETS: usize = ((64 - SUB_BITS as usize) << SUB_BITS) + SUB_COUNT as usize;

fn bucket_index(value: u64) -> usize {
    let v = value.max(1);
    let msb = 63 - v.leading_zeros();
    if msb < SUB_BITS {
        return v as usize;
    }
    let sub = (v >> (msb - SUB_BITS)) & (SUB_COUNT - 1);
    ((u64::from(msb - SUB_BITS + 1) << SUB_BITS) + sub) as usize
}

/// A representative value for bucket `index`: the floor midpoint of the
/// value range the bucket covers, `lo + (width - 1) / 2`.
///
/// For the exact buckets (`index < 8`, one value each — including the
/// first group of each octave) this is the value itself. The floor
/// midpoint is always *inside* the bucket's range, a property the
/// exhaustive test below asserts for all 496 buckets. (An earlier version
/// returned `lo + width / 2`, which for two-value buckets was the upper
/// bound, not a midpoint.)
fn bucket_value(index: usize) -> u64 {
    if index < SUB_COUNT as usize {
        return index as u64;
    }
    let group = (index >> SUB_BITS) as u32;
    let sub = index as u64 & (SUB_COUNT - 1);
    let exp = group + SUB_BITS - 1;
    let base = (1u64 << exp) | (sub << (exp - SUB_BITS));
    base + ((1u64 << (exp - SUB_BITS)) - 1) / 2
}

/// Inclusive `[lo, hi]` value range covered by bucket `index`.
/// Test-support twin of [`bucket_index`] / [`bucket_value`].
#[cfg(test)]
fn bucket_range(index: usize) -> (u64, u64) {
    if index < SUB_COUNT as usize {
        // Exact buckets; bucket 1 additionally absorbs 0 via `v.max(1)`.
        return (index as u64, index as u64);
    }
    let group = (index >> SUB_BITS) as u32;
    let sub = index as u64 & (SUB_COUNT - 1);
    let exp = group + SUB_BITS - 1;
    let lo = (1u64 << exp) | (sub << (exp - SUB_BITS));
    let width = 1u64 << (exp - SUB_BITS);
    (lo, lo + (width - 1))
}

/// A lock-free logarithmic histogram of `u64` samples (the service uses
/// microseconds).
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum
            .load(Ordering::Relaxed)
            .checked_div(self.count())
            .unwrap_or(0)
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        let v = self.min.load(Ordering::Relaxed);
        if v == u64::MAX {
            0
        } else {
            v
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The approximate `q`-quantile (`0.0 ..= 1.0`) of the recorded
    /// samples; 0 when empty. Accurate to one sub-bucket (≈12.5%),
    /// clamped to the exact recorded extremes.
    ///
    /// `quantile(0.0)` is defined as the minimum recorded sample and is
    /// returned exactly (it is not a silent alias for the rank-1 bucket
    /// estimate, whose representative value can lie below the smallest
    /// sample); `quantile(1.0)` is likewise the exact maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        if q <= 0.0 {
            return self.min();
        }
        if q >= 1.0 {
            return self.max();
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_value(i).clamp(self.min(), self.max());
            }
        }
        self.max()
    }
}

/// Point-in-time view of the service's counters, as returned by
/// [`ServiceMetrics::snapshot`] and shipped over the wire by the `Stats`
/// request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Queries answered (cache hits + executed), successes only.
    pub queries: u64,
    /// Queries answered from the result cache.
    pub cache_hits: u64,
    /// Queries that missed the cache and were submitted for execution.
    pub cache_misses: u64,
    /// Queries rejected by admission control (`Overloaded`).
    pub rejections: u64,
    /// Queries refused because the service was shutting down.
    pub shed_shutdown: u64,
    /// Queries that failed in validation or execution.
    pub errors: u64,
    /// Queries cancelled because their deadline elapsed.
    pub timeouts: u64,
    /// Worker panics survived: the panicking query got
    /// `ServiceError::Internal` and the worker state was rebuilt.
    pub worker_panics: u64,
    /// Transient storage faults absorbed by buffer-manager retries while
    /// executing queries (reads + writes).
    pub io_retries: u64,
    /// Latency quantiles in microseconds (p50, p95, p99) and the mean.
    pub latency_p50_us: u64,
    /// 95th percentile latency in microseconds.
    pub latency_p95_us: u64,
    /// 99th percentile latency in microseconds.
    pub latency_p99_us: u64,
    /// Mean latency in microseconds.
    pub latency_mean_us: u64,
    /// Number of samples in the latency histogram. Latency is recorded
    /// exactly once per successfully answered query, so this equals
    /// `queries` — the invariant the latency-recording regression test
    /// checks end to end.
    pub latency_count: u64,
    /// Queries that requested (and produced) an execution profile.
    pub profiled_queries: u64,
    /// Cluster coordinator: sub-requests retried against a replica holder
    /// of the same fragment after the first holder failed.
    pub replica_retries: u64,
    /// Cluster coordinator: queries during which at least one fragment
    /// was served by a replica instead of its primary.
    pub failovers: u64,
    /// Cluster coordinator: nodes excluded from routing by the health
    /// checker (flapping or persistently unreachable).
    pub nodes_excluded: u64,
    /// Cluster coordinator: heartbeat probes that went unanswered.
    pub heartbeats_missed: u64,
    /// Executed divisions that had to degrade under memory pressure
    /// (adaptive partition spills or overflow-ladder fallbacks).
    pub degraded_queries: u64,
    /// Bytes divisions spooled to temporary spill files, first-time
    /// spills and re-spools combined.
    pub division_spill_bytes: u64,
    /// Abstract operations performed by the worker pool, aggregated from
    /// the per-request [`OpScope`](reldiv_rel::counters::OpScope)s.
    pub ops: OpSnapshot,
}

impl MetricsSnapshot {
    /// Cache hit rate over answered queries, `0.0` when none.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// All service counters, shared by the front-end threads and the worker
/// pool.
#[derive(Default)]
pub struct ServiceMetrics {
    /// End-to-end latency of answered queries (queue wait included).
    pub latency: LatencyHistogram,
    /// Successful queries.
    pub queries: AtomicU64,
    /// Result-cache hits.
    pub cache_hits: AtomicU64,
    /// Result-cache misses.
    pub cache_misses: AtomicU64,
    /// Admission-control rejections.
    pub rejections: AtomicU64,
    /// Refusals during shutdown.
    pub shed_shutdown: AtomicU64,
    /// Failed queries (validation or execution errors).
    pub errors: AtomicU64,
    /// Deadline-cancelled queries.
    pub timeouts: AtomicU64,
    /// Worker panics survived by the pool.
    pub worker_panics: AtomicU64,
    /// Transient storage faults absorbed by retries in worker storage.
    pub io_retries: AtomicU64,
    /// Queries that requested an execution profile.
    pub profiled_queries: AtomicU64,
    /// Replica retries (always 0 on a plain node; the cluster coordinator
    /// owns these four counters and folds them into its stats view).
    pub replica_retries: AtomicU64,
    /// Queries that failed over to a replica (0 on a plain node).
    pub failovers: AtomicU64,
    /// Nodes excluded by health checks (0 on a plain node).
    pub nodes_excluded: AtomicU64,
    /// Missed heartbeat probes (0 on a plain node).
    pub heartbeats_missed: AtomicU64,
    /// Divisions that degraded under memory pressure.
    pub degraded_queries: AtomicU64,
    /// Bytes divisions spooled to spill files (spills + re-spools).
    pub division_spill_bytes: AtomicU64,
    /// Abstract-operation totals across all executed queries.
    pub ops: OpAccumulator,
}

impl ServiceMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> ServiceMetrics {
        ServiceMetrics::default()
    }

    /// Reads every counter at once.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            queries: self.queries.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            rejections: self.rejections.load(Ordering::Relaxed),
            shed_shutdown: self.shed_shutdown.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            io_retries: self.io_retries.load(Ordering::Relaxed),
            latency_p50_us: self.latency.quantile(0.50),
            latency_p95_us: self.latency.quantile(0.95),
            latency_p99_us: self.latency.quantile(0.99),
            latency_mean_us: self.latency.mean(),
            latency_count: self.latency.count(),
            profiled_queries: self.profiled_queries.load(Ordering::Relaxed),
            replica_retries: self.replica_retries.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            nodes_excluded: self.nodes_excluded.load(Ordering::Relaxed),
            heartbeats_missed: self.heartbeats_missed.load(Ordering::Relaxed),
            degraded_queries: self.degraded_queries.load(Ordering::Relaxed),
            division_spill_bytes: self.division_spill_bytes.load(Ordering::Relaxed),
            ops: self.ops.totals(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let h = LatencyHistogram::new();
        for v in [0u64, 1, 2, 3, 7] {
            // 0 shares a bucket with 1 (the histogram records micros ≥ 1).
            assert_eq!(bucket_value(bucket_index(v)), v.max(1), "v={v}");
        }
        h.record(3);
        assert_eq!(h.quantile(0.5), 3);
    }

    #[test]
    fn quantiles_are_within_sub_bucket_error() {
        let h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.50);
        let p95 = h.quantile(0.95);
        let p99 = h.quantile(0.99);
        assert!((400..=625).contains(&p50), "p50={p50}");
        assert!((830..=1000).contains(&p95), "p95={p95}");
        assert!((870..=1000).contains(&p99), "p99={p99}");
        assert!(p50 <= p95 && p95 <= p99);
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000);
    }

    #[test]
    fn quantile_never_exceeds_max() {
        let h = LatencyHistogram::new();
        h.record(1_000_000);
        assert_eq!(h.quantile(0.99), 1_000_000);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0);
    }

    #[test]
    fn every_bucket_value_is_inside_its_bucket_and_monotone() {
        // Exhaustive property check over all 496 buckets: the
        // representative value lies inside the bucket's analytic range,
        // maps back to the same bucket, and is strictly monotone in the
        // bucket index.
        assert_eq!(BUCKETS, 496);
        let mut prev: Option<u64> = None;
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_range(i);
            let v = bucket_value(i);
            assert!(
                (lo..=hi).contains(&v),
                "bucket {i}: value {v} outside [{lo}, {hi}]"
            );
            assert!(lo <= hi, "bucket {i}: inverted range");
            // Boundary values land in this bucket (0 shares bucket 1).
            if i >= 1 {
                assert_eq!(bucket_index(lo), i, "bucket {i}: lo {lo}");
                assert_eq!(bucket_index(hi), i, "bucket {i}: hi {hi}");
                assert_eq!(bucket_index(v), i, "bucket {i}: value {v}");
            }
            if let Some(p) = prev {
                assert!(v > p, "bucket {i}: {v} not monotone after {p}");
            }
            prev = Some(v);
        }
        // The buckets tile the whole u64 range with no gaps.
        for i in 2..BUCKETS {
            let (lo, _) = bucket_range(i);
            let (_, prev_hi) = bucket_range(i - 1);
            assert_eq!(lo, prev_hi + 1, "gap before bucket {i}");
        }
        assert_eq!(bucket_range(BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn quantile_zero_is_the_exact_minimum() {
        let h = LatencyHistogram::new();
        for v in [500u64, 900, 1000] {
            h.record(v);
        }
        // 500's bucket representative is 495 — below every sample. The
        // 0-quantile must be the exact recorded minimum instead.
        assert_eq!(h.quantile(0.0), 500);
        assert_eq!(h.min(), 500);
        assert_eq!(h.quantile(1.0), 1000);
        // Interior quantiles are clamped into [min, max] too.
        assert!(h.quantile(0.01) >= 500);
    }

    #[test]
    fn min_of_empty_histogram_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.min(), 0);
        assert_eq!(h.quantile(0.0), 0);
    }

    #[test]
    fn snapshot_carries_latency_count_and_profiled_queries() {
        let m = ServiceMetrics::new();
        m.latency.record(10);
        m.latency.record(20);
        m.profiled_queries.store(1, Ordering::Relaxed);
        let s = m.snapshot();
        assert_eq!(s.latency_count, 2);
        assert_eq!(s.profiled_queries, 1);
    }

    #[test]
    fn snapshot_carries_cluster_robustness_counters() {
        let m = ServiceMetrics::new();
        m.replica_retries.store(4, Ordering::Relaxed);
        m.failovers.store(2, Ordering::Relaxed);
        m.nodes_excluded.store(1, Ordering::Relaxed);
        m.heartbeats_missed.store(7, Ordering::Relaxed);
        let s = m.snapshot();
        assert_eq!(s.replica_retries, 4);
        assert_eq!(s.failovers, 2);
        assert_eq!(s.nodes_excluded, 1);
        assert_eq!(s.heartbeats_missed, 7);
    }

    #[test]
    fn snapshot_hit_rate() {
        let m = ServiceMetrics::new();
        m.cache_hits.store(3, Ordering::Relaxed);
        m.cache_misses.store(1, Ordering::Relaxed);
        let s = m.snapshot();
        assert!((s.hit_rate() - 0.75).abs() < 1e-9);
    }
}
