//! The worker pool: each worker thread owns a private storage manager.
//!
//! `reldiv-storage`'s `StorageRef` is single-threaded by design (the
//! paper's system ran one process per disk), so the pool gives every
//! worker its own [`StorageManager`] and materializes catalog relations
//! into *worker-local* record files on demand. Files are keyed by
//! `(name, version)`; when a worker sees a newer version of a relation it
//! deletes its stale file, so a worker never holds more than one
//! materialization per catalog name.
//!
//! ## Robustness
//!
//! Workers are the service's blast-radius boundary:
//!
//! * **Panic isolation** — a query that panics is caught with
//!   [`std::panic::catch_unwind`]; the client gets
//!   [`ServiceError::Internal`] and the worker rebuilds its storage state
//!   from scratch before serving the next job, so one poisoned query
//!   cannot take the pool down.
//! * **Deadlines** — an admitted job carries an optional deadline; the
//!   division runs under a cooperative
//!   [`CancelToken`](reldiv_exec::CancelToken) and a query whose deadline
//!   elapsed while queued is refused without executing at all.
//! * **Fault injection** — a [`FaultPlan`](reldiv_storage::FaultPlan) in
//!   the service config is installed (independently reseeded) on every
//!   worker's simulated disks; transient faults absorbed by the buffer
//!   manager's retries are rolled up into the `io_retries` metric.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{Receiver, Sender};
use reldiv_core::api::{self, Source};
use reldiv_core::{Algorithm, DivisionConfig, DivisionSpec};
use reldiv_exec::CancelToken;
use reldiv_parallel::{parallel_divide, ClusterConfig, Distribution};
use reldiv_rel::counters::OpScope;
use reldiv_rel::{RecordCodec, Relation};
use reldiv_storage::{FileId, StorageManager, StorageRef};

use reldiv_exec::profile::ProfileSink;
use reldiv_plan::{Bound, ExecOptions, PlanError, SourceProvider};

use crate::catalog::RelationVersion;
use crate::error::{Result, ServiceError};
use crate::metrics::ServiceMetrics;
use crate::service::{PlanResponse, QueryResponse, ServiceConfig};

/// Anything a worker can be asked to run.
pub(crate) enum Job {
    /// A single division (`Service::divide`).
    Divide(QueryJob),
    /// A composed plan (`Service::exec_plan`).
    Plan(PlanJob),
}

/// One admitted query, travelling from the front end to a worker.
pub(crate) struct QueryJob {
    pub dividend: Arc<RelationVersion>,
    pub divisor: Arc<RelationVersion>,
    pub spec: DivisionSpec,
    pub algorithm: Algorithm,
    pub assume_unique: bool,
    pub deadline: Option<Instant>,
    pub profile: bool,
    pub distribute: Option<Distribution>,
    pub mem_budget: Option<usize>,
    pub reply: Sender<Result<QueryResponse>>,
}

/// One admitted plan, bound against the catalog versions it pinned.
pub(crate) struct PlanJob {
    pub bound: Bound,
    pub pinned: Vec<Arc<RelationVersion>>,
    pub deadline: Option<Instant>,
    pub profile: bool,
    pub honor_hints: bool,
    pub reply: Sender<Result<PlanResponse>>,
}

/// Worker-local state: a private storage manager plus the record files it
/// has materialized, keyed by catalog name and version.
struct WorkerState {
    storage: StorageRef,
    files: HashMap<String, (u64, FileId)>,
    fail_point: Option<String>,
    /// The service-wide abort flag (`Service::abort`): every execution's
    /// cancel token carries it, so a hard kill cancels in-flight queries
    /// at their next checkpoint instead of letting them keep writing
    /// spill pages.
    abort: &'static AtomicBool,
}

impl WorkerState {
    fn new(config: &ServiceConfig, index: usize, abort: &'static AtomicBool) -> WorkerState {
        let storage = StorageManager::shared(config.storage.clone());
        if let Some(plan) = &config.storage_faults {
            // Derive an independent fault stream per worker so the pool
            // does not fail in lockstep.
            let seed = plan
                .seed()
                .wrapping_add((index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            storage.borrow_mut().inject_faults(&plan.reseeded(seed));
        }
        WorkerState {
            storage,
            files: HashMap::new(),
            fail_point: config.fail_point_relation.clone(),
            abort,
        }
    }

    /// Returns a file-backed [`Source`] for `relation`, materializing it
    /// into a local record file on first use of this version (and
    /// deleting the file of any older version of the same name).
    fn source_for(&mut self, relation: &RelationVersion) -> Result<Source> {
        if let Some(&(version, file)) = self.files.get(&relation.name) {
            if version == relation.version {
                return Ok(Source::from_file(file, relation.schema.clone()));
            }
            self.storage
                .borrow_mut()
                .delete_file(file)
                .map_err(|e| ServiceError::Internal(format!("dropping stale file: {e}")))?;
            self.files.remove(&relation.name);
        }
        let codec = RecordCodec::new(relation.schema.clone());
        let file = self
            .storage
            .borrow_mut()
            .create_file(StorageManager::DATA_DISK);
        let mut buf = Vec::with_capacity(codec.record_width());
        for tuple in relation.tuples.iter() {
            buf.clear();
            codec
                .encode_into(tuple, &mut buf)
                .map_err(|e| ServiceError::BadRequest(format!("tuple violates schema: {e}")))?;
            self.storage
                .borrow_mut()
                .append(file, &buf)
                .map_err(|e| ServiceError::Internal(format!("writing record file: {e}")))?;
        }
        self.files
            .insert(relation.name.clone(), (relation.version, file));
        Ok(Source::from_file(file, relation.schema.clone()))
    }

    fn execute(&mut self, job: &QueryJob, metrics: &ServiceMetrics) -> Result<QueryResponse> {
        if let Some(fp) = &self.fail_point {
            if *fp == job.dividend.name {
                // Chaos-testing hook: prove panic isolation end-to-end.
                panic!("fail point hit: query on relation {fp:?}");
            }
        }
        let cancel = match job.deadline {
            Some(deadline) => {
                if Instant::now() >= deadline {
                    // The deadline elapsed while the job sat in the
                    // submission queue: refuse without executing.
                    return Err(ServiceError::DeadlineExceeded);
                }
                CancelToken::at(deadline)
            }
            None => CancelToken::none(),
        }
        .with_abort(self.abort);
        if self.abort.load(Ordering::Relaxed) {
            // Killed while the job sat in the queue: refuse outright.
            return Err(ServiceError::ShuttingDown);
        }
        if let Some(dist) = job.distribute {
            return execute_distributed(job, dist, metrics);
        }
        let dividend = self.source_for(&job.dividend)?;
        let divisor = self.source_for(&job.divisor)?;
        let config = DivisionConfig {
            assume_unique: job.assume_unique,
            cancel,
            mem_budget: job.mem_budget,
            ..DivisionConfig::default()
        };
        let retries_before = {
            let s = self.storage.borrow().buffer_stats();
            s.read_retries + s.write_retries
        };
        // Scope the abstract-operation counters to this request: pooled
        // threads run many queries back to back, and the scope guarantees
        // one request's counts never bleed into the next measurement. The
        // delta lands in the shared accumulator even on error.
        let scope = OpScope::with_sink(&metrics.ops);
        let outcome = if job.profile {
            api::divide_profiled(
                &self.storage,
                &dividend,
                &divisor,
                &job.spec,
                job.algorithm,
                &config,
            )
            .map(|(quotient, report, profile)| (quotient, report, Some(profile)))
        } else {
            api::divide_with_report(
                &self.storage,
                &dividend,
                &divisor,
                &job.spec,
                job.algorithm,
                &config,
            )
            .map(|(quotient, report)| (quotient, report, None))
        };
        let ops = scope.finish();
        let retries_after = {
            let s = self.storage.borrow().buffer_stats();
            s.read_retries + s.write_retries
        };
        metrics.io_retries.fetch_add(
            retries_after.saturating_sub(retries_before),
            Ordering::Relaxed,
        );
        let (quotient, report, profile) = outcome?;
        if report.degraded {
            metrics.degraded_queries.fetch_add(1, Ordering::Relaxed);
            metrics
                .division_spill_bytes
                .fetch_add(report.spill_bytes + report.respool_bytes, Ordering::Relaxed);
        }
        Ok(QueryResponse {
            schema: quotient.schema().clone(),
            tuples: Arc::new(quotient.into_tuples()),
            algorithm: job.algorithm,
            cached: false,
            dividend_version: job.dividend.version,
            divisor_version: job.divisor.version,
            ops,
            // Placeholder: the front end stamps the queue-inclusive
            // end-to-end latency once, in `Service::divide` — a worker
            // clock would stop before the reply-channel hop and disagree
            // with the histogram.
            micros: 0,
            profile,
        })
    }

    fn execute_plan(&mut self, job: &PlanJob, metrics: &ServiceMetrics) -> Result<PlanResponse> {
        if let Some(fp) = &self.fail_point {
            if job.pinned.iter().any(|r| r.name == *fp) {
                panic!("fail point hit: plan reads relation {fp:?}");
            }
        }
        let cancel = match job.deadline {
            Some(deadline) => {
                if Instant::now() >= deadline {
                    return Err(ServiceError::DeadlineExceeded);
                }
                CancelToken::at(deadline)
            }
            None => CancelToken::none(),
        }
        .with_abort(self.abort);
        if self.abort.load(Ordering::Relaxed) {
            return Err(ServiceError::ShuttingDown);
        }
        let sink = job.profile.then(ProfileSink::new);
        let opts = ExecOptions {
            storage: self.storage.clone(),
            cancel,
            profile: sink.clone(),
            honor_restricted_hint: job.honor_hints,
            // Plans run against the worker's shared pool; the per-query
            // budget is a Divide-request feature for now.
            mem_budget: None,
            exec: reldiv_plan::ExecMode::Batch,
        };
        let retries_before = {
            let s = self.storage.borrow().buffer_stats();
            s.read_retries + s.write_retries
        };
        let scope = OpScope::with_sink(&metrics.ops);
        let (outcome, storage_failure) = {
            let mut provider = PinnedSources {
                state: self,
                pinned: &job.pinned,
                failure: None,
            };
            let outcome = reldiv_plan::execute(&job.bound, &mut provider, &opts);
            (outcome, provider.failure)
        };
        let ops = scope.finish();
        let retries_after = {
            let s = self.storage.borrow().buffer_stats();
            s.read_retries + s.write_retries
        };
        metrics.io_retries.fetch_add(
            retries_after.saturating_sub(retries_before),
            Ordering::Relaxed,
        );
        if let Some(e) = storage_failure {
            // The provider's stashed error is the real failure; the plan
            // error it returned in its place is just the unwinding vehicle.
            return Err(e);
        }
        let output = outcome.map_err(plan_error)?;
        let degraded = output.choices.iter().filter(|c| c.report.degraded).count() as u64;
        if degraded > 0 {
            metrics
                .degraded_queries
                .fetch_add(degraded, Ordering::Relaxed);
            metrics.division_spill_bytes.fetch_add(
                output
                    .choices
                    .iter()
                    .map(|c| c.report.spill_bytes + c.report.respool_bytes)
                    .sum(),
                Ordering::Relaxed,
            );
        }
        let schema = output.relation.schema().clone();
        Ok(PlanResponse {
            schema,
            tuples: Arc::new(output.relation.into_tuples()),
            algorithms: output.choices.iter().map(|c| c.algorithm).collect(),
            cached: false,
            relations: job
                .pinned
                .iter()
                .map(|r| (r.name.clone(), r.version))
                .collect(),
            ops,
            // Placeholder, as for divisions: `Service::exec_plan` stamps
            // the queue-inclusive end-to-end latency.
            micros: 0,
            profile: sink.map(|s| s.finish()),
        })
    }
}

/// Serves a plan's base relations from the worker's materialized record
/// files, restricted to the versions the front end pinned at admission.
/// A storage failure is stashed (`failure`) so the service error survives
/// the trip through the plan crate's error type.
struct PinnedSources<'a> {
    state: &'a mut WorkerState,
    pinned: &'a [Arc<RelationVersion>],
    failure: Option<ServiceError>,
}

impl SourceProvider for PinnedSources<'_> {
    fn source(&mut self, name: &str) -> reldiv_plan::Result<Source> {
        let relation = self
            .pinned
            .iter()
            .find(|r| r.name == name)
            .cloned()
            .ok_or_else(|| {
                PlanError::Validate(format!("relation {name:?} was not pinned for this plan"))
            })?;
        self.state.source_for(&relation).map_err(|e| {
            self.failure = Some(e);
            PlanError::Validate(format!("materializing relation {name:?} failed"))
        })
    }
}

fn plan_error(e: PlanError) -> ServiceError {
    match e {
        PlanError::Exec(e) => ServiceError::from(e),
        other => ServiceError::BadRequest(other.to_string()),
    }
}

/// Runs a query over the in-process parallel machine (Section 6):
/// distribution and collection happen on this worker thread, node work on
/// the machine's own threads. The inputs are served straight from the
/// pinned catalog tuples — no worker-local record files are involved —
/// and the per-node operation totals land in the shared metrics sink so
/// distributed and single-operator queries aggregate identically.
fn execute_distributed(
    job: &QueryJob,
    dist: Distribution,
    metrics: &ServiceMetrics,
) -> Result<QueryResponse> {
    let dividend = Relation::from_tuples(
        job.dividend.schema.clone(),
        job.dividend.tuples.as_ref().clone(),
    )
    .map_err(|e| ServiceError::BadRequest(format!("dividend violates schema: {e}")))?;
    let divisor = Relation::from_tuples(
        job.divisor.schema.clone(),
        job.divisor.tuples.as_ref().clone(),
    )
    .map_err(|e| ServiceError::BadRequest(format!("divisor violates schema: {e}")))?;
    let config = ClusterConfig {
        nodes: dist.nodes,
        strategy: dist.strategy,
        bit_vector_bits: dist.bit_vector_bits,
        ..ClusterConfig::default()
    };
    let (quotient, report) = parallel_divide(&dividend, &divisor, &job.spec, &config)?;
    metrics.ops.add(&report.total_ops);
    let profile = job.profile.then(|| report.to_profile());
    Ok(QueryResponse {
        schema: quotient.schema().clone(),
        tuples: Arc::new(quotient.into_tuples()),
        algorithm: job.algorithm,
        cached: false,
        dividend_version: job.dividend.version,
        divisor_version: job.divisor.version,
        ops: report.total_ops,
        micros: 0,
        profile,
    })
}

/// The worker main loop: drains the submission queue until every sender
/// is gone (the shutdown signal), answering each admitted job. A panic
/// inside a query is contained here: the job is answered with
/// [`ServiceError::Internal`], the worker state is rebuilt, and the loop
/// keeps serving.
pub(crate) fn worker_loop(
    rx: Receiver<Job>,
    metrics: Arc<ServiceMetrics>,
    config: ServiceConfig,
    index: usize,
    abort: &'static AtomicBool,
) {
    let mut state = WorkerState::new(&config, index, abort);
    // On a panic the storage manager may be mid-operation; rebuild the
    // worker's state from scratch rather than trust it. A client that
    // gave up on the reply channel is not an error.
    let panicked = |state: &mut WorkerState| {
        metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
        *state = WorkerState::new(&config, index, abort);
        ServiceError::Internal(
            "worker panicked while executing the query; the worker was replaced".into(),
        )
    };
    for job in rx.iter() {
        match job {
            Job::Divide(job) => {
                let outcome = catch_unwind(AssertUnwindSafe(|| state.execute(&job, &metrics)));
                let result = match outcome {
                    Ok(result) => result,
                    Err(_) => Err(panicked(&mut state)),
                };
                let _ = job.reply.send(result);
            }
            Job::Plan(job) => {
                let outcome = catch_unwind(AssertUnwindSafe(|| state.execute_plan(&job, &metrics)));
                let result = match outcome {
                    Ok(result) => result,
                    Err(_) => Err(panicked(&mut state)),
                };
                let _ = job.reply.send(result);
            }
        }
    }
}
