//! The worker pool: each worker thread owns a private storage manager.
//!
//! `reldiv-storage`'s `StorageRef` is single-threaded by design (the
//! paper's system ran one process per disk), so the pool gives every
//! worker its own [`StorageManager`] and materializes catalog relations
//! into *worker-local* record files on demand. Files are keyed by
//! `(name, version)`; when a worker sees a newer version of a relation it
//! deletes its stale file, so a worker never holds more than one
//! materialization per catalog name.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{Receiver, Sender};
use reldiv_core::api::{self, Source};
use reldiv_core::{Algorithm, DivisionConfig, DivisionSpec};
use reldiv_rel::counters::OpScope;
use reldiv_rel::RecordCodec;
use reldiv_storage::manager::StorageConfig;
use reldiv_storage::{FileId, StorageManager, StorageRef};

use crate::catalog::RelationVersion;
use crate::error::{Result, ServiceError};
use crate::metrics::ServiceMetrics;
use crate::service::QueryResponse;

/// One admitted query, travelling from the front end to a worker.
pub(crate) struct QueryJob {
    pub dividend: Arc<RelationVersion>,
    pub divisor: Arc<RelationVersion>,
    pub spec: DivisionSpec,
    pub algorithm: Algorithm,
    pub assume_unique: bool,
    pub submitted: Instant,
    pub reply: Sender<Result<QueryResponse>>,
}

/// Worker-local state: a private storage manager plus the record files it
/// has materialized, keyed by catalog name and version.
struct WorkerState {
    storage: StorageRef,
    files: HashMap<String, (u64, FileId)>,
}

impl WorkerState {
    fn new(config: StorageConfig) -> WorkerState {
        WorkerState {
            storage: StorageManager::shared(config),
            files: HashMap::new(),
        }
    }

    /// Returns a file-backed [`Source`] for `relation`, materializing it
    /// into a local record file on first use of this version (and
    /// deleting the file of any older version of the same name).
    fn source_for(&mut self, relation: &RelationVersion) -> Result<Source> {
        if let Some(&(version, file)) = self.files.get(&relation.name) {
            if version == relation.version {
                return Ok(Source::from_file(file, relation.schema.clone()));
            }
            self.storage
                .borrow_mut()
                .delete_file(file)
                .map_err(|e| ServiceError::Internal(format!("dropping stale file: {e}")))?;
            self.files.remove(&relation.name);
        }
        let codec = RecordCodec::new(relation.schema.clone());
        let file = self
            .storage
            .borrow_mut()
            .create_file(StorageManager::DATA_DISK);
        let mut buf = Vec::with_capacity(codec.record_width());
        for tuple in relation.tuples.iter() {
            buf.clear();
            codec
                .encode_into(tuple, &mut buf)
                .map_err(|e| ServiceError::BadRequest(format!("tuple violates schema: {e}")))?;
            self.storage
                .borrow_mut()
                .append(file, &buf)
                .map_err(|e| ServiceError::Internal(format!("writing record file: {e}")))?;
        }
        self.files
            .insert(relation.name.clone(), (relation.version, file));
        Ok(Source::from_file(file, relation.schema.clone()))
    }

    fn execute(&mut self, job: &QueryJob, metrics: &ServiceMetrics) -> Result<QueryResponse> {
        let dividend = self.source_for(&job.dividend)?;
        let divisor = self.source_for(&job.divisor)?;
        let config = DivisionConfig {
            assume_unique: job.assume_unique,
            ..DivisionConfig::default()
        };
        // Scope the abstract-operation counters to this request: pooled
        // threads run many queries back to back, and the scope guarantees
        // one request's counts never bleed into the next measurement. The
        // delta lands in the shared accumulator even on error.
        let scope = OpScope::with_sink(&metrics.ops);
        let quotient = api::divide(
            &self.storage,
            &dividend,
            &divisor,
            &job.spec,
            job.algorithm,
            &config,
        );
        let ops = scope.finish();
        let quotient = quotient?;
        Ok(QueryResponse {
            schema: quotient.schema().clone(),
            tuples: Arc::new(quotient.into_tuples()),
            algorithm: job.algorithm,
            cached: false,
            dividend_version: job.dividend.version,
            divisor_version: job.divisor.version,
            ops,
            micros: job.submitted.elapsed().as_micros() as u64,
        })
    }
}

/// The worker main loop: drains the submission queue until every sender
/// is gone (the shutdown signal), answering each admitted job.
pub(crate) fn worker_loop(
    rx: Receiver<QueryJob>,
    metrics: Arc<ServiceMetrics>,
    storage_config: StorageConfig,
) {
    let mut state = WorkerState::new(storage_config);
    for job in rx.iter() {
        let result = state.execute(&job, &metrics);
        // A client that gave up on the reply is not an error.
        let _ = job.reply.send(result);
    }
}
