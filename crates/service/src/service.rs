//! The query service: catalog + worker pool + admission control +
//! result cache + metrics, behind one embeddable handle.
//!
//! Life of a query (`Service::divide`):
//!
//! 1. pin the current catalog versions of both relations,
//! 2. resolve the column spec and (if `auto`) the algorithm via the
//!    cost model's [`Algorithm::recommend`],
//! 3. look up the result cache — the key embeds the pinned versions, so
//!    hits are exact by construction,
//! 4. on a miss, `try_send` the job into the **bounded** submission
//!    queue: a full queue means the request is rejected *now* with
//!    [`ServiceError::Overloaded`] instead of queueing without bound
//!    (admission control),
//! 5. block on the private reply channel; a worker thread executes the
//!    division over its own storage manager and replies,
//! 6. record latency and counters, install the result in the cache.
//!
//! [`Service::shutdown`] first flips the accept flag (new queries get
//! [`ServiceError::ShuttingDown`]), then closes the queue; workers drain
//! every admitted job before exiting, so shutdown is graceful by
//! construction.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Sender, TrySendError};
use parking_lot::Mutex;
use reldiv_core::api::validate_algorithm_for_inputs;
use reldiv_core::hash_division::HashDivisionMode;
use reldiv_core::{Algorithm, DivisionSpec, QueryProfile};
use reldiv_parallel::filter::BitVectorFilter;
use reldiv_parallel::{route, Distribution};
use reldiv_rel::counters::OpSnapshot;
use reldiv_rel::{Relation, Schema, Tuple};
use reldiv_storage::manager::StorageConfig;
use reldiv_storage::FaultPlan;

use crate::cache::{CacheKey, CachedPlan, CachedResult, PlanCache, PlanCacheKey, ResultCache};
use crate::catalog::{Catalog, RelationVersion};
use crate::error::{Result, ServiceError};
use crate::metrics::{MetricsSnapshot, ServiceMetrics};
use crate::proto::algorithm_code;
use crate::worker::{worker_loop, Job, PlanJob, QueryJob};

/// Sizing knobs for a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads executing divisions.
    pub workers: usize,
    /// Capacity of the bounded submission queue; a query arriving while
    /// the queue holds this many is rejected with
    /// [`ServiceError::Overloaded`].
    pub queue_depth: usize,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Storage configuration for each worker's private manager.
    pub storage: StorageConfig,
    /// Deadline applied to queries that do not carry their own; `None`
    /// means queries without an explicit deadline run unbounded.
    pub default_deadline: Option<Duration>,
    /// Fault plan installed (independently reseeded) on every worker's
    /// simulated disks. `None` runs fault-free. Used by the chaos harness
    /// and soak tests.
    pub storage_faults: Option<FaultPlan>,
    /// Chaos-testing hook: queries whose *dividend* has this catalog name
    /// panic inside the worker, demonstrating panic isolation. `None`
    /// (the default) disables the fail point.
    pub fail_point_relation: Option<String>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue_depth: 64,
            cache_capacity: 256,
            storage: StorageConfig::large(),
            default_deadline: None,
            storage_faults: None,
            fail_point_relation: None,
        }
    }
}

/// How a query should run: the per-request options of
/// [`Service::divide`].
#[derive(Debug, Clone, Default)]
pub struct QueryOptions {
    /// Explicit algorithm; `None` asks the cost model to choose.
    pub algorithm: Option<Algorithm>,
    /// Declare both inputs duplicate-free (skips the duplicate
    /// elimination the aggregate algorithms otherwise plan).
    pub assume_unique: bool,
    /// Explicit `(divisor_keys, quotient_keys)`; `None` uses the
    /// trailing-divisor convention.
    pub spec: Option<(Vec<usize>, Vec<usize>)>,
    /// Per-query deadline, overriding the service's
    /// [`default_deadline`](ServiceConfig::default_deadline). The division
    /// is cancelled cooperatively once it elapses and the query fails
    /// with [`ServiceError::DeadlineExceeded`].
    pub deadline: Option<Duration>,
    /// Profile the query (`EXPLAIN ANALYZE`): the worker attaches a
    /// per-operator span tree to [`QueryResponse::profile`]. Cache hits
    /// execute nothing and therefore carry no profile.
    pub profile: bool,
    /// Run the division over the in-process parallel machine (Section 6
    /// strategy, node count, optional bit-vector filter) instead of a
    /// single operator. Forces the algorithm to hash division — the
    /// parallel machine implements nothing else — so an explicit
    /// conflicting `algorithm` is a [`ServiceError::BadRequest`].
    pub distribute: Option<Distribution>,
    /// Client assertion about the restricted-divisor property. `None`
    /// keeps the conservative default (`true`: dividend tuples may
    /// reference values outside the divisor, so the aggregation plans
    /// must join). `Some(false)` promises referential integrity,
    /// unlocking the cheaper no-join aggregation plans — but the service
    /// honors the promise only while no storage fault injection is
    /// active: a fault-recovered relation may have dropped divisor
    /// tuples, which would make the no-join plans silently wrong.
    pub restricted_divisor: Option<bool>,
    /// Per-query memory budget in bytes for the division's working
    /// state. When set, the worker charges the query against a child
    /// pool capped at this value on top of its shared pool, so a heavy
    /// division degrades adaptively (spilling partitions to disk)
    /// instead of starving concurrent queries. The quotient is identical
    /// either way — only the execution strategy changes — which is why
    /// budgeted and unbudgeted runs share cache entries.
    pub mem_budget: Option<usize>,
}

/// The cluster membership view a coordinator pushes onto a node: the
/// catalog epoch the node must enforce, plus the member list and
/// replication factor behind it. Epochs are bumped on every membership
/// change (join/remove), so a node can refuse data-plane requests from a
/// coordinator whose routing table predates the current placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterEpochState {
    /// Monotonically increasing catalog epoch.
    pub epoch: u64,
    /// Member addresses, in coordinator order (node index = position).
    pub members: Vec<String>,
    /// Replication factor k: each fragment lives on k nodes.
    pub replication: u16,
}

/// Shard coordinates recorded by [`Service::install_shard`]: which slice
/// of a hash-partitioned relation this node holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardInfo {
    /// This node's shard index, `< of`.
    pub shard: u16,
    /// Total shard count.
    pub of: u16,
    /// Columns the relation is hash-partitioned on.
    pub shard_keys: Vec<usize>,
}

/// A served quotient with its provenance.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// Quotient schema.
    pub schema: Schema,
    /// Quotient tuples (shared with the cache).
    pub tuples: Arc<Vec<Tuple>>,
    /// The algorithm that ran (the resolved choice under `auto`).
    pub algorithm: Algorithm,
    /// Whether the quotient came from the result cache.
    pub cached: bool,
    /// Dividend version the quotient was computed from.
    pub dividend_version: u64,
    /// Divisor version the quotient was computed from.
    pub divisor_version: u64,
    /// Abstract operations this execution performed (zero when cached).
    pub ops: OpSnapshot,
    /// End-to-end latency in microseconds: admission through reply,
    /// queue wait included. Stamped exactly once by [`Service::divide`]
    /// — the same value it records into the latency histogram, so the
    /// histogram and the responses can never disagree.
    pub micros: u64,
    /// The per-operator span tree, when the query asked for one and the
    /// quotient was actually computed (cache hits execute nothing).
    pub profile: Option<QueryProfile>,
}

/// How a plan should run: the per-request options of
/// [`Service::exec_plan`].
#[derive(Debug, Clone, Default)]
pub struct PlanOptions {
    /// Per-query deadline, overriding the service's
    /// [`default_deadline`](ServiceConfig::default_deadline).
    pub deadline: Option<Duration>,
    /// Profile the plan (`EXPLAIN ANALYZE`): the worker attaches a span
    /// tree covering every operator to [`PlanResponse::profile`]. Cache
    /// hits execute nothing and therefore carry no profile.
    pub profile: bool,
}

/// A served plan result with its provenance.
#[derive(Debug, Clone)]
pub struct PlanResponse {
    /// Result schema.
    pub schema: Schema,
    /// Result tuples (shared with the plan cache).
    pub tuples: Arc<Vec<Tuple>>,
    /// The algorithm each division in the plan ran with, in execution
    /// order (empty for plans without a division).
    pub algorithms: Vec<Algorithm>,
    /// Whether the result came from the plan cache.
    pub cached: bool,
    /// The catalog relations the plan read and the versions it was
    /// pinned to, sorted by name.
    pub relations: Vec<(String, u64)>,
    /// Abstract operations this execution performed (zero when cached).
    pub ops: OpSnapshot,
    /// End-to-end latency in microseconds, queue wait included; stamped
    /// once by [`Service::exec_plan`], like [`QueryResponse::micros`].
    pub micros: u64,
    /// The whole-plan span tree, when the request asked for one and the
    /// plan was actually executed (cache hits execute nothing).
    pub profile: Option<QueryProfile>,
}

/// The embeddable division query service.
pub struct Service {
    catalog: Catalog,
    cache: ResultCache,
    plan_cache: PlanCache,
    metrics: Arc<ServiceMetrics>,
    queue: Mutex<Option<Sender<Job>>>,
    accepting: AtomicBool,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    default_deadline: Option<Duration>,
    shards: Mutex<HashMap<String, ShardInfo>>,
    cluster_epoch: Mutex<Option<ClusterEpochState>>,
    /// Trips every in-flight execution's cancel token ([`Service::abort`]).
    /// Leaked so [`CancelToken`](reldiv_exec::CancelToken) stays `Copy`;
    /// one `AtomicBool` per service lifetime.
    abort_flag: &'static AtomicBool,
    /// Whether storage fault injection is active — if so, client
    /// restricted-divisor assertions are ignored (see
    /// [`QueryOptions::restricted_divisor`]).
    faulty: bool,
}

impl Service {
    /// Starts the worker pool and returns the service handle. Fails with
    /// [`ServiceError::Internal`] if the platform refuses to spawn the
    /// worker threads (already-spawned workers are shut down cleanly).
    pub fn start(config: ServiceConfig) -> Result<Arc<Service>> {
        let metrics = Arc::new(ServiceMetrics::new());
        let abort_flag: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
        let (tx, rx) = bounded::<Job>(config.queue_depth.max(1));
        let mut workers = Vec::with_capacity(config.workers.max(1));
        for i in 0..config.workers.max(1) {
            let worker_rx = rx.clone();
            let metrics = metrics.clone();
            let worker_config = config.clone();
            let spawned = std::thread::Builder::new()
                .name(format!("reldiv-worker-{i}"))
                .spawn(move || worker_loop(worker_rx, metrics, worker_config, i, abort_flag));
            match spawned {
                Ok(handle) => workers.push(handle),
                Err(e) => {
                    // Closing the queue ends the workers spawned so far.
                    drop(tx);
                    drop(rx);
                    for handle in workers {
                        let _ = handle.join();
                    }
                    return Err(ServiceError::Internal(format!(
                        "spawning worker thread {i}: {e}"
                    )));
                }
            }
        }
        Ok(Arc::new(Service {
            catalog: Catalog::new(),
            cache: ResultCache::new(config.cache_capacity),
            plan_cache: PlanCache::new(config.cache_capacity),
            metrics,
            queue: Mutex::new(Some(tx)),
            accepting: AtomicBool::new(true),
            workers: Mutex::new(workers),
            default_deadline: config.default_deadline,
            shards: Mutex::new(HashMap::new()),
            cluster_epoch: Mutex::new(None),
            abort_flag,
            faulty: config.storage_faults.is_some(),
        }))
    }

    /// Starts a service with the default configuration.
    pub fn start_default() -> Result<Arc<Service>> {
        Service::start(ServiceConfig::default())
    }

    /// Installs (or replaces) a relation under `name`; returns its new
    /// catalog version. Cached results reading the old version are
    /// purged.
    pub fn register(&self, name: &str, relation: Relation) -> Result<u64> {
        if !self.accepting.load(Ordering::Acquire) {
            return Err(ServiceError::ShuttingDown);
        }
        let version = self.catalog.register(name, relation);
        // A plain register replaces whatever was there — including a
        // shard, whose coordinates no longer describe the new contents.
        self.shards.lock().remove(name);
        self.cache.invalidate_relation(name);
        self.plan_cache.invalidate_relation(name);
        Ok(version)
    }

    /// Removes `name` from the catalog and purges its cached results.
    pub fn drop_relation(&self, name: &str) -> Result<()> {
        if !self.accepting.load(Ordering::Acquire) {
            return Err(ServiceError::ShuttingDown);
        }
        self.catalog.drop_relation(name)?;
        self.shards.lock().remove(name);
        self.cache.invalidate_relation(name);
        self.plan_cache.invalidate_relation(name);
        Ok(())
    }

    /// Installs one shard of a hash-partitioned relation (the cluster
    /// node role): the tuples become an ordinary catalog relation under
    /// `name`, and the shard coordinates are recorded for
    /// [`Service::shard_info`]. Returns the catalog version.
    pub fn install_shard(&self, name: &str, relation: Relation, info: ShardInfo) -> Result<u64> {
        if !self.accepting.load(Ordering::Acquire) {
            return Err(ServiceError::ShuttingDown);
        }
        if info.of == 0 || info.shard >= info.of {
            return Err(ServiceError::BadRequest(format!(
                "shard {} of {} is out of range",
                info.shard, info.of
            )));
        }
        let arity = relation.schema().arity();
        if let Some(&k) = info.shard_keys.iter().find(|&&k| k >= arity) {
            return Err(ServiceError::BadRequest(format!(
                "shard key {k} out of range for arity {arity}"
            )));
        }
        let version = self.catalog.register(name, relation);
        self.shards.lock().insert(name.to_owned(), info);
        self.cache.invalidate_relation(name);
        self.plan_cache.invalidate_relation(name);
        Ok(version)
    }

    /// The shard coordinates of `name`, when it was installed via
    /// [`Service::install_shard`] (a plain register clears them).
    pub fn shard_info(&self, name: &str) -> Option<ShardInfo> {
        self.shards.lock().get(name).cloned()
    }

    /// Installs the cluster membership view this node must enforce.
    /// Epochs are monotonic: a view carrying an epoch below the installed
    /// one is refused with [`ServiceError::StaleEpoch`] — a lagging
    /// coordinator cannot roll the node back to a pre-rebalance
    /// placement. Returns the installed view.
    pub fn set_cluster_epoch(&self, state: ClusterEpochState) -> Result<ClusterEpochState> {
        if !self.accepting.load(Ordering::Acquire) {
            return Err(ServiceError::ShuttingDown);
        }
        let mut current = self.cluster_epoch.lock();
        if let Some(installed) = current.as_ref() {
            if state.epoch < installed.epoch {
                return Err(ServiceError::StaleEpoch(format!(
                    "refusing epoch {} below installed epoch {}",
                    state.epoch, installed.epoch
                )));
            }
        }
        *current = Some(state.clone());
        Ok(state)
    }

    /// The installed cluster membership view, if a coordinator has
    /// pushed one.
    pub fn cluster_epoch(&self) -> Option<ClusterEpochState> {
        self.cluster_epoch.lock().clone()
    }

    /// Enforces the catalog epoch carried by a cluster data-plane
    /// request. A request carrying `Some(epoch)` against a node holding
    /// a *different* installed epoch is refused with
    /// [`ServiceError::StaleEpoch`] in either direction: an older
    /// request epoch means the coordinator's routing table predates the
    /// current placement; a newer one means this node missed a
    /// membership push and its fragments may be stale. Requests without
    /// an epoch (older coordinators, plain clients) and nodes without an
    /// installed view are exempt — the check only binds once both sides
    /// speak epochs.
    pub fn check_epoch(&self, epoch: Option<u64>) -> Result<()> {
        let Some(requested) = epoch else {
            return Ok(());
        };
        let current = self.cluster_epoch.lock();
        match current.as_ref() {
            Some(installed) if installed.epoch != requested => {
                Err(ServiceError::StaleEpoch(format!(
                    "request epoch {requested} vs node epoch {}",
                    installed.epoch
                )))
            }
            _ => Ok(()),
        }
    }

    /// Hash-partitions the stored relation's local tuples on `keys` into
    /// `parts` buckets, optionally dropping tuples through a bit-vector
    /// filter first (tested on the same `keys`). This is the sending-site
    /// half of divisor partitioning, executed where the data lives;
    /// returns the schema, one bucket per part, and the filtered count.
    pub fn repartition(
        &self,
        name: &str,
        keys: &[usize],
        parts: usize,
        filter: Option<&BitVectorFilter>,
    ) -> Result<(Schema, Vec<Vec<Tuple>>, u64)> {
        if !self.accepting.load(Ordering::Acquire) {
            return Err(ServiceError::ShuttingDown);
        }
        if parts == 0 {
            return Err(ServiceError::BadRequest("zero parts".into()));
        }
        if keys.is_empty() {
            return Err(ServiceError::BadRequest("empty key set".into()));
        }
        let relation = self.catalog.get(name)?;
        let arity = relation.schema.arity();
        if let Some(&k) = keys.iter().find(|&&k| k >= arity) {
            return Err(ServiceError::BadRequest(format!(
                "partition key {k} out of range for arity {arity}"
            )));
        }
        let mut buckets: Vec<Vec<Tuple>> = vec![Vec::new(); parts];
        let mut filtered = 0u64;
        for tuple in relation.tuples.iter() {
            if let Some(f) = filter {
                if !f.may_match(tuple, keys) {
                    filtered += 1;
                    continue;
                }
            }
            buckets[route(tuple, keys, parts)].push(tuple.clone());
        }
        Ok((relation.schema.clone(), buckets, filtered))
    }

    /// Builds a bit-vector filter over the stored relation's local tuples
    /// hashed on `keys`; returns the filter and the insertion count. The
    /// coordinator ORs the per-node filters and ships the union back with
    /// its repartition requests — bits move, tuples don't.
    pub fn build_filter(
        &self,
        name: &str,
        keys: &[usize],
        bits: usize,
    ) -> Result<(BitVectorFilter, u64)> {
        if !self.accepting.load(Ordering::Acquire) {
            return Err(ServiceError::ShuttingDown);
        }
        if bits == 0 || bits > crate::proto::MAX_FILTER_BITS {
            return Err(ServiceError::BadRequest(format!(
                "filter size {bits} out of range"
            )));
        }
        if keys.is_empty() {
            return Err(ServiceError::BadRequest("empty key set".into()));
        }
        let relation = self.catalog.get(name)?;
        let arity = relation.schema.arity();
        if let Some(&k) = keys.iter().find(|&&k| k >= arity) {
            return Err(ServiceError::BadRequest(format!(
                "filter key {k} out of range for arity {arity}"
            )));
        }
        let mut filter = BitVectorFilter::new(bits);
        for tuple in relation.tuples.iter() {
            filter.insert_on(tuple, keys);
        }
        Ok((filter, relation.tuples.len() as u64))
    }

    /// `(name, version, cardinality)` of every registered relation.
    pub fn list_relations(&self) -> Vec<(String, u64, usize)> {
        self.catalog.list()
    }

    /// Runs `dividend ÷ divisor`, blocking until the quotient is ready,
    /// the request is rejected, or the query fails.
    pub fn divide(
        &self,
        dividend: &str,
        divisor: &str,
        options: &QueryOptions,
    ) -> Result<QueryResponse> {
        let start = Instant::now();
        match self.divide_inner(dividend, divisor, options, start) {
            Ok(mut response) => {
                // End-to-end latency is defined *here*, once: admission
                // through reply, queue wait included. The same value is
                // stamped on the response and recorded in the histogram —
                // workers and the cache path deliberately do not record
                // latency, so each query contributes exactly one sample.
                response.micros = self.record_success(start, response.profile.is_some());
                Ok(response)
            }
            Err(e) => {
                self.record_failure(&e);
                Err(e)
            }
        }
    }

    /// Counts a failed query into the metric its error class owns.
    fn record_failure(&self, e: &ServiceError) {
        match e {
            ServiceError::Overloaded => {
                self.metrics.rejections.fetch_add(1, Ordering::Relaxed);
            }
            ServiceError::ShuttingDown => {
                self.metrics.shed_shutdown.fetch_add(1, Ordering::Relaxed);
            }
            ServiceError::DeadlineExceeded => {
                self.metrics.timeouts.fetch_add(1, Ordering::Relaxed);
            }
            _ => {
                self.metrics.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Stamps a successful query into the shared latency/throughput
    /// metrics and onto the response — exactly once per query, queue wait
    /// included, shared by [`Service::divide`] and
    /// [`Service::exec_plan`].
    fn record_success(&self, start: Instant, profiled: bool) -> u64 {
        let micros = start.elapsed().as_micros() as u64;
        self.metrics.queries.fetch_add(1, Ordering::Relaxed);
        self.metrics.latency.record(micros);
        if profiled {
            self.metrics
                .profiled_queries
                .fetch_add(1, Ordering::Relaxed);
        }
        micros
    }

    fn divide_inner(
        &self,
        dividend: &str,
        divisor: &str,
        options: &QueryOptions,
        start: Instant,
    ) -> Result<QueryResponse> {
        if !self.accepting.load(Ordering::Acquire) {
            return Err(ServiceError::ShuttingDown);
        }
        let deadline = options
            .deadline
            .or(self.default_deadline)
            .map(|d| start + d);
        if deadline.is_some_and(|d| Instant::now() >= d) {
            // A dead-on-arrival deadline is refused before any work — a
            // cache hit must not resurrect a query the client already
            // considers failed.
            return Err(ServiceError::DeadlineExceeded);
        }
        let dividend = self.catalog.get(dividend)?;
        let divisor = self.catalog.get(divisor)?;
        let spec = self.resolve_spec(&dividend, &divisor, options)?;
        let algorithm = match options.distribute {
            None => self.resolve_algorithm(&dividend, &divisor, &spec, options),
            Some(dist) => {
                // The parallel machine runs hash division on every node;
                // an explicit conflicting algorithm is unsatisfiable.
                if dist.nodes == 0 || dist.nodes > crate::proto::MAX_CLUSTER_NODES {
                    return Err(ServiceError::BadRequest(format!(
                        "distributed node count {} out of range",
                        dist.nodes
                    )));
                }
                let forced = Algorithm::HashDivision {
                    mode: HashDivisionMode::Standard,
                };
                match options.algorithm {
                    None => forced,
                    Some(alg) if alg == forced => forced,
                    Some(alg) => {
                        return Err(ServiceError::BadRequest(format!(
                            "distributed execution implements hash division only, not {alg:?}"
                        )))
                    }
                }
            }
        };
        validate_algorithm_for_inputs(algorithm, options.assume_unique)
            .map_err(|e| ServiceError::BadRequest(e.to_string()))?;

        let key = CacheKey {
            dividend: (dividend.name.clone(), dividend.version),
            divisor: (divisor.name.clone(), divisor.version),
            divisor_keys: spec.divisor_keys.clone(),
            quotient_keys: spec.quotient_keys.clone(),
            algorithm: algorithm_code(algorithm),
            assume_unique: options.assume_unique,
        };
        if let Some(hit) = self.cache.get(&key) {
            self.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(QueryResponse {
                schema: hit.schema.clone(),
                tuples: hit.tuples.clone(),
                algorithm,
                cached: true,
                dividend_version: dividend.version,
                divisor_version: divisor.version,
                ops: OpSnapshot::default(),
                // Placeholder: `divide` stamps the end-to-end latency.
                micros: 0,
                profile: None,
            });
        }
        self.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);

        let (reply_tx, reply_rx) = bounded(1);
        let job = QueryJob {
            dividend,
            divisor,
            spec,
            algorithm,
            assume_unique: options.assume_unique,
            deadline,
            profile: options.profile,
            distribute: options.distribute,
            mem_budget: options.mem_budget,
            reply: reply_tx,
        };
        {
            let queue = self.queue.lock();
            let Some(tx) = queue.as_ref() else {
                return Err(ServiceError::ShuttingDown);
            };
            match tx.try_send(Job::Divide(job)) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => return Err(ServiceError::Overloaded),
                Err(TrySendError::Disconnected(_)) => return Err(ServiceError::ShuttingDown),
            }
        }
        let response = reply_rx
            .recv()
            .map_err(|_| ServiceError::Internal("worker exited before replying".into()))??;
        self.cache.insert(
            key,
            Arc::new(CachedResult {
                schema: response.schema.clone(),
                tuples: response.tuples.clone(),
                ops: response.ops,
            }),
        );
        Ok(response)
    }

    /// Parses, validates, and executes a composed query plan (the
    /// s-expression language of `reldiv-plan`), blocking until the
    /// result is ready, the request is rejected, or the plan fails.
    ///
    /// Every relation the plan reads is pinned at its current catalog
    /// version before binding, so a plan and a concurrent update never
    /// race; the plan cache keys on the canonical plan text plus those
    /// exact pins.
    pub fn exec_plan(&self, text: &str, options: &PlanOptions) -> Result<PlanResponse> {
        let start = Instant::now();
        match self.exec_plan_inner(text, options, start) {
            Ok(mut response) => {
                response.micros = self.record_success(start, response.profile.is_some());
                Ok(response)
            }
            Err(e) => {
                self.record_failure(&e);
                Err(e)
            }
        }
    }

    fn exec_plan_inner(
        &self,
        text: &str,
        options: &PlanOptions,
        start: Instant,
    ) -> Result<PlanResponse> {
        if !self.accepting.load(Ordering::Acquire) {
            return Err(ServiceError::ShuttingDown);
        }
        let deadline = options
            .deadline
            .or(self.default_deadline)
            .map(|d| start + d);
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(ServiceError::DeadlineExceeded);
        }
        if text.len() > crate::proto::MAX_PLAN_WIRE {
            return Err(ServiceError::BadRequest(format!(
                "plan text of {} bytes exceeds the {} byte limit",
                text.len(),
                crate::proto::MAX_PLAN_WIRE
            )));
        }
        let plan = reldiv_plan::parse(text).map_err(|e| ServiceError::BadRequest(e.to_string()))?;
        // Pin every relation the plan reads at its current version
        // (`Plan::relations` is sorted, so the pins — and the cache key
        // built from them — are canonical).
        let mut pinned = Vec::new();
        for name in plan.relations() {
            pinned.push(self.catalog.get(&name)?);
        }
        let bound = reldiv_plan::bind(&plan, &PinnedCatalog(&pinned))
            .map_err(|e| ServiceError::BadRequest(e.to_string()))?;
        let key = PlanCacheKey {
            text: plan.print(),
            pins: pinned.iter().map(|r| (r.name.clone(), r.version)).collect(),
        };
        if let Some(hit) = self.plan_cache.get(&key) {
            self.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(PlanResponse {
                schema: hit.schema.clone(),
                tuples: hit.tuples.clone(),
                algorithms: hit.algorithms.clone(),
                cached: true,
                relations: key.pins.clone(),
                ops: OpSnapshot::default(),
                // Placeholder: `exec_plan` stamps the end-to-end latency.
                micros: 0,
                profile: None,
            });
        }
        self.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);

        let (reply_tx, reply_rx) = bounded(1);
        let job = PlanJob {
            bound,
            pinned,
            deadline,
            profile: options.profile,
            // Under fault injection a `(restricted no)` plan hint is
            // ignored, for the same reason client divide assertions are.
            honor_hints: !self.faulty,
            reply: reply_tx,
        };
        {
            let queue = self.queue.lock();
            let Some(tx) = queue.as_ref() else {
                return Err(ServiceError::ShuttingDown);
            };
            match tx.try_send(Job::Plan(job)) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => return Err(ServiceError::Overloaded),
                Err(TrySendError::Disconnected(_)) => return Err(ServiceError::ShuttingDown),
            }
        }
        let response = reply_rx
            .recv()
            .map_err(|_| ServiceError::Internal("worker exited before replying".into()))??;
        self.plan_cache.insert(
            key,
            Arc::new(CachedPlan {
                schema: response.schema.clone(),
                tuples: response.tuples.clone(),
                algorithms: response.algorithms.clone(),
                ops: response.ops,
            }),
        );
        Ok(response)
    }

    fn resolve_spec(
        &self,
        dividend: &RelationVersion,
        divisor: &RelationVersion,
        options: &QueryOptions,
    ) -> Result<DivisionSpec> {
        match &options.spec {
            Some((divisor_keys, quotient_keys)) => DivisionSpec::new(
                &dividend.schema,
                &divisor.schema,
                divisor_keys.clone(),
                quotient_keys.clone(),
            ),
            None => DivisionSpec::trailing_divisor(&dividend.schema, &divisor.schema),
        }
        .map_err(|e| ServiceError::BadRequest(e.to_string()))
    }

    fn resolve_algorithm(
        &self,
        dividend: &RelationVersion,
        divisor: &RelationVersion,
        spec: &DivisionSpec,
        options: &QueryOptions,
    ) -> Algorithm {
        if let Some(alg) = options.algorithm {
            return alg;
        }
        // The paper's planner wants the quotient size; estimate it as the
        // dividend's group count upper bound |R| / max(1, |S|).
        let dividend_size = dividend.cardinality() as u64;
        let divisor_size = divisor.cardinality() as u64;
        let quotient_estimate = dividend_size / divisor_size.max(1);
        let _ = spec;
        // Default `restricted_divisor: true` — client relations carry no
        // referential-integrity guarantee, and the no-join aggregation
        // plans silently return a wrong quotient when dividend tuples
        // reference values outside the divisor. Exactness beats the
        // semi-join's cost. A client may assert integrity per query
        // (`Some(false)`), but the assertion is ignored while fault
        // injection is active: a fault-recovered relation may have lost
        // divisor tuples the dividend still references.
        let restricted = match options.restricted_divisor {
            Some(claim) if !self.faulty => claim,
            _ => true,
        };
        Algorithm::recommend(
            divisor_size,
            quotient_estimate.max(1),
            Some(dividend_size),
            restricted,
            options.assume_unique,
        )
    }

    /// Current counters.
    pub fn stats(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Number of cached division results.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Number of cached plan results.
    pub fn plan_cache_len(&self) -> usize {
        self.plan_cache.len()
    }

    /// Whether the service still accepts work.
    pub fn is_accepting(&self) -> bool {
        self.accepting.load(Ordering::Acquire)
    }

    /// Hard stop, simulating node death: trips the abort flag so every
    /// in-flight execution cancels at its next checkpoint, then shuts
    /// down. Unlike [`Service::shutdown`], admitted queries do *not* run
    /// to completion — a killed node must stop writing spill pages, not
    /// finish its quotients. Idempotent.
    pub fn abort(&self) {
        self.abort_flag.store(true, Ordering::Release);
        self.shutdown();
    }

    /// Graceful shutdown: refuses new queries, then waits for every
    /// admitted query to complete. Idempotent.
    pub fn shutdown(&self) {
        self.accepting.store(false, Ordering::Release);
        // Dropping the sender closes the queue: workers drain what was
        // admitted, then their receive loops end.
        drop(self.queue.lock().take());
        let handles = std::mem::take(&mut *self.workers.lock());
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds plans against the exact relation versions pinned at admission
/// (not the live catalog, which a concurrent update may have moved on).
struct PinnedCatalog<'a>(&'a [Arc<RelationVersion>]);

impl reldiv_plan::CatalogSource for PinnedCatalog<'_> {
    fn lookup(&self, name: &str) -> Option<(Schema, u64)> {
        self.0
            .iter()
            .find(|r| r.name == name)
            .map(|r| (r.schema.clone(), r.cardinality() as u64))
    }
}
