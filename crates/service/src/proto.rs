//! The length-prefixed binary wire protocol.
//!
//! Every message is one frame: a `u32` little-endian payload length
//! followed by the payload. The first payload byte is an opcode (requests)
//! or a status byte (responses). Integers are little-endian; strings are
//! `u16` length + UTF-8 bytes; tuples travel as the fixed-width records of
//! [`RecordCodec`], so a relation's bytes on the wire are identical to its
//! bytes in a record file. The full grammar is documented in
//! `docs/PROTOCOL.md`.

use std::io::{self, Read, Write};
use std::sync::Arc;

use reldiv_core::{Algorithm, HashDivisionMode, ProfileNode, QueryProfile, SpanKind};
use reldiv_parallel::filter::BitVectorFilter;
use reldiv_parallel::{Distribution, Strategy};
use reldiv_rel::counters::OpSnapshot;
use reldiv_rel::{ColumnType, Field, RecordCodec, Schema, Tuple};

use crate::error::ServiceError;
use crate::metrics::MetricsSnapshot;

/// Frames larger than this are refused (a corrupt length prefix would
/// otherwise ask for an absurd allocation).
pub const MAX_FRAME: usize = 64 << 20;

/// Largest shard/repartition fan-out accepted on the wire. A corrupt
/// `parts` field would otherwise ask for an absurd bucket allocation.
pub const MAX_CLUSTER_NODES: usize = 1024;

/// The reserved catalog-name prefix under which replica copies of a
/// sharded fragment are stored (see [`Request::ReplicaWrite`]).
pub const REPLICA_PREFIX: &str = ".replica.";

/// The catalog name a replica copy of `fragment` of `base` is stored
/// under. This is the single definition of the rule: the server's
/// `ReplicaWrite` dispatch installs under this name and a cluster
/// coordinator rewrites failover requests to it — both sides must agree
/// byte-for-byte or every failover read resolves to an unknown relation.
pub fn replica_name(fragment: impl std::fmt::Display, base: &str) -> String {
    format!("{REPLICA_PREFIX}{fragment}.{base}")
}

/// Largest bit-vector filter accepted on the wire (8 MiB of words).
pub const MAX_FILTER_BITS: usize = 1 << 26;

/// Algorithm wire code for "let the service choose".
pub const ALG_AUTO: u8 = 0xFF;

/// Wire code for an absent tri-state assertion (the restricted-divisor
/// byte of a divide request).
pub const TRI_AUTO: u8 = 0xFF;

/// Largest plan text accepted on the wire, matching the parser's own
/// bound ([`reldiv_plan::parse::MAX_PLAN_TEXT`]).
pub const MAX_PLAN_WIRE: usize = 1 << 20;

/// Encodes an algorithm as its stable wire code.
pub fn algorithm_code(alg: Algorithm) -> u8 {
    match alg {
        Algorithm::Naive => 0,
        Algorithm::SortAggregation { join: false } => 1,
        Algorithm::SortAggregation { join: true } => 2,
        Algorithm::HashAggregation { join: false } => 3,
        Algorithm::HashAggregation { join: true } => 4,
        Algorithm::HashDivision {
            mode: HashDivisionMode::Standard,
        } => 5,
        Algorithm::HashDivision {
            mode: HashDivisionMode::EarlyOut,
        } => 6,
        Algorithm::HashDivision {
            mode: HashDivisionMode::CounterOnly,
        } => 7,
    }
}

/// Decodes an algorithm wire code ([`ALG_AUTO`] is not an algorithm and
/// returns `None`, as do unknown codes).
pub fn algorithm_from_code(code: u8) -> Option<Algorithm> {
    Some(match code {
        0 => Algorithm::Naive,
        1 => Algorithm::SortAggregation { join: false },
        2 => Algorithm::SortAggregation { join: true },
        3 => Algorithm::HashAggregation { join: false },
        4 => Algorithm::HashAggregation { join: true },
        5 => Algorithm::HashDivision {
            mode: HashDivisionMode::Standard,
        },
        6 => Algorithm::HashDivision {
            mode: HashDivisionMode::EarlyOut,
        },
        7 => Algorithm::HashDivision {
            mode: HashDivisionMode::CounterOnly,
        },
        _ => return None,
    })
}

/// Stable error codes for [`ServiceError`] on the wire.
pub fn error_code(err: &ServiceError) -> u8 {
    match err {
        ServiceError::Overloaded => 1,
        ServiceError::ShuttingDown => 2,
        ServiceError::UnknownRelation(_) => 3,
        ServiceError::BadRequest(_) => 4,
        ServiceError::Exec(_) => 5,
        ServiceError::Protocol(_) => 6,
        ServiceError::Internal(_) => 7,
        ServiceError::DeadlineExceeded => 8,
        ServiceError::StaleEpoch(_) => 9,
    }
}

/// Reconstructs a [`ServiceError`] from its wire code and message.
pub fn error_from_code(code: u8, message: String) -> ServiceError {
    match code {
        1 => ServiceError::Overloaded,
        2 => ServiceError::ShuttingDown,
        3 => ServiceError::UnknownRelation(message),
        4 => ServiceError::BadRequest(message),
        5 => ServiceError::Exec(message),
        6 => ServiceError::Protocol(message),
        8 => ServiceError::DeadlineExceeded,
        9 => ServiceError::StaleEpoch(message),
        _ => ServiceError::Internal(message),
    }
}

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Install (or replace) a named relation.
    Register {
        /// Catalog name.
        name: String,
        /// Relation schema.
        schema: Schema,
        /// Relation tuples.
        tuples: Vec<Tuple>,
    },
    /// Remove a named relation.
    DropRelation {
        /// Catalog name.
        name: String,
    },
    /// Run a division query.
    Divide(DivideRequest),
    /// Read the service counters.
    Stats,
    /// Ask the server to shut down gracefully.
    Shutdown,
    /// Install one shard of a hash-partitioned relation (cluster node
    /// role): the node stores the tuples as an ordinary relation plus the
    /// shard coordinates, so a coordinator can later verify placement.
    Shard(ShardRequest),
    /// Hash-partition a stored relation's tuples on a key set into
    /// `parts` buckets, optionally dropping tuples through a bit-vector
    /// filter first — the sending-site half of divisor partitioning,
    /// executed where the data lives.
    Repartition(RepartitionRequest),
    /// Build a bit-vector filter over a stored relation's tuples hashed
    /// on `keys`. The coordinator ORs the per-node filters together and
    /// ships the union back inside [`Request::Repartition`] — bits move,
    /// tuples don't.
    BuildFilter {
        /// Relation to scan.
        name: String,
        /// Columns to hash each tuple on.
        keys: Vec<usize>,
        /// Filter size in bits (bounded by [`MAX_FILTER_BITS`]).
        bits: u32,
        /// Coordinator catalog epoch (trailing extension; absence skips
        /// the staleness check).
        epoch: Option<u64>,
    },
    /// Run a local division and tag the reply — one node's share of a
    /// cluster query. The tag travels back verbatim in
    /// [`Reply::PartialQuotient`] so the collection site can map the
    /// reply to its dense node index even over reordered links.
    DividePartial {
        /// Collection-site tag assigned by the coordinator.
        tag: u16,
        /// The local division to run.
        query: DivideRequest,
        /// Coordinator catalog epoch (trailing extension; absence skips
        /// the staleness check).
        epoch: Option<u64>,
    },
    /// Parse, validate, and execute a composed query plan (filters,
    /// joins, projections, divisions, HAVING COUNT) over the catalog.
    ExecPlan(ExecPlanRequest),
    /// Liveness and health probe (cluster role): answered without going
    /// through the worker queue, so a wedged pool still answers. The
    /// reply carries the node's catalog epoch and whether it is
    /// accepting queries.
    Heartbeat,
    /// Read or install the node's cluster-catalog epoch: the membership
    /// view (epoch number, member addresses, replication factor) the
    /// coordinator last pushed during a rebalance. Data-plane requests
    /// carrying an older epoch are refused with
    /// [`ServiceError::StaleEpoch`] so a pre-rebalance routing table can
    /// never produce a wrong quotient.
    ClusterEpoch(EpochRequest),
    /// Install a replica copy of one fragment of a sharded relation. The
    /// node stores it under the reserved `.replica.{fragment}.{name}`
    /// catalog name so a coordinator can fail a fragment's sub-queries
    /// over to this node when the primary dies.
    ReplicaWrite(ReplicaWriteRequest),
}

/// The payload of a [`Request::ClusterEpoch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EpochRequest {
    /// Read the node's current membership view.
    Get,
    /// Install a new membership view. The node refuses a `Set` whose
    /// epoch is below its current one (a stale coordinator must not
    /// roll the cluster backwards).
    Set {
        /// Monotonic catalog epoch; bumped by every membership change.
        epoch: u64,
        /// Member addresses in node-index order.
        members: Vec<String>,
        /// Replication factor k: every fragment lives on k nodes.
        replication: u16,
    },
}

/// The replica-install payload of a [`Request::ReplicaWrite`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaWriteRequest {
    /// Base catalog name (the primary's name; the replica is stored
    /// under `.replica.{fragment}.{name}`).
    pub name: String,
    /// Which fragment this is a replica of, `< of`.
    pub fragment: u16,
    /// Total fragment count (bounded by [`MAX_CLUSTER_NODES`]).
    pub of: u16,
    /// Columns the relation is hash-partitioned on.
    pub shard_keys: Vec<usize>,
    /// Relation schema (identical across fragments).
    pub schema: Schema,
    /// The fragment's tuples.
    pub tuples: Vec<Tuple>,
    /// Coordinator catalog epoch; mismatch is a typed
    /// [`ServiceError::StaleEpoch`]. `None` skips the check (a peer
    /// that predates epochs).
    pub epoch: Option<u64>,
}

/// The plan-execution payload of a [`Request::ExecPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecPlanRequest {
    /// The plan text (the s-expression language of `reldiv-plan`,
    /// documented in `docs/PLANS.md`). Bounded by [`MAX_PLAN_WIRE`].
    pub plan: String,
    /// Per-query deadline in milliseconds (`None` uses the server's
    /// default).
    pub deadline_ms: Option<u64>,
    /// Ask the server to profile the whole plan and attach the
    /// per-operator span tree to the reply (`EXPLAIN ANALYZE`).
    pub profile: bool,
}

/// The shard-install payload of a [`Request::Shard`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRequest {
    /// Catalog name (shared by all shards of the relation).
    pub name: String,
    /// This shard's index, `< of`.
    pub shard: u16,
    /// Total shard count (bounded by [`MAX_CLUSTER_NODES`]).
    pub of: u16,
    /// Columns the relation is hash-partitioned on.
    pub shard_keys: Vec<usize>,
    /// Relation schema (identical across shards).
    pub schema: Schema,
    /// This shard's tuples.
    pub tuples: Vec<Tuple>,
    /// Coordinator catalog epoch (trailing extension; absence skips the
    /// staleness check, keeping pre-replication coordinators working).
    pub epoch: Option<u64>,
}

/// The repartition payload of a [`Request::Repartition`].
#[derive(Debug, Clone, PartialEq)]
pub struct RepartitionRequest {
    /// Relation whose local tuples to partition.
    pub name: String,
    /// Columns to hash on — also the columns the filter (if any) tests.
    pub keys: Vec<usize>,
    /// Bucket count (bounded by [`MAX_CLUSTER_NODES`]).
    pub parts: u16,
    /// Bit-vector filter applied before bucketing: tuples whose `keys`
    /// projection misses the filter are dropped at this site and only
    /// counted, never shipped.
    pub filter: Option<BitVectorFilter>,
    /// Coordinator catalog epoch (trailing extension; absence skips the
    /// staleness check).
    pub epoch: Option<u64>,
}

/// The division query of a [`Request::Divide`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivideRequest {
    /// Dividend relation name.
    pub dividend: String,
    /// Divisor relation name.
    pub divisor: String,
    /// Explicit algorithm, or `None` for the cost-based recommendation.
    pub algorithm: Option<Algorithm>,
    /// Declare the inputs duplicate-free.
    pub assume_unique: bool,
    /// Explicit `(divisor_keys, quotient_keys)`, or `None` for the
    /// trailing-divisor convention.
    pub spec: Option<(Vec<usize>, Vec<usize>)>,
    /// Per-query deadline in milliseconds (`None` uses the server's
    /// default). An expired deadline cancels the division cooperatively
    /// and the reply is error code 8 (`DeadlineExceeded`).
    pub deadline_ms: Option<u64>,
    /// Ask the server to profile the query and attach the per-operator
    /// span tree to the reply (`EXPLAIN ANALYZE`). Encoded as a trailing
    /// byte that old clients simply omit, so absence decodes as `false`.
    pub profile: bool,
    /// Run the division over the in-process parallel machine (Section 6
    /// strategy, node count, optional bit-vector filter) instead of a
    /// single operator. Encoded as a trailing section after the profile
    /// byte; peers that predate it omit it and absence decodes as `None`.
    pub distribute: Option<Distribution>,
    /// Client assertion about the restricted-divisor property (`None`
    /// keeps the server's conservative default of `true`). `Some(false)`
    /// promises every dividend divisor-value appears in the divisor,
    /// unlocking the cheaper no-join aggregation plans; the server only
    /// honors the promise when no fault injection is active. Encoded as a
    /// trailing byte after the distribution section; peers that predate
    /// it omit it and absence decodes as `None`.
    pub restricted: Option<bool>,
    /// Per-query memory budget in bytes for the division's working
    /// state. `Some(b)` makes the server charge the query against a
    /// child pool capped at `b`, so a heavy division degrades adaptively
    /// (spilling partitions) instead of starving concurrent queries.
    /// Encoded as a trailing `u64` after the restricted byte, 0 for "no
    /// budget"; peers that predate it omit it and absence decodes as
    /// `None`.
    pub mem_budget: Option<u64>,
}

/// A successful server → client payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Register`].
    Registered {
        /// The catalog version installed.
        version: u64,
    },
    /// Answer to [`Request::DropRelation`].
    Dropped,
    /// Answer to [`Request::Divide`].
    Divided(DivideReply),
    /// Answer to [`Request::Stats`].
    Stats(MetricsSnapshot),
    /// Acknowledges [`Request::Shutdown`]; the server stops accepting
    /// connections after sending it.
    ShuttingDown,
    /// Answer to [`Request::Shard`].
    Sharded {
        /// The catalog version installed for this shard.
        version: u64,
    },
    /// Answer to [`Request::Repartition`]: the local tuples bucketed on
    /// the requested keys, plus how many the filter dropped at this site.
    Repartitioned {
        /// Relation schema (buckets share it).
        schema: Schema,
        /// One bucket per part, in part order.
        buckets: Vec<Vec<Tuple>>,
        /// Tuples dropped by the bit-vector filter before bucketing.
        filtered: u64,
    },
    /// Answer to [`Request::BuildFilter`].
    Filter {
        /// The filter over this node's local tuples.
        filter: BitVectorFilter,
        /// Tuples inserted (the local cardinality scanned).
        insertions: u64,
    },
    /// Answer to [`Request::DividePartial`].
    PartialQuotient(PartialQuotientReply),
    /// Answer to [`Request::ExecPlan`].
    Plan(PlanReply),
    /// Answer to [`Request::Heartbeat`].
    HeartbeatAck {
        /// The node's current cluster-catalog epoch.
        epoch: u64,
        /// Whether the node is accepting queries.
        accepting: bool,
    },
    /// Answer to [`Request::ClusterEpoch`] (both `Get` and `Set`): the
    /// node's membership view after the request.
    Epoch {
        /// The node's cluster-catalog epoch.
        epoch: u64,
        /// Member addresses in node-index order.
        members: Vec<String>,
        /// Replication factor k.
        replication: u16,
    },
    /// Answer to [`Request::ReplicaWrite`]: the write acknowledgment the
    /// coordinator tracks per fragment.
    ReplicaAck {
        /// The catalog version installed for the replica copy.
        version: u64,
        /// The fragment index, echoed for ack bookkeeping.
        fragment: u16,
    },
}

/// The result of a composed plan, answering [`Request::ExecPlan`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlanReply {
    /// The algorithm each division in the plan ran with, in execution
    /// order (empty for plans without a division).
    pub algorithms: Vec<Algorithm>,
    /// Whether the result came from the plan cache.
    pub cached: bool,
    /// End-to-end service latency in microseconds.
    pub micros: u64,
    /// Abstract operations the execution performed (zero on cache hits).
    pub ops: OpSnapshot,
    /// The catalog relations the plan read and the versions it was
    /// pinned to, sorted by name.
    pub relations: Vec<(String, u64)>,
    /// Result schema.
    pub schema: Schema,
    /// Result tuples.
    pub tuples: Arc<Vec<Tuple>>,
    /// The whole-plan span tree, present only when the request asked for
    /// it (and the execution was not a cache hit).
    pub profile: Option<QueryProfile>,
}

/// One node's share of a cluster division, answering
/// [`Request::DividePartial`].
#[derive(Debug, Clone, PartialEq)]
pub struct PartialQuotientReply {
    /// The coordinator-assigned tag, echoed verbatim.
    pub tag: u16,
    /// The algorithm that ran locally.
    pub algorithm: Algorithm,
    /// Local dividend version the partial quotient was computed from.
    pub dividend_version: u64,
    /// Local divisor version the partial quotient was computed from.
    pub divisor_version: u64,
    /// Node-local service latency in microseconds.
    pub micros: u64,
    /// Abstract operations the local execution performed.
    pub ops: OpSnapshot,
    /// Quotient schema.
    pub schema: Schema,
    /// This node's quotient cluster.
    pub tuples: Vec<Tuple>,
    /// The node-local span tree, when the request asked for one. The
    /// coordinator grafts these under its network root to form the merged
    /// cluster profile.
    pub profile: Option<QueryProfile>,
}

/// The quotient and its provenance, answering a division query.
#[derive(Debug, Clone, PartialEq)]
pub struct DivideReply {
    /// The algorithm that ran (the resolved choice when `auto` was
    /// requested).
    pub algorithm: Algorithm,
    /// Whether the result came from the cache.
    pub cached: bool,
    /// Dividend version the quotient was computed from.
    pub dividend_version: u64,
    /// Divisor version the quotient was computed from.
    pub divisor_version: u64,
    /// End-to-end service latency in microseconds.
    pub micros: u64,
    /// Abstract operations the execution performed (zero on cache hits).
    pub ops: OpSnapshot,
    /// Quotient schema.
    pub schema: Schema,
    /// Quotient tuples.
    pub tuples: Arc<Vec<Tuple>>,
    /// The per-operator span tree, present only when the request asked
    /// for it (and the execution was not a cache hit). Encoded as a
    /// trailing section that old servers omit, so absence decodes as
    /// `None`.
    pub profile: Option<QueryProfile>,
}

/// A server → client message: a [`Reply`] or an error.
pub type Response = Result<Reply, ServiceError>;

// ---------------------------------------------------------------------
// Framing

/// Writes one frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame; `Ok(None)` on a clean EOF before the length prefix.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// ---------------------------------------------------------------------
// Primitive encoders / decoders

type PResult<T> = Result<T, ServiceError>;

fn perr(msg: impl Into<String>) -> ServiceError {
    ServiceError::Protocol(msg.into())
}

struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf }
    }

    fn take(&mut self, n: usize) -> PResult<&'a [u8]> {
        if self.buf.len() < n {
            return Err(perr(format!(
                "truncated frame: wanted {n} bytes, {} left",
                self.buf.len()
            )));
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    fn u8(&mut self) -> PResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> PResult<u16> {
        let b = self.take(2)?;
        b.try_into()
            .map(u16::from_le_bytes)
            .map_err(|_| perr("internal: u16 slice length"))
    }

    fn u32(&mut self) -> PResult<u32> {
        let b = self.take(4)?;
        b.try_into()
            .map(u32::from_le_bytes)
            .map_err(|_| perr("internal: u32 slice length"))
    }

    fn u64(&mut self) -> PResult<u64> {
        let b = self.take(8)?;
        b.try_into()
            .map(u64::from_le_bytes)
            .map_err(|_| perr("internal: u64 slice length"))
    }

    fn str(&mut self) -> PResult<String> {
        let n = self.u16()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| perr("string is not UTF-8"))
    }

    /// Bytes not yet consumed. Used to decode optional trailing sections
    /// added by newer protocol revisions: an empty reader at that point
    /// means the peer predates the extension.
    fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn finish(&self) -> PResult<()> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(perr(format!("{} trailing bytes in frame", self.buf.len())))
        }
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) -> PResult<()> {
    let len = u16::try_from(s.len()).map_err(|_| {
        perr(format!(
            "string of {} bytes exceeds the u16 length",
            s.len()
        ))
    })?;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

fn put_schema(out: &mut Vec<u8>, schema: &Schema) -> PResult<()> {
    let n = u16::try_from(schema.arity())
        .map_err(|_| perr(format!("schema arity {} exceeds u16", schema.arity())))?;
    out.extend_from_slice(&n.to_le_bytes());
    for field in schema.fields() {
        match field.ty {
            ColumnType::Int => out.push(0),
            ColumnType::Str(width) => {
                out.push(1);
                let width = u32::try_from(width)
                    .map_err(|_| perr(format!("string width {width} exceeds u32")))?;
                out.extend_from_slice(&width.to_le_bytes());
            }
        }
        put_str(out, &field.name)?;
    }
    Ok(())
}

fn get_schema(r: &mut Reader<'_>) -> PResult<Schema> {
    let n = r.u16()? as usize;
    let mut fields = Vec::with_capacity(n);
    for _ in 0..n {
        let ty = match r.u8()? {
            0 => ColumnType::Int,
            1 => ColumnType::Str(r.u32()? as usize),
            t => return Err(perr(format!("unknown column type tag {t}"))),
        };
        let name = r.str()?;
        fields.push(Field::new(name, ty));
    }
    Ok(Schema::new(fields))
}

fn put_tuples(out: &mut Vec<u8>, schema: &Schema, tuples: &[Tuple]) -> PResult<()> {
    let codec = RecordCodec::new(schema.clone());
    let n = u32::try_from(tuples.len()).map_err(|_| perr("too many tuples for one frame"))?;
    out.extend_from_slice(&n.to_le_bytes());
    for t in tuples {
        codec
            .encode_into(t, out)
            .map_err(|e| perr(format!("tuple does not fit the schema: {e}")))?;
    }
    Ok(())
}

fn get_tuples(r: &mut Reader<'_>, schema: &Schema) -> PResult<Vec<Tuple>> {
    let codec = RecordCodec::new(schema.clone());
    let n = r.u32()? as usize;
    let width = codec.record_width();
    let bytes = r.take(
        n.checked_mul(width)
            .ok_or_else(|| perr("tuple count overflow"))?,
    )?;
    let mut tuples = Vec::with_capacity(n);
    for record in bytes.chunks_exact(width) {
        tuples.push(
            codec
                .decode(record)
                .map_err(|e| perr(format!("bad record: {e}")))?,
        );
    }
    Ok(tuples)
}

fn put_keys(out: &mut Vec<u8>, keys: &[usize]) -> PResult<()> {
    let n = u16::try_from(keys.len())
        .map_err(|_| perr(format!("key list of {} entries exceeds u16", keys.len())))?;
    out.extend_from_slice(&n.to_le_bytes());
    for &k in keys {
        let k =
            u16::try_from(k).map_err(|_| perr(format!("column index {k} exceeds the u16 wire")))?;
        out.extend_from_slice(&k.to_le_bytes());
    }
    Ok(())
}

fn get_keys(r: &mut Reader<'_>) -> PResult<Vec<usize>> {
    let n = r.u16()? as usize;
    let mut keys = Vec::with_capacity(n);
    for _ in 0..n {
        keys.push(r.u16()? as usize);
    }
    Ok(keys)
}

fn put_ops(out: &mut Vec<u8>, ops: &OpSnapshot) {
    out.extend_from_slice(&ops.comparisons.to_le_bytes());
    out.extend_from_slice(&ops.hashes.to_le_bytes());
    out.extend_from_slice(&ops.moves.to_le_bytes());
    out.extend_from_slice(&ops.bitops.to_le_bytes());
}

fn get_ops(r: &mut Reader<'_>) -> PResult<OpSnapshot> {
    Ok(OpSnapshot {
        comparisons: r.u64()?,
        hashes: r.u64()?,
        moves: r.u64()?,
        bitops: r.u64()?,
    })
}

// ---------------------------------------------------------------------
// Query profiles
//
// A profile is a tree of spans. Each node is encoded depth-first:
// label, kind code, eight u64 metrics, a phase list, then a u16 child
// count followed by the children. Hostile input is bounded two ways:
// nesting deeper than [`MAX_PROFILE_DEPTH`] and trees larger than
// [`MAX_PROFILE_NODES`] are typed protocol errors, never unbounded
// recursion or allocation.

/// Deepest span nesting accepted on the wire.
pub const MAX_PROFILE_DEPTH: usize = 64;

/// Largest span tree accepted on the wire.
pub const MAX_PROFILE_NODES: usize = 65_536;

fn put_profile_node(out: &mut Vec<u8>, node: &ProfileNode) -> PResult<()> {
    put_str(out, &node.label)?;
    out.push(node.kind.code());
    for v in [
        node.wall_micros,
        node.tuples_in,
        node.tuples_out,
        node.pages_read,
        node.pages_written,
        node.spill_bytes,
        node.network_bytes,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    put_ops(out, &node.ops);
    let phases = u16::try_from(node.phases.len())
        .map_err(|_| perr(format!("{} phase notes exceed u16", node.phases.len())))?;
    out.extend_from_slice(&phases.to_le_bytes());
    for phase in &node.phases {
        put_str(out, phase)?;
    }
    let children = u16::try_from(node.children.len())
        .map_err(|_| perr(format!("{} child spans exceed u16", node.children.len())))?;
    out.extend_from_slice(&children.to_le_bytes());
    for child in &node.children {
        put_profile_node(out, child)?;
    }
    Ok(())
}

fn get_profile_node(r: &mut Reader<'_>, depth: usize, budget: &mut usize) -> PResult<ProfileNode> {
    if depth > MAX_PROFILE_DEPTH {
        return Err(perr(format!(
            "profile nesting exceeds the depth limit of {MAX_PROFILE_DEPTH}"
        )));
    }
    if *budget == 0 {
        return Err(perr(format!(
            "profile tree exceeds the {MAX_PROFILE_NODES}-node limit"
        )));
    }
    *budget -= 1;
    let label = r.str()?;
    let kind = SpanKind::from_code(r.u8()?);
    let wall_micros = r.u64()?;
    let tuples_in = r.u64()?;
    let tuples_out = r.u64()?;
    let pages_read = r.u64()?;
    let pages_written = r.u64()?;
    let spill_bytes = r.u64()?;
    let network_bytes = r.u64()?;
    let ops = get_ops(r)?;
    let n_phases = r.u16()? as usize;
    let mut phases = Vec::with_capacity(n_phases.min(256));
    for _ in 0..n_phases {
        phases.push(r.str()?);
    }
    let n_children = r.u16()? as usize;
    let mut children = Vec::with_capacity(n_children.min(256));
    for _ in 0..n_children {
        children.push(get_profile_node(r, depth + 1, budget)?);
    }
    Ok(ProfileNode {
        label,
        kind,
        wall_micros,
        tuples_in,
        tuples_out,
        ops,
        pages_read,
        pages_written,
        spill_bytes,
        network_bytes,
        phases,
        children,
    })
}

fn put_profile(out: &mut Vec<u8>, profile: &QueryProfile) -> PResult<()> {
    put_profile_node(out, &profile.root)
}

fn get_profile(r: &mut Reader<'_>) -> PResult<QueryProfile> {
    let mut budget = MAX_PROFILE_NODES;
    let root = get_profile_node(r, 0, &mut budget)?;
    Ok(QueryProfile { root })
}

// ---------------------------------------------------------------------
// Bit-vector filters
//
// Wire form: u32 bit count, u32 word count, then the words as u64s. The
// word count is redundant (it must equal ceil(bits/64)) and exists so a
// corrupt frame is caught by arithmetic, not by a misaligned read of
// whatever follows. Bounded by [`MAX_FILTER_BITS`].

fn put_filter(out: &mut Vec<u8>, filter: &BitVectorFilter) -> PResult<()> {
    if filter.bits() > MAX_FILTER_BITS {
        return Err(perr(format!(
            "filter of {} bits exceeds the {MAX_FILTER_BITS}-bit limit",
            filter.bits()
        )));
    }
    out.extend_from_slice(&(filter.bits() as u32).to_le_bytes());
    let words = filter.words();
    out.extend_from_slice(&(words.len() as u32).to_le_bytes());
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    Ok(())
}

fn get_filter(r: &mut Reader<'_>) -> PResult<BitVectorFilter> {
    let bits = r.u32()? as usize;
    if bits > MAX_FILTER_BITS {
        return Err(perr(format!(
            "filter of {bits} bits exceeds the {MAX_FILTER_BITS}-bit limit"
        )));
    }
    let n_words = r.u32()? as usize;
    if n_words != bits.div_ceil(64) {
        return Err(perr(format!(
            "filter word count {n_words} does not match {bits} bits"
        )));
    }
    let mut words = Vec::with_capacity(n_words);
    for _ in 0..n_words {
        words.push(r.u64()?);
    }
    BitVectorFilter::from_parts(bits, words)
        .ok_or_else(|| perr("filter geometry rejected".to_string()))
}

// ---------------------------------------------------------------------
// Requests

const OP_PING: u8 = 0x01;
const OP_REGISTER: u8 = 0x02;
const OP_DROP: u8 = 0x03;
const OP_DIVIDE: u8 = 0x04;
const OP_STATS: u8 = 0x05;
const OP_SHUTDOWN: u8 = 0x06;
const OP_SHARD: u8 = 0x07;
const OP_REPARTITION: u8 = 0x08;
const OP_BUILD_FILTER: u8 = 0x09;
const OP_DIVIDE_PARTIAL: u8 = 0x0A;
const OP_EXEC_PLAN: u8 = 0x0B;
const OP_HEARTBEAT: u8 = 0x0C;
const OP_CLUSTER_EPOCH: u8 = 0x0D;
const OP_REPLICA_WRITE: u8 = 0x0E;

/// Encodes the optional trailing catalog-epoch extension shared by the
/// cluster data-plane requests: a presence byte, then the epoch. Peers
/// that predate replication simply stop before it.
fn put_epoch_ext(out: &mut Vec<u8>, epoch: Option<u64>) {
    match epoch {
        None => out.push(0),
        Some(e) => {
            out.push(1);
            out.extend_from_slice(&e.to_le_bytes());
        }
    }
}

/// Decodes the trailing catalog-epoch extension; an exhausted reader
/// means the peer predates it.
fn get_epoch_ext(r: &mut Reader<'_>) -> PResult<Option<u64>> {
    if r.remaining() == 0 {
        return Ok(None);
    }
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.u64()?)),
        t => Err(perr(format!("unknown epoch tag {t}"))),
    }
}

/// Encodes a membership view (epoch, member addresses, replication
/// factor), shared by the `ClusterEpoch` request and the `Epoch` reply.
fn put_membership(
    out: &mut Vec<u8>,
    epoch: u64,
    members: &[String],
    replication: u16,
) -> PResult<()> {
    if members.is_empty() || members.len() > MAX_CLUSTER_NODES {
        return Err(perr(format!(
            "{} members is outside 1..={MAX_CLUSTER_NODES}",
            members.len()
        )));
    }
    if replication == 0 || replication as usize > members.len() {
        return Err(perr(format!(
            "replication factor {replication} is outside 1..={}",
            members.len()
        )));
    }
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&(members.len() as u16).to_le_bytes());
    for m in members {
        put_str(out, m)?;
    }
    out.extend_from_slice(&replication.to_le_bytes());
    Ok(())
}

/// Decodes a membership view, enforcing the same geometry bounds the
/// encoder does so hostile frames never allocate per a lying count.
fn get_membership(r: &mut Reader<'_>) -> PResult<(u64, Vec<String>, u16)> {
    let epoch = r.u64()?;
    let n = r.u16()? as usize;
    if n == 0 || n > MAX_CLUSTER_NODES {
        return Err(perr(format!(
            "{n} members is outside 1..={MAX_CLUSTER_NODES}"
        )));
    }
    let mut members = Vec::with_capacity(n);
    for _ in 0..n {
        members.push(r.str()?);
    }
    let replication = r.u16()?;
    if replication == 0 || replication as usize > members.len() {
        return Err(perr(format!(
            "replication factor {replication} is outside 1..={}",
            members.len()
        )));
    }
    Ok((epoch, members, replication))
}

/// Encodes the body of a divide request (everything after the opcode),
/// shared by [`Request::Divide`] and [`Request::DividePartial`].
fn put_divide_body(out: &mut Vec<u8>, q: &DivideRequest) -> PResult<()> {
    put_str(out, &q.dividend)?;
    put_str(out, &q.divisor)?;
    out.push(q.algorithm.map_or(ALG_AUTO, algorithm_code));
    out.push(u8::from(q.assume_unique));
    match &q.spec {
        None => out.push(0),
        Some((divisor_keys, quotient_keys)) => {
            out.push(1);
            put_keys(out, divisor_keys)?;
            put_keys(out, quotient_keys)?;
        }
    }
    // 0 on the wire means "no explicit deadline".
    out.extend_from_slice(&q.deadline_ms.unwrap_or(0).to_le_bytes());
    // Trailing extension (absent in the original revision): request a
    // query profile with the reply.
    out.push(u8::from(q.profile));
    // Trailing extension (absent before the cluster revision): run the
    // division over the in-process parallel machine.
    match &q.distribute {
        None => out.push(0),
        Some(d) => {
            if d.nodes == 0 || d.nodes > MAX_CLUSTER_NODES {
                return Err(perr(format!(
                    "distribution over {} nodes is outside 1..={MAX_CLUSTER_NODES}",
                    d.nodes
                )));
            }
            out.push(1);
            out.push(d.strategy.code());
            out.extend_from_slice(&(d.nodes as u16).to_le_bytes());
            let bits = d.bit_vector_bits.unwrap_or(0);
            if bits > MAX_FILTER_BITS {
                return Err(perr(format!(
                    "filter of {bits} bits exceeds the {MAX_FILTER_BITS}-bit limit"
                )));
            }
            out.extend_from_slice(&(bits as u64).to_le_bytes());
        }
    }
    // Trailing extension (absent before the plan revision): the
    // restricted-divisor assertion, 0xFF for "no assertion".
    out.push(match q.restricted {
        None => TRI_AUTO,
        Some(false) => 0,
        Some(true) => 1,
    });
    // Trailing extension (absent before the adaptive-memory revision):
    // per-query memory budget in bytes, 0 for "no budget".
    out.extend_from_slice(&q.mem_budget.unwrap_or(0).to_le_bytes());
    Ok(())
}

/// Decodes a divide-request body. Both trailing extensions (profile
/// byte, distribution section) may be absent: old peers stop early.
fn get_divide_body(r: &mut Reader<'_>) -> PResult<DivideRequest> {
    let dividend = r.str()?;
    let divisor = r.str()?;
    let alg = r.u8()?;
    let algorithm = if alg == ALG_AUTO {
        None
    } else {
        Some(
            algorithm_from_code(alg)
                .ok_or_else(|| perr(format!("unknown algorithm code {alg}")))?,
        )
    };
    let assume_unique = r.u8()? != 0;
    let spec = match r.u8()? {
        0 => None,
        1 => Some((get_keys(r)?, get_keys(r)?)),
        t => return Err(perr(format!("unknown spec tag {t}"))),
    };
    let deadline_ms = match r.u64()? {
        0 => None,
        ms => Some(ms),
    };
    // Original-revision clients stop here; absence of the trailing
    // profile byte means "no profile".
    let profile = r.remaining() > 0 && r.u8()? != 0;
    // Pre-cluster clients stop here; absence means "not distributed".
    let distribute = if r.remaining() > 0 {
        match r.u8()? {
            0 => None,
            1 => {
                let code = r.u8()?;
                let strategy = Strategy::from_code(code)
                    .ok_or_else(|| perr(format!("unknown strategy code {code}")))?;
                let nodes = r.u16()? as usize;
                if nodes == 0 || nodes > MAX_CLUSTER_NODES {
                    return Err(perr(format!(
                        "distribution over {nodes} nodes is outside 1..={MAX_CLUSTER_NODES}"
                    )));
                }
                let bits = r.u64()? as usize;
                if bits > MAX_FILTER_BITS {
                    return Err(perr(format!(
                        "filter of {bits} bits exceeds the {MAX_FILTER_BITS}-bit limit"
                    )));
                }
                Some(Distribution {
                    strategy,
                    nodes,
                    bit_vector_bits: if bits == 0 { None } else { Some(bits) },
                })
            }
            t => return Err(perr(format!("unknown distribution tag {t}"))),
        }
    } else {
        None
    };
    // Pre-plan-revision clients stop here; absence means "no assertion".
    let restricted = if r.remaining() > 0 {
        match r.u8()? {
            TRI_AUTO => None,
            0 => Some(false),
            1 => Some(true),
            t => return Err(perr(format!("unknown restricted tag {t:#04x}"))),
        }
    } else {
        None
    };
    // Pre-adaptive-memory clients stop here; absence (or an explicit 0)
    // means "no budget".
    let mem_budget = if r.remaining() > 0 {
        match r.u64()? {
            0 => None,
            b => Some(b),
        }
    } else {
        None
    };
    Ok(DivideRequest {
        dividend,
        divisor,
        algorithm,
        assume_unique,
        spec,
        deadline_ms,
        profile,
        distribute,
        restricted,
        mem_budget,
    })
}

impl Request {
    /// Encodes the request as a frame payload.
    pub fn encode(&self) -> PResult<Vec<u8>> {
        let mut out = Vec::new();
        match self {
            Request::Ping => out.push(OP_PING),
            Request::Register {
                name,
                schema,
                tuples,
            } => {
                out.push(OP_REGISTER);
                put_str(&mut out, name)?;
                put_schema(&mut out, schema)?;
                put_tuples(&mut out, schema, tuples)?;
            }
            Request::DropRelation { name } => {
                out.push(OP_DROP);
                put_str(&mut out, name)?;
            }
            Request::Divide(q) => {
                out.push(OP_DIVIDE);
                put_divide_body(&mut out, q)?;
            }
            Request::Stats => out.push(OP_STATS),
            Request::Shutdown => out.push(OP_SHUTDOWN),
            Request::Shard(s) => {
                out.push(OP_SHARD);
                if s.of == 0 || s.of as usize > MAX_CLUSTER_NODES || s.shard >= s.of {
                    return Err(perr(format!(
                        "shard {}/{} is not a valid placement",
                        s.shard, s.of
                    )));
                }
                put_str(&mut out, &s.name)?;
                out.extend_from_slice(&s.shard.to_le_bytes());
                out.extend_from_slice(&s.of.to_le_bytes());
                put_keys(&mut out, &s.shard_keys)?;
                put_schema(&mut out, &s.schema)?;
                put_tuples(&mut out, &s.schema, &s.tuples)?;
                put_epoch_ext(&mut out, s.epoch);
            }
            Request::Repartition(p) => {
                out.push(OP_REPARTITION);
                if p.parts == 0 || p.parts as usize > MAX_CLUSTER_NODES {
                    return Err(perr(format!(
                        "repartition into {} parts is outside 1..={MAX_CLUSTER_NODES}",
                        p.parts
                    )));
                }
                put_str(&mut out, &p.name)?;
                put_keys(&mut out, &p.keys)?;
                out.extend_from_slice(&p.parts.to_le_bytes());
                match &p.filter {
                    None => out.push(0),
                    Some(f) => {
                        out.push(1);
                        put_filter(&mut out, f)?;
                    }
                }
                put_epoch_ext(&mut out, p.epoch);
            }
            Request::BuildFilter {
                name,
                keys,
                bits,
                epoch,
            } => {
                out.push(OP_BUILD_FILTER);
                if *bits == 0 || *bits as usize > MAX_FILTER_BITS {
                    return Err(perr(format!(
                        "filter of {bits} bits is outside 1..={MAX_FILTER_BITS}"
                    )));
                }
                put_str(&mut out, name)?;
                put_keys(&mut out, keys)?;
                out.extend_from_slice(&bits.to_le_bytes());
                put_epoch_ext(&mut out, *epoch);
            }
            Request::DividePartial { tag, query, epoch } => {
                out.push(OP_DIVIDE_PARTIAL);
                out.extend_from_slice(&tag.to_le_bytes());
                put_divide_body(&mut out, query)?;
                put_epoch_ext(&mut out, *epoch);
            }
            Request::ExecPlan(p) => {
                out.push(OP_EXEC_PLAN);
                if p.plan.len() > MAX_PLAN_WIRE {
                    return Err(perr(format!(
                        "plan text of {} bytes exceeds the {MAX_PLAN_WIRE}-byte limit",
                        p.plan.len()
                    )));
                }
                out.extend_from_slice(&(p.plan.len() as u32).to_le_bytes());
                out.extend_from_slice(p.plan.as_bytes());
                out.extend_from_slice(&p.deadline_ms.unwrap_or(0).to_le_bytes());
                out.push(u8::from(p.profile));
            }
            Request::Heartbeat => out.push(OP_HEARTBEAT),
            Request::ClusterEpoch(e) => {
                out.push(OP_CLUSTER_EPOCH);
                match e {
                    EpochRequest::Get => out.push(0),
                    EpochRequest::Set {
                        epoch,
                        members,
                        replication,
                    } => {
                        out.push(1);
                        put_membership(&mut out, *epoch, members, *replication)?;
                    }
                }
            }
            Request::ReplicaWrite(w) => {
                out.push(OP_REPLICA_WRITE);
                if w.of == 0 || w.of as usize > MAX_CLUSTER_NODES || w.fragment >= w.of {
                    return Err(perr(format!(
                        "replica of fragment {}/{} is not a valid placement",
                        w.fragment, w.of
                    )));
                }
                put_str(&mut out, &w.name)?;
                out.extend_from_slice(&w.fragment.to_le_bytes());
                out.extend_from_slice(&w.of.to_le_bytes());
                put_keys(&mut out, &w.shard_keys)?;
                put_schema(&mut out, &w.schema)?;
                put_tuples(&mut out, &w.schema, &w.tuples)?;
                put_epoch_ext(&mut out, w.epoch);
            }
        }
        Ok(out)
    }

    /// Decodes a frame payload.
    pub fn decode(payload: &[u8]) -> PResult<Request> {
        let mut r = Reader::new(payload);
        let req = match r.u8()? {
            OP_PING => Request::Ping,
            OP_REGISTER => {
                let name = r.str()?;
                let schema = get_schema(&mut r)?;
                let tuples = get_tuples(&mut r, &schema)?;
                Request::Register {
                    name,
                    schema,
                    tuples,
                }
            }
            OP_DROP => Request::DropRelation { name: r.str()? },
            OP_DIVIDE => Request::Divide(get_divide_body(&mut r)?),
            OP_STATS => Request::Stats,
            OP_SHUTDOWN => Request::Shutdown,
            OP_SHARD => {
                let name = r.str()?;
                let shard = r.u16()?;
                let of = r.u16()?;
                if of == 0 || of as usize > MAX_CLUSTER_NODES || shard >= of {
                    return Err(perr(format!("shard {shard}/{of} is not a valid placement")));
                }
                let shard_keys = get_keys(&mut r)?;
                let schema = get_schema(&mut r)?;
                let tuples = get_tuples(&mut r, &schema)?;
                let epoch = get_epoch_ext(&mut r)?;
                Request::Shard(ShardRequest {
                    name,
                    shard,
                    of,
                    shard_keys,
                    schema,
                    tuples,
                    epoch,
                })
            }
            OP_REPARTITION => {
                let name = r.str()?;
                let keys = get_keys(&mut r)?;
                let parts = r.u16()?;
                if parts == 0 || parts as usize > MAX_CLUSTER_NODES {
                    return Err(perr(format!(
                        "repartition into {parts} parts is outside 1..={MAX_CLUSTER_NODES}"
                    )));
                }
                let filter = match r.u8()? {
                    0 => None,
                    1 => Some(get_filter(&mut r)?),
                    t => return Err(perr(format!("unknown filter tag {t}"))),
                };
                let epoch = get_epoch_ext(&mut r)?;
                Request::Repartition(RepartitionRequest {
                    name,
                    keys,
                    parts,
                    filter,
                    epoch,
                })
            }
            OP_BUILD_FILTER => {
                let name = r.str()?;
                let keys = get_keys(&mut r)?;
                let bits = r.u32()?;
                if bits == 0 || bits as usize > MAX_FILTER_BITS {
                    return Err(perr(format!(
                        "filter of {bits} bits is outside 1..={MAX_FILTER_BITS}"
                    )));
                }
                let epoch = get_epoch_ext(&mut r)?;
                Request::BuildFilter {
                    name,
                    keys,
                    bits,
                    epoch,
                }
            }
            OP_DIVIDE_PARTIAL => {
                let tag = r.u16()?;
                let query = get_divide_body(&mut r)?;
                let epoch = get_epoch_ext(&mut r)?;
                Request::DividePartial { tag, query, epoch }
            }
            OP_EXEC_PLAN => {
                let n = r.u32()? as usize;
                if n > MAX_PLAN_WIRE {
                    return Err(perr(format!(
                        "plan text of {n} bytes exceeds the {MAX_PLAN_WIRE}-byte limit"
                    )));
                }
                let plan = String::from_utf8(r.take(n)?.to_vec())
                    .map_err(|_| perr("plan text is not UTF-8"))?;
                let deadline_ms = match r.u64()? {
                    0 => None,
                    ms => Some(ms),
                };
                let profile = r.u8()? != 0;
                Request::ExecPlan(ExecPlanRequest {
                    plan,
                    deadline_ms,
                    profile,
                })
            }
            OP_HEARTBEAT => Request::Heartbeat,
            OP_CLUSTER_EPOCH => match r.u8()? {
                0 => Request::ClusterEpoch(EpochRequest::Get),
                1 => {
                    let (epoch, members, replication) = get_membership(&mut r)?;
                    Request::ClusterEpoch(EpochRequest::Set {
                        epoch,
                        members,
                        replication,
                    })
                }
                t => return Err(perr(format!("unknown epoch request tag {t}"))),
            },
            OP_REPLICA_WRITE => {
                let name = r.str()?;
                let fragment = r.u16()?;
                let of = r.u16()?;
                if of == 0 || of as usize > MAX_CLUSTER_NODES || fragment >= of {
                    return Err(perr(format!(
                        "replica of fragment {fragment}/{of} is not a valid placement"
                    )));
                }
                let shard_keys = get_keys(&mut r)?;
                let schema = get_schema(&mut r)?;
                let tuples = get_tuples(&mut r, &schema)?;
                let epoch = get_epoch_ext(&mut r)?;
                Request::ReplicaWrite(ReplicaWriteRequest {
                    name,
                    fragment,
                    of,
                    shard_keys,
                    schema,
                    tuples,
                    epoch,
                })
            }
            op => return Err(perr(format!("unknown request opcode {op:#04x}"))),
        };
        r.finish()?;
        Ok(req)
    }
}

// ---------------------------------------------------------------------
// Responses

const STATUS_OK: u8 = 0x00;
const STATUS_ERR: u8 = 0x01;

const REPLY_PONG: u8 = 0x01;
const REPLY_REGISTERED: u8 = 0x02;
const REPLY_DROPPED: u8 = 0x03;
const REPLY_DIVIDED: u8 = 0x04;
const REPLY_STATS: u8 = 0x05;
const REPLY_SHUTTING_DOWN: u8 = 0x06;
/// Versioned stats reply: a `u16` field count followed by that many
/// `u64` counters in the canonical order, then the ops block. Decoders
/// read the fields they know and skip unknown trailing fields, so the
/// counter list can grow without another reply code. The unversioned
/// [`REPLY_STATS`] (exactly 13 counters) is still decoded for replies
/// from servers that predate the extension.
const REPLY_STATS_V2: u8 = 0x07;
const REPLY_SHARDED: u8 = 0x08;
const REPLY_REPARTITIONED: u8 = 0x09;
const REPLY_FILTER: u8 = 0x0A;
const REPLY_PARTIAL_QUOTIENT: u8 = 0x0B;
const REPLY_PLAN: u8 = 0x0C;
const REPLY_HEARTBEAT_ACK: u8 = 0x0D;
const REPLY_EPOCH: u8 = 0x0E;
const REPLY_REPLICA_ACK: u8 = 0x0F;

/// Largest algorithm list accepted in a plan reply (a plan has at most
/// [`MAX_PLAN_WIRE`]-bounded text, so thousands of divisions is already
/// absurd; this bound stops a lying count from allocating further).
const MAX_PLAN_ALGORITHMS: usize = 4096;

/// Largest pinned-relation list accepted in a plan reply.
const MAX_PLAN_RELATIONS: usize = 4096;

/// Counters every stats frame must carry (the original 13); a `V2`
/// frame announcing fewer is corrupt, not merely old.
const STATS_REQUIRED_FIELDS: usize = 13;

/// The canonical counter order of a stats frame. Append-only: new
/// counters go at the end so old decoders skip them.
fn stats_fields(s: &MetricsSnapshot) -> [u64; 21] {
    [
        s.queries,
        s.cache_hits,
        s.cache_misses,
        s.rejections,
        s.shed_shutdown,
        s.errors,
        s.timeouts,
        s.worker_panics,
        s.io_retries,
        s.latency_p50_us,
        s.latency_p95_us,
        s.latency_p99_us,
        s.latency_mean_us,
        s.latency_count,
        s.profiled_queries,
        s.replica_retries,
        s.failovers,
        s.nodes_excluded,
        s.heartbeats_missed,
        s.degraded_queries,
        s.division_spill_bytes,
    ]
}

/// Rebuilds a snapshot from wire counters in the canonical order.
/// Counters beyond the caller's slice default to zero (an old peer that
/// has never heard of them).
fn stats_from_fields(vals: &[u64], ops: OpSnapshot) -> MetricsSnapshot {
    let field = |i: usize| vals.get(i).copied().unwrap_or(0);
    MetricsSnapshot {
        queries: field(0),
        cache_hits: field(1),
        cache_misses: field(2),
        rejections: field(3),
        shed_shutdown: field(4),
        errors: field(5),
        timeouts: field(6),
        worker_panics: field(7),
        io_retries: field(8),
        latency_p50_us: field(9),
        latency_p95_us: field(10),
        latency_p99_us: field(11),
        latency_mean_us: field(12),
        latency_count: field(13),
        profiled_queries: field(14),
        replica_retries: field(15),
        failovers: field(16),
        nodes_excluded: field(17),
        heartbeats_missed: field(18),
        degraded_queries: field(19),
        division_spill_bytes: field(20),
        ops,
    }
}

/// Encodes a response as a frame payload.
pub fn encode_response(response: &Response) -> PResult<Vec<u8>> {
    let mut out = Vec::new();
    match response {
        Err(e) => {
            out.push(STATUS_ERR);
            out.push(error_code(e));
            put_str(&mut out, &e.to_string())?;
        }
        Ok(reply) => {
            out.push(STATUS_OK);
            match reply {
                Reply::Pong => out.push(REPLY_PONG),
                Reply::Registered { version } => {
                    out.push(REPLY_REGISTERED);
                    out.extend_from_slice(&version.to_le_bytes());
                }
                Reply::Dropped => out.push(REPLY_DROPPED),
                Reply::Divided(d) => {
                    out.push(REPLY_DIVIDED);
                    out.push(algorithm_code(d.algorithm));
                    out.push(u8::from(d.cached));
                    out.extend_from_slice(&d.dividend_version.to_le_bytes());
                    out.extend_from_slice(&d.divisor_version.to_le_bytes());
                    out.extend_from_slice(&d.micros.to_le_bytes());
                    put_ops(&mut out, &d.ops);
                    put_schema(&mut out, &d.schema)?;
                    put_tuples(&mut out, &d.schema, &d.tuples)?;
                    // Trailing extension (absent in the original
                    // revision): the query profile, when one was taken.
                    match &d.profile {
                        None => out.push(0),
                        Some(profile) => {
                            out.push(1);
                            put_profile(&mut out, profile)?;
                        }
                    }
                }
                Reply::Stats(s) => {
                    out.push(REPLY_STATS_V2);
                    let fields = stats_fields(s);
                    let n = u16::try_from(fields.len())
                        .map_err(|_| perr("stats field count exceeds u16"))?;
                    out.extend_from_slice(&n.to_le_bytes());
                    for v in fields {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                    put_ops(&mut out, &s.ops);
                }
                Reply::ShuttingDown => out.push(REPLY_SHUTTING_DOWN),
                Reply::Sharded { version } => {
                    out.push(REPLY_SHARDED);
                    out.extend_from_slice(&version.to_le_bytes());
                }
                Reply::Repartitioned {
                    schema,
                    buckets,
                    filtered,
                } => {
                    out.push(REPLY_REPARTITIONED);
                    if buckets.is_empty() || buckets.len() > MAX_CLUSTER_NODES {
                        return Err(perr(format!(
                            "{} buckets is outside 1..={MAX_CLUSTER_NODES}",
                            buckets.len()
                        )));
                    }
                    put_schema(&mut out, schema)?;
                    out.extend_from_slice(&(buckets.len() as u16).to_le_bytes());
                    for bucket in buckets {
                        put_tuples(&mut out, schema, bucket)?;
                    }
                    out.extend_from_slice(&filtered.to_le_bytes());
                }
                Reply::Filter { filter, insertions } => {
                    out.push(REPLY_FILTER);
                    put_filter(&mut out, filter)?;
                    out.extend_from_slice(&insertions.to_le_bytes());
                }
                Reply::Plan(p) => {
                    out.push(REPLY_PLAN);
                    if p.algorithms.len() > MAX_PLAN_ALGORITHMS {
                        return Err(perr(format!(
                            "{} division algorithms exceed the plan-reply limit",
                            p.algorithms.len()
                        )));
                    }
                    out.extend_from_slice(&(p.algorithms.len() as u16).to_le_bytes());
                    for &alg in &p.algorithms {
                        out.push(algorithm_code(alg));
                    }
                    out.push(u8::from(p.cached));
                    out.extend_from_slice(&p.micros.to_le_bytes());
                    put_ops(&mut out, &p.ops);
                    if p.relations.len() > MAX_PLAN_RELATIONS {
                        return Err(perr(format!(
                            "{} pinned relations exceed the plan-reply limit",
                            p.relations.len()
                        )));
                    }
                    out.extend_from_slice(&(p.relations.len() as u16).to_le_bytes());
                    for (name, version) in &p.relations {
                        put_str(&mut out, name)?;
                        out.extend_from_slice(&version.to_le_bytes());
                    }
                    put_schema(&mut out, &p.schema)?;
                    put_tuples(&mut out, &p.schema, &p.tuples)?;
                    match &p.profile {
                        None => out.push(0),
                        Some(profile) => {
                            out.push(1);
                            put_profile(&mut out, profile)?;
                        }
                    }
                }
                Reply::HeartbeatAck { epoch, accepting } => {
                    out.push(REPLY_HEARTBEAT_ACK);
                    out.extend_from_slice(&epoch.to_le_bytes());
                    out.push(u8::from(*accepting));
                }
                Reply::Epoch {
                    epoch,
                    members,
                    replication,
                } => {
                    out.push(REPLY_EPOCH);
                    put_membership(&mut out, *epoch, members, *replication)?;
                }
                Reply::ReplicaAck { version, fragment } => {
                    out.push(REPLY_REPLICA_ACK);
                    out.extend_from_slice(&version.to_le_bytes());
                    out.extend_from_slice(&fragment.to_le_bytes());
                }
                Reply::PartialQuotient(p) => {
                    out.push(REPLY_PARTIAL_QUOTIENT);
                    out.extend_from_slice(&p.tag.to_le_bytes());
                    out.push(algorithm_code(p.algorithm));
                    out.extend_from_slice(&p.dividend_version.to_le_bytes());
                    out.extend_from_slice(&p.divisor_version.to_le_bytes());
                    out.extend_from_slice(&p.micros.to_le_bytes());
                    put_ops(&mut out, &p.ops);
                    put_schema(&mut out, &p.schema)?;
                    put_tuples(&mut out, &p.schema, &p.tuples)?;
                    match &p.profile {
                        None => out.push(0),
                        Some(profile) => {
                            out.push(1);
                            put_profile(&mut out, profile)?;
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Decodes a response frame payload.
pub fn decode_response(payload: &[u8]) -> PResult<Response> {
    let mut r = Reader::new(payload);
    match r.u8()? {
        STATUS_ERR => {
            let code = r.u8()?;
            let message = r.str()?;
            r.finish()?;
            Ok(Err(error_from_code(code, message)))
        }
        STATUS_OK => {
            let reply = match r.u8()? {
                REPLY_PONG => Reply::Pong,
                REPLY_REGISTERED => Reply::Registered { version: r.u64()? },
                REPLY_DROPPED => Reply::Dropped,
                REPLY_DIVIDED => {
                    let alg = r.u8()?;
                    let algorithm = algorithm_from_code(alg)
                        .ok_or_else(|| perr(format!("unknown algorithm code {alg}")))?;
                    let cached = r.u8()? != 0;
                    let dividend_version = r.u64()?;
                    let divisor_version = r.u64()?;
                    let micros = r.u64()?;
                    let ops = get_ops(&mut r)?;
                    let schema = get_schema(&mut r)?;
                    let tuples = get_tuples(&mut r, &schema)?;
                    // Original-revision servers stop here; absence of
                    // the trailing profile tag means "no profile".
                    let profile = if r.remaining() > 0 {
                        match r.u8()? {
                            0 => None,
                            1 => Some(get_profile(&mut r)?),
                            t => return Err(perr(format!("unknown profile tag {t}"))),
                        }
                    } else {
                        None
                    };
                    Reply::Divided(DivideReply {
                        algorithm,
                        cached,
                        dividend_version,
                        divisor_version,
                        micros,
                        ops,
                        schema,
                        tuples: Arc::new(tuples),
                        profile,
                    })
                }
                REPLY_STATS => {
                    // Unversioned legacy frame: exactly 13 counters.
                    // Counters the old peer has never heard of stay 0.
                    let mut vals = [0u64; STATS_REQUIRED_FIELDS];
                    for v in &mut vals {
                        *v = r.u64()?;
                    }
                    let ops = get_ops(&mut r)?;
                    Reply::Stats(stats_from_fields(&vals, ops))
                }
                REPLY_STATS_V2 => {
                    let n = r.u16()? as usize;
                    if n < STATS_REQUIRED_FIELDS {
                        return Err(perr(format!(
                            "stats frame announces {n} counters; at least \
                             {STATS_REQUIRED_FIELDS} are required"
                        )));
                    }
                    let mut vals = Vec::with_capacity(n.min(64));
                    for _ in 0..n {
                        vals.push(r.u64()?);
                    }
                    // Counters past the ones we know are a newer peer's
                    // extensions; they were read (so the ops block lines
                    // up) and are otherwise ignored.
                    let ops = get_ops(&mut r)?;
                    Reply::Stats(stats_from_fields(&vals, ops))
                }
                REPLY_SHUTTING_DOWN => Reply::ShuttingDown,
                REPLY_SHARDED => Reply::Sharded { version: r.u64()? },
                REPLY_REPARTITIONED => {
                    let schema = get_schema(&mut r)?;
                    let parts = r.u16()? as usize;
                    if parts == 0 || parts > MAX_CLUSTER_NODES {
                        return Err(perr(format!(
                            "{parts} buckets is outside 1..={MAX_CLUSTER_NODES}"
                        )));
                    }
                    let mut buckets = Vec::with_capacity(parts);
                    for _ in 0..parts {
                        buckets.push(get_tuples(&mut r, &schema)?);
                    }
                    let filtered = r.u64()?;
                    Reply::Repartitioned {
                        schema,
                        buckets,
                        filtered,
                    }
                }
                REPLY_FILTER => {
                    let filter = get_filter(&mut r)?;
                    let insertions = r.u64()?;
                    Reply::Filter { filter, insertions }
                }
                REPLY_PLAN => {
                    let n_algs = r.u16()? as usize;
                    if n_algs > MAX_PLAN_ALGORITHMS {
                        return Err(perr(format!(
                            "{n_algs} division algorithms exceed the plan-reply limit"
                        )));
                    }
                    let mut algorithms = Vec::with_capacity(n_algs);
                    for _ in 0..n_algs {
                        let code = r.u8()?;
                        algorithms.push(
                            algorithm_from_code(code)
                                .ok_or_else(|| perr(format!("unknown algorithm code {code}")))?,
                        );
                    }
                    let cached = r.u8()? != 0;
                    let micros = r.u64()?;
                    let ops = get_ops(&mut r)?;
                    let n_rels = r.u16()? as usize;
                    if n_rels > MAX_PLAN_RELATIONS {
                        return Err(perr(format!(
                            "{n_rels} pinned relations exceed the plan-reply limit"
                        )));
                    }
                    let mut relations = Vec::with_capacity(n_rels);
                    for _ in 0..n_rels {
                        let name = r.str()?;
                        let version = r.u64()?;
                        relations.push((name, version));
                    }
                    let schema = get_schema(&mut r)?;
                    let tuples = get_tuples(&mut r, &schema)?;
                    let profile = match r.u8()? {
                        0 => None,
                        1 => Some(get_profile(&mut r)?),
                        t => return Err(perr(format!("unknown profile tag {t}"))),
                    };
                    Reply::Plan(PlanReply {
                        algorithms,
                        cached,
                        micros,
                        ops,
                        relations,
                        schema,
                        tuples: Arc::new(tuples),
                        profile,
                    })
                }
                REPLY_PARTIAL_QUOTIENT => {
                    let tag = r.u16()?;
                    let alg = r.u8()?;
                    let algorithm = algorithm_from_code(alg)
                        .ok_or_else(|| perr(format!("unknown algorithm code {alg}")))?;
                    let dividend_version = r.u64()?;
                    let divisor_version = r.u64()?;
                    let micros = r.u64()?;
                    let ops = get_ops(&mut r)?;
                    let schema = get_schema(&mut r)?;
                    let tuples = get_tuples(&mut r, &schema)?;
                    let profile = match r.u8()? {
                        0 => None,
                        1 => Some(get_profile(&mut r)?),
                        t => return Err(perr(format!("unknown profile tag {t}"))),
                    };
                    Reply::PartialQuotient(PartialQuotientReply {
                        tag,
                        algorithm,
                        dividend_version,
                        divisor_version,
                        micros,
                        ops,
                        schema,
                        tuples,
                        profile,
                    })
                }
                REPLY_HEARTBEAT_ACK => {
                    let epoch = r.u64()?;
                    let accepting = r.u8()? != 0;
                    Reply::HeartbeatAck { epoch, accepting }
                }
                REPLY_EPOCH => {
                    let (epoch, members, replication) = get_membership(&mut r)?;
                    Reply::Epoch {
                        epoch,
                        members,
                        replication,
                    }
                }
                REPLY_REPLICA_ACK => {
                    let version = r.u64()?;
                    let fragment = r.u16()?;
                    Reply::ReplicaAck { version, fragment }
                }
                t => return Err(perr(format!("unknown reply tag {t:#04x}"))),
            };
            r.finish()?;
            Ok(Ok(reply))
        }
        s => Err(perr(format!("unknown status byte {s:#04x}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reldiv_rel::tuple::ints;

    fn schema2() -> Schema {
        Schema::new(vec![Field::int("q"), Field::int("d")])
    }

    /// A small but fully populated span tree: `depth` levels, two
    /// children per level, every metric non-zero somewhere.
    fn sample_profile_node(depth: usize) -> ProfileNode {
        let children = if depth == 0 {
            Vec::new()
        } else {
            vec![
                sample_profile_node(depth - 1),
                sample_profile_node(depth - 1),
            ]
        };
        ProfileNode {
            label: format!("span at depth {depth}"),
            kind: if depth == 0 {
                SpanKind::Scan
            } else {
                SpanKind::Query
            },
            wall_micros: 100 + depth as u64,
            tuples_in: 7,
            tuples_out: 5,
            ops: OpSnapshot {
                comparisons: 11,
                hashes: 13,
                moves: 17,
                bitops: 19,
            },
            pages_read: 3,
            pages_written: 2,
            spill_bytes: 4096,
            network_bytes: 0,
            phases: vec!["in-memory".into()],
            children,
        }
    }

    /// A stats reply round-trips through the versioned frame, new
    /// counters included.
    #[test]
    fn stats_reply_round_trips_with_new_counters() {
        let snapshot = MetricsSnapshot {
            queries: 9,
            cache_hits: 2,
            cache_misses: 7,
            rejections: 0,
            shed_shutdown: 0,
            errors: 1,
            timeouts: 0,
            worker_panics: 0,
            io_retries: 3,
            latency_p50_us: 50,
            latency_p95_us: 95,
            latency_p99_us: 99,
            latency_mean_us: 60,
            latency_count: 9,
            profiled_queries: 4,
            replica_retries: 6,
            failovers: 2,
            nodes_excluded: 1,
            heartbeats_missed: 5,
            degraded_queries: 3,
            division_spill_bytes: 65536,
            ops: OpSnapshot {
                comparisons: 1,
                hashes: 2,
                moves: 3,
                bitops: 4,
            },
        };
        let bytes = encode_response(&Ok(Reply::Stats(snapshot))).unwrap();
        assert_eq!(
            bytes[1], REPLY_STATS_V2,
            "encoder emits the versioned frame"
        );
        match decode_response(&bytes).unwrap().unwrap() {
            Reply::Stats(decoded) => assert_eq!(decoded, snapshot),
            other => panic!("expected stats, got {other:?}"),
        }
    }

    /// A frame from a server that predates the versioned stats reply —
    /// the unversioned tag and exactly 13 counters — still decodes; the
    /// counters the old server has never heard of read as zero.
    #[test]
    fn legacy_stats_frame_decodes_with_new_counters_zero() {
        let mut frame = vec![STATUS_OK, REPLY_STATS];
        for v in 1..=13u64 {
            frame.extend_from_slice(&v.to_le_bytes());
        }
        put_ops(&mut frame, &OpSnapshot::default());
        match decode_response(&frame).unwrap().unwrap() {
            Reply::Stats(s) => {
                assert_eq!(s.queries, 1);
                assert_eq!(s.latency_mean_us, 13);
                assert_eq!(s.latency_count, 0, "unknown to the old server");
                assert_eq!(s.profiled_queries, 0, "unknown to the old server");
                assert_eq!(s.replica_retries, 0, "unknown to the old server");
                assert_eq!(s.failovers, 0, "unknown to the old server");
                assert_eq!(s.nodes_excluded, 0, "unknown to the old server");
                assert_eq!(s.heartbeats_missed, 0, "unknown to the old server");
            }
            other => panic!("expected stats, got {other:?}"),
        }
    }

    /// A versioned frame from a *newer* server that has grown counters
    /// we do not know decodes cleanly: the known prefix is read, the
    /// extras are skipped, and the ops block still lines up.
    #[test]
    fn future_stats_frame_with_extra_counters_decodes() {
        let mut frame = vec![STATUS_OK, REPLY_STATS_V2];
        frame.extend_from_slice(&24u16.to_le_bytes());
        for v in 1..=24u64 {
            frame.extend_from_slice(&v.to_le_bytes());
        }
        let ops = OpSnapshot {
            comparisons: 40,
            hashes: 41,
            moves: 42,
            bitops: 43,
        };
        put_ops(&mut frame, &ops);
        match decode_response(&frame).unwrap().unwrap() {
            Reply::Stats(s) => {
                assert_eq!(s.queries, 1);
                assert_eq!(s.latency_count, 14);
                assert_eq!(s.profiled_queries, 15);
                assert_eq!(s.replica_retries, 16);
                assert_eq!(s.failovers, 17);
                assert_eq!(s.nodes_excluded, 18);
                assert_eq!(s.heartbeats_missed, 19);
                assert_eq!(s.ops, ops, "ops block read after skipping extras");
            }
            other => panic!("expected stats, got {other:?}"),
        }
    }

    /// A stats frame from a PR 4-era peer — versioned tag, 15 counters,
    /// predating the replication counters — still decodes; the four
    /// robustness counters it has never heard of read as zero.
    #[test]
    fn pre_replication_stats_frame_decodes_with_robustness_counters_zero() {
        let mut frame = vec![STATUS_OK, REPLY_STATS_V2];
        frame.extend_from_slice(&15u16.to_le_bytes());
        for v in 1..=15u64 {
            frame.extend_from_slice(&v.to_le_bytes());
        }
        put_ops(&mut frame, &OpSnapshot::default());
        match decode_response(&frame).unwrap().unwrap() {
            Reply::Stats(s) => {
                assert_eq!(s.profiled_queries, 15, "last counter the peer knows");
                assert_eq!(s.replica_retries, 0);
                assert_eq!(s.failovers, 0);
                assert_eq!(s.nodes_excluded, 0);
                assert_eq!(s.heartbeats_missed, 0);
            }
            other => panic!("expected stats, got {other:?}"),
        }
    }

    /// A versioned frame announcing fewer than the 13 required counters
    /// is a typed protocol error, not a short read or a misparse.
    #[test]
    fn short_stats_frame_is_a_typed_protocol_error() {
        let mut frame = vec![STATUS_OK, REPLY_STATS_V2];
        frame.extend_from_slice(&12u16.to_le_bytes());
        for v in 1..=12u64 {
            frame.extend_from_slice(&v.to_le_bytes());
        }
        put_ops(&mut frame, &OpSnapshot::default());
        match decode_response(&frame) {
            Err(ServiceError::Protocol(msg)) => {
                assert!(msg.contains("12"), "names the bad count: {msg}");
            }
            other => panic!("expected a protocol error, got {other:?}"),
        }
    }

    /// Divide requests and replies without the trailing profile bytes —
    /// what original-revision peers send — still decode.
    #[test]
    fn profile_extension_is_optional_on_the_wire() {
        // A request frame cut exactly before the trailing profile byte.
        let req = Request::Divide(DivideRequest {
            dividend: "r".into(),
            divisor: "s".into(),
            algorithm: None,
            assume_unique: false,
            spec: None,
            deadline_ms: None,
            profile: true,
            distribute: None,
            restricted: None,
            mem_budget: None,
        });
        let bytes = req.encode().unwrap();
        // The frame tail is four trailing extensions, newest last:
        // [profile byte][distribution tag][restricted byte][mem-budget
        // u64]. Cut the mem-budget word only (a plan-era peer).
        match Request::decode(&bytes[..bytes.len() - 8]).unwrap() {
            Request::Divide(q) => {
                assert!(q.profile, "profile byte survives the shorter frame");
                assert_eq!(q.distribute, None, "absent section decodes as None");
                assert_eq!(q.restricted, None, "absent byte decodes as None");
                assert_eq!(q.mem_budget, None, "absent word decodes as None");
            }
            other => panic!("expected divide, got {other:?}"),
        }
        // Cut the restricted byte too (a distribution-era peer).
        match Request::decode(&bytes[..bytes.len() - 9]).unwrap() {
            Request::Divide(q) => {
                assert!(q.profile, "profile byte survives the shorter frame");
                assert_eq!(q.distribute, None, "absent section decodes as None");
                assert_eq!(q.restricted, None, "absent byte decodes as None");
                assert_eq!(q.mem_budget, None);
            }
            other => panic!("expected divide, got {other:?}"),
        }
        // Cut the distribution tag too (a profile-era peer).
        match Request::decode(&bytes[..bytes.len() - 10]).unwrap() {
            Request::Divide(q) => {
                assert!(q.profile, "profile byte survives the shorter frame");
                assert_eq!(q.distribute, None, "absent section decodes as None");
                assert_eq!(q.restricted, None);
                assert_eq!(q.mem_budget, None);
            }
            other => panic!("expected divide, got {other:?}"),
        }
        // Cut all four trailing extensions (an original-revision peer).
        match Request::decode(&bytes[..bytes.len() - 11]).unwrap() {
            Request::Divide(q) => {
                assert!(!q.profile, "absent byte decodes as false");
                assert_eq!(q.distribute, None);
                assert_eq!(q.restricted, None);
                assert_eq!(q.mem_budget, None);
            }
            other => panic!("expected divide, got {other:?}"),
        }
        // A reply frame cut exactly before the trailing profile tag.
        let reply = Ok(Reply::Divided(DivideReply {
            algorithm: Algorithm::Naive,
            cached: false,
            dividend_version: 1,
            divisor_version: 1,
            micros: 10,
            ops: OpSnapshot::default(),
            schema: schema2(),
            tuples: Arc::new(vec![ints(&[1, 2])]),
            profile: None,
        }));
        let bytes = encode_response(&reply).unwrap();
        match decode_response(&bytes[..bytes.len() - 1]).unwrap().unwrap() {
            Reply::Divided(d) => assert_eq!(d.profile, None),
            other => panic!("expected divided, got {other:?}"),
        }
    }

    /// Hostile profile payloads hit the typed depth and node limits
    /// instead of recursing or allocating without bound.
    #[test]
    fn profile_limits_are_enforced() {
        // Depth: a chain one deeper than the limit.
        let mut node = ProfileNode {
            children: Vec::new(),
            ..sample_profile_node(0)
        };
        for _ in 0..=MAX_PROFILE_DEPTH {
            node = ProfileNode {
                children: vec![node],
                ..sample_profile_node(0)
            };
        }
        let mut out = Vec::new();
        put_profile_node(&mut out, &node).unwrap();
        let mut r = Reader::new(&out);
        match get_profile(&mut r) {
            Err(ServiceError::Protocol(msg)) => assert!(msg.contains("depth")),
            other => panic!("expected a depth error, got {other:?}"),
        }

        // Node count: a star two levels deep that exceeds the budget.
        let leaf = ProfileNode {
            children: Vec::new(),
            ..sample_profile_node(0)
        };
        let arm = ProfileNode {
            children: vec![leaf.clone(); 600],
            ..sample_profile_node(0)
        };
        let wide = ProfileNode {
            children: vec![arm; 200],
            ..sample_profile_node(0)
        };
        assert!(wide.node_count() > MAX_PROFILE_NODES);
        let mut out = Vec::new();
        put_profile_node(&mut out, &wide).unwrap();
        let mut r = Reader::new(&out);
        match get_profile(&mut r) {
            Err(ServiceError::Protocol(msg)) => assert!(msg.contains("node")),
            other => panic!("expected a node-limit error, got {other:?}"),
        }
    }

    #[test]
    fn algorithm_codes_round_trip() {
        for alg in Algorithm::table_columns() {
            assert_eq!(algorithm_from_code(algorithm_code(alg)), Some(alg));
        }
        assert_eq!(algorithm_from_code(ALG_AUTO), None);
    }

    #[test]
    fn requests_round_trip() {
        let requests = vec![
            Request::Ping,
            Request::Register {
                name: "transcript".into(),
                schema: schema2(),
                tuples: vec![ints(&[1, 10]), ints(&[2, 20])],
            },
            Request::DropRelation {
                name: "transcript".into(),
            },
            Request::Divide(DivideRequest {
                dividend: "r".into(),
                divisor: "s".into(),
                algorithm: Some(Algorithm::Naive),
                assume_unique: true,
                spec: Some((vec![1], vec![0])),
                deadline_ms: Some(2_500),
                profile: true,
                distribute: None,
                restricted: None,
                mem_budget: None,
            }),
            Request::Divide(DivideRequest {
                dividend: "r".into(),
                divisor: "s".into(),
                algorithm: None,
                assume_unique: false,
                spec: None,
                deadline_ms: None,
                profile: false,
                distribute: None,
                restricted: None,
                mem_budget: None,
            }),
            Request::Divide(DivideRequest {
                dividend: "r".into(),
                divisor: "s".into(),
                algorithm: None,
                assume_unique: false,
                spec: None,
                deadline_ms: None,
                profile: false,
                distribute: Some(Distribution {
                    strategy: Strategy::DivisorPartitioning,
                    nodes: 8,
                    bit_vector_bits: Some(4096),
                }),
                restricted: Some(false),
                mem_budget: None,
            }),
            Request::Stats,
            Request::Shutdown,
            Request::Shard(ShardRequest {
                name: "transcript".into(),
                shard: 2,
                of: 4,
                shard_keys: vec![0],
                schema: schema2(),
                tuples: vec![ints(&[1, 10]), ints(&[5, 50])],
                epoch: Some(3),
            }),
            Request::Repartition(RepartitionRequest {
                name: "transcript".into(),
                keys: vec![1],
                parts: 4,
                filter: None,
                epoch: None,
            }),
            Request::Repartition(RepartitionRequest {
                name: "transcript".into(),
                keys: vec![1],
                parts: 3,
                filter: Some(sample_filter()),
                epoch: Some(9),
            }),
            Request::BuildFilter {
                name: "courses".into(),
                keys: vec![0],
                bits: 1024,
                epoch: Some(1),
            },
            Request::DividePartial {
                tag: 7,
                query: DivideRequest {
                    dividend: ".part.r.3".into(),
                    divisor: ".repl.s.9".into(),
                    algorithm: Some(Algorithm::HashDivision {
                        mode: HashDivisionMode::Standard,
                    }),
                    assume_unique: false,
                    spec: None,
                    deadline_ms: Some(5_000),
                    profile: true,
                    distribute: None,
                    restricted: Some(true),
                    mem_budget: None,
                },
                epoch: Some(12),
            },
            Request::Heartbeat,
            Request::ClusterEpoch(EpochRequest::Get),
            Request::ClusterEpoch(EpochRequest::Set {
                epoch: 5,
                members: vec!["127.0.0.1:7181".into(), "127.0.0.1:7182".into()],
                replication: 2,
            }),
            Request::ReplicaWrite(ReplicaWriteRequest {
                name: "transcript".into(),
                fragment: 1,
                of: 3,
                shard_keys: vec![0],
                schema: schema2(),
                tuples: vec![ints(&[4, 40])],
                epoch: Some(5),
            }),
            Request::ReplicaWrite(ReplicaWriteRequest {
                name: "transcript".into(),
                fragment: 0,
                of: 2,
                shard_keys: vec![],
                schema: schema2(),
                tuples: vec![],
                epoch: None,
            }),
            Request::ExecPlan(ExecPlanRequest {
                plan: "(divide (on course-no) (scan transcript) \
                       (project (course-no) (filter (contains title \"database\") \
                       (scan courses))))"
                    .into(),
                deadline_ms: Some(3_000),
                profile: true,
            }),
            Request::ExecPlan(ExecPlanRequest {
                plan: "(scan r)".into(),
                deadline_ms: None,
                profile: false,
            }),
        ];
        for req in requests {
            let bytes = req.encode().unwrap();
            assert_eq!(Request::decode(&bytes).unwrap(), req, "{req:?}");
        }
    }

    /// The plan-text size cap is enforced symmetrically: encode refuses
    /// to build an oversize frame, decode refuses a hostile length claim
    /// before allocating.
    #[test]
    fn plan_frames_enforce_the_size_cap() {
        let oversize = Request::ExecPlan(ExecPlanRequest {
            plan: "x".repeat(MAX_PLAN_WIRE + 1),
            deadline_ms: None,
            profile: false,
        });
        assert!(oversize.encode().is_err());

        let mut hostile = vec![0x0B];
        hostile.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(Request::decode(&hostile).is_err(), "length claim rejected");
    }

    /// The restricted-divisor trailing byte: 0xFF means "no assertion",
    /// 0/1 are the explicit claims, anything else is a protocol error.
    #[test]
    fn restricted_byte_rejects_unknown_tags() {
        let bytes = Request::Divide(DivideRequest {
            dividend: "r".into(),
            divisor: "s".into(),
            algorithm: None,
            assume_unique: false,
            spec: None,
            deadline_ms: None,
            profile: false,
            distribute: None,
            restricted: Some(false),
            mem_budget: None,
        })
        .encode()
        .unwrap();
        // The restricted byte sits just before the trailing 8-byte
        // mem-budget word.
        let pos = bytes.len() - 9;
        assert_eq!(bytes[pos], 0, "Some(false) encodes as 0");
        let mut mutated = bytes.clone();
        mutated[pos] = 2;
        assert!(Request::decode(&mutated).is_err());
        mutated[pos] = TRI_AUTO;
        match Request::decode(&mutated).unwrap() {
            Request::Divide(q) => assert_eq!(q.restricted, None),
            other => panic!("expected divide, got {other:?}"),
        }
    }

    /// The mem-budget trailing word: 0 means "no budget", a nonzero
    /// value is the per-query cap in bytes.
    #[test]
    fn mem_budget_word_round_trips() {
        let mut req = DivideRequest {
            dividend: "r".into(),
            divisor: "s".into(),
            algorithm: None,
            assume_unique: false,
            spec: None,
            deadline_ms: None,
            profile: false,
            distribute: None,
            restricted: None,
            mem_budget: Some(256 * 1024),
        };
        let bytes = Request::Divide(req.clone()).encode().unwrap();
        match Request::decode(&bytes).unwrap() {
            Request::Divide(q) => assert_eq!(q.mem_budget, Some(256 * 1024)),
            other => panic!("expected divide, got {other:?}"),
        }
        // An explicit 0 on the wire decodes as "no budget".
        req.mem_budget = None;
        let bytes = Request::Divide(req).encode().unwrap();
        assert_eq!(&bytes[bytes.len() - 8..], &[0u8; 8]);
        match Request::decode(&bytes).unwrap() {
            Request::Divide(q) => assert_eq!(q.mem_budget, None),
            other => panic!("expected divide, got {other:?}"),
        }
    }

    fn sample_filter() -> BitVectorFilter {
        let mut f = BitVectorFilter::new(512);
        for d in 0..40 {
            f.insert(&ints(&[d]));
        }
        f
    }

    #[test]
    fn responses_round_trip() {
        let responses: Vec<Response> = vec![
            Ok(Reply::Pong),
            Ok(Reply::Registered { version: 42 }),
            Ok(Reply::Dropped),
            Ok(Reply::Divided(DivideReply {
                algorithm: Algorithm::HashDivision {
                    mode: HashDivisionMode::Standard,
                },
                cached: true,
                dividend_version: 3,
                divisor_version: 4,
                micros: 1234,
                ops: OpSnapshot {
                    comparisons: 1,
                    hashes: 2,
                    moves: 3,
                    bitops: 4,
                },
                schema: Schema::new(vec![Field::int("q")]),
                tuples: Arc::new(vec![ints(&[7]), ints(&[9])]),
                profile: Some(QueryProfile {
                    root: sample_profile_node(2),
                }),
            })),
            Ok(Reply::Stats(MetricsSnapshot {
                queries: 10,
                cache_hits: 4,
                cache_misses: 6,
                rejections: 1,
                shed_shutdown: 0,
                errors: 2,
                timeouts: 5,
                worker_panics: 1,
                io_retries: 17,
                latency_p50_us: 100,
                latency_p95_us: 200,
                latency_p99_us: 300,
                latency_mean_us: 120,
                latency_count: 10,
                profiled_queries: 3,
                replica_retries: 8,
                failovers: 4,
                nodes_excluded: 2,
                heartbeats_missed: 6,
                degraded_queries: 1,
                division_spill_bytes: 4096,
                ops: OpSnapshot::default(),
            })),
            Ok(Reply::ShuttingDown),
            Ok(Reply::Sharded { version: 99 }),
            Ok(Reply::HeartbeatAck {
                epoch: 7,
                accepting: true,
            }),
            Ok(Reply::HeartbeatAck {
                epoch: 0,
                accepting: false,
            }),
            Ok(Reply::Epoch {
                epoch: 4,
                members: vec!["127.0.0.1:7181".into(), "127.0.0.1:7182".into()],
                replication: 2,
            }),
            Ok(Reply::ReplicaAck {
                version: 12,
                fragment: 3,
            }),
            Ok(Reply::Repartitioned {
                schema: schema2(),
                buckets: vec![
                    vec![ints(&[1, 10]), ints(&[2, 20])],
                    vec![],
                    vec![ints(&[3, 30])],
                ],
                filtered: 12,
            }),
            Ok(Reply::Filter {
                filter: sample_filter(),
                insertions: 40,
            }),
            Ok(Reply::PartialQuotient(PartialQuotientReply {
                tag: 3,
                algorithm: Algorithm::HashDivision {
                    mode: HashDivisionMode::Standard,
                },
                dividend_version: 11,
                divisor_version: 12,
                micros: 777,
                ops: OpSnapshot {
                    comparisons: 5,
                    hashes: 6,
                    moves: 7,
                    bitops: 8,
                },
                schema: Schema::new(vec![Field::int("q")]),
                tuples: vec![ints(&[4]), ints(&[5])],
                profile: Some(QueryProfile {
                    root: sample_profile_node(1),
                }),
            })),
            Ok(Reply::PartialQuotient(PartialQuotientReply {
                tag: 0,
                algorithm: Algorithm::Naive,
                dividend_version: 1,
                divisor_version: 2,
                micros: 1,
                ops: OpSnapshot::default(),
                schema: Schema::new(vec![Field::int("q")]),
                tuples: vec![],
                profile: None,
            })),
            Ok(Reply::Plan(PlanReply {
                algorithms: vec![
                    Algorithm::SortAggregation { join: true },
                    Algorithm::HashDivision {
                        mode: HashDivisionMode::Standard,
                    },
                ],
                cached: false,
                micros: 4321,
                ops: OpSnapshot {
                    comparisons: 9,
                    hashes: 10,
                    moves: 11,
                    bitops: 12,
                },
                relations: vec![("courses".into(), 7), ("transcript".into(), 5)],
                schema: Schema::new(vec![Field::int("student-id")]),
                tuples: Arc::new(vec![ints(&[1]), ints(&[3])]),
                profile: Some(QueryProfile {
                    root: sample_profile_node(2),
                }),
            })),
            Ok(Reply::Plan(PlanReply {
                algorithms: vec![],
                cached: true,
                micros: 2,
                ops: OpSnapshot::default(),
                relations: vec![("r".into(), 1)],
                schema: Schema::new(vec![Field::int("q")]),
                tuples: Arc::new(vec![]),
                profile: None,
            })),
            Err(ServiceError::Overloaded),
            Err(ServiceError::DeadlineExceeded),
            Err(ServiceError::UnknownRelation(
                "unknown relation \"x\"".into(),
            )),
            Err(ServiceError::StaleEpoch(
                "request epoch 2, node epoch 5".into(),
            )),
        ];
        for resp in responses {
            let bytes = encode_response(&resp).unwrap();
            let decoded = decode_response(&bytes).unwrap();
            match (&resp, &decoded) {
                (Ok(a), Ok(b)) => assert_eq!(a, b),
                (Err(a), Err(b)) => assert_eq!(error_code(a), error_code(b)),
                _ => panic!("status mismatch: {resp:?} vs {decoded:?}"),
            }
        }
    }

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");

        let huge = (MAX_FRAME as u32 + 1).to_le_bytes();
        let mut cursor = &huge[..];
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn string_relations_round_trip() {
        let schema = Schema::new(vec![Field::int("id"), Field::str("title", 16)]);
        let tuples = vec![Tuple::new(vec![
            reldiv_rel::Value::Int(1),
            reldiv_rel::Value::Str("database".into()),
        ])];
        let req = Request::Register {
            name: "courses".into(),
            schema,
            tuples,
        };
        let bytes = req.encode().unwrap();
        assert_eq!(Request::decode(&bytes).unwrap(), req);
    }

    #[test]
    fn truncated_frames_are_protocol_errors() {
        let bytes = Request::Stats.encode().unwrap();
        assert!(matches!(
            Request::decode(&bytes[..0]),
            Err(ServiceError::Protocol(_))
        ));
        let mut with_trailing = bytes.clone();
        with_trailing.push(0);
        assert!(matches!(
            Request::decode(&with_trailing),
            Err(ServiceError::Protocol(_))
        ));
    }

    /// Every cluster frame rejects out-of-range geometry with a typed
    /// protocol error, on the encode side (bad values never hit the wire)
    /// and the decode side (hostile frames never allocate per a lying
    /// count). Frames are hand-built so the decode checks are exercised
    /// even for values the encoder refuses to produce.
    #[test]
    fn cluster_frames_reject_bad_geometry() {
        let protocol_err = |r: PResult<Request>| {
            assert!(matches!(r, Err(ServiceError::Protocol(_))), "{r:?}");
        };
        // Shard placement: shard >= of, of = 0, of > MAX_CLUSTER_NODES.
        for (shard, of) in [(4u16, 4u16), (0, 0), (0, MAX_CLUSTER_NODES as u16 + 1)] {
            let req = Request::Shard(ShardRequest {
                name: "r".into(),
                shard,
                of,
                shard_keys: vec![0],
                schema: schema2(),
                tuples: vec![],
                epoch: None,
            });
            protocol_err(req.encode().map(|_| Request::Ping));
            let mut frame = vec![OP_SHARD];
            put_str(&mut frame, "r").unwrap();
            frame.extend_from_slice(&shard.to_le_bytes());
            frame.extend_from_slice(&of.to_le_bytes());
            protocol_err(Request::decode(&frame));
            // The replica-write frame enforces the same placement bounds.
            let req = Request::ReplicaWrite(ReplicaWriteRequest {
                name: "r".into(),
                fragment: shard,
                of,
                shard_keys: vec![0],
                schema: schema2(),
                tuples: vec![],
                epoch: Some(1),
            });
            protocol_err(req.encode().map(|_| Request::Ping));
            let mut frame = vec![OP_REPLICA_WRITE];
            put_str(&mut frame, "r").unwrap();
            frame.extend_from_slice(&shard.to_le_bytes());
            frame.extend_from_slice(&of.to_le_bytes());
            protocol_err(Request::decode(&frame));
        }
        // Repartition parts: 0 and > MAX_CLUSTER_NODES.
        for parts in [0u16, MAX_CLUSTER_NODES as u16 + 1] {
            let req = Request::Repartition(RepartitionRequest {
                name: "r".into(),
                keys: vec![0],
                parts,
                filter: None,
                epoch: None,
            });
            protocol_err(req.encode().map(|_| Request::Ping));
            let mut frame = vec![OP_REPARTITION];
            put_str(&mut frame, "r").unwrap();
            put_keys(&mut frame, &[0]).unwrap();
            frame.extend_from_slice(&parts.to_le_bytes());
            frame.push(0);
            protocol_err(Request::decode(&frame));
        }
        // Filter geometry inside a repartition: oversize bit counts and a
        // word count that does not match the bit count.
        let mut prefix = vec![OP_REPARTITION];
        put_str(&mut prefix, "r").unwrap();
        put_keys(&mut prefix, &[0]).unwrap();
        prefix.extend_from_slice(&2u16.to_le_bytes());
        prefix.push(1); // filter present
        let mut oversize = prefix.clone();
        oversize.extend_from_slice(&(MAX_FILTER_BITS as u32 + 1).to_le_bytes());
        oversize.extend_from_slice(&0u32.to_le_bytes());
        protocol_err(Request::decode(&oversize));
        let mut mismatched = prefix.clone();
        mismatched.extend_from_slice(&128u32.to_le_bytes());
        // 128 bits need 2 words; a hostile frame claiming 65_535 must be
        // refused by arithmetic before any allocation happens.
        mismatched.extend_from_slice(&65_535u32.to_le_bytes());
        protocol_err(Request::decode(&mismatched));
        let mut truncated = prefix.clone();
        truncated.extend_from_slice(&128u32.to_le_bytes());
        truncated.extend_from_slice(&2u32.to_le_bytes());
        truncated.extend_from_slice(&1u64.to_le_bytes()); // 1 of 2 words
        protocol_err(Request::decode(&truncated));
        // BuildFilter bit bounds: 0 and > MAX_FILTER_BITS.
        for bits in [0u32, MAX_FILTER_BITS as u32 + 1] {
            let req = Request::BuildFilter {
                name: "r".into(),
                keys: vec![0],
                bits,
                epoch: None,
            };
            protocol_err(req.encode().map(|_| Request::Ping));
            let mut frame = vec![OP_BUILD_FILTER];
            put_str(&mut frame, "r").unwrap();
            put_keys(&mut frame, &[0]).unwrap();
            frame.extend_from_slice(&bits.to_le_bytes());
            protocol_err(Request::decode(&frame));
        }
        // Distribution section: node count 0, node count over the limit,
        // and an unknown strategy code.
        for (strategy, nodes) in [(0u8, 0u16), (0, MAX_CLUSTER_NODES as u16 + 1), (9, 4)] {
            let mut frame = vec![OP_DIVIDE];
            put_str(&mut frame, "r").unwrap();
            put_str(&mut frame, "s").unwrap();
            frame.push(ALG_AUTO);
            frame.push(0); // assume_unique
            frame.push(0); // no spec
            frame.extend_from_slice(&0u64.to_le_bytes()); // no deadline
            frame.push(0); // no profile
            frame.push(1); // distribution present
            frame.push(strategy);
            frame.extend_from_slice(&nodes.to_le_bytes());
            frame.extend_from_slice(&0u64.to_le_bytes()); // no filter bits
            protocol_err(Request::decode(&frame));
        }
        // Repartitioned reply: bucket counts 0 and > MAX_CLUSTER_NODES.
        for parts in [0u16, MAX_CLUSTER_NODES as u16 + 1] {
            let mut frame = vec![STATUS_OK, REPLY_REPARTITIONED];
            put_schema(&mut frame, &schema2()).unwrap();
            frame.extend_from_slice(&parts.to_le_bytes());
            assert!(matches!(
                decode_response(&frame),
                Err(ServiceError::Protocol(_))
            ));
        }
        let oversized_reply = Reply::Repartitioned {
            schema: schema2(),
            buckets: vec![Vec::new(); MAX_CLUSTER_NODES + 1],
            filtered: 0,
        };
        assert!(matches!(
            encode_response(&Ok(oversized_reply)),
            Err(ServiceError::Protocol(_))
        ));
        // Membership geometry: zero members, too many members, and a
        // replication factor of 0 or above the member count — on both
        // the epoch request and the epoch reply, encode and decode.
        let bad_memberships: Vec<(Vec<String>, u16)> = vec![
            (vec![], 1),
            (vec!["a".into(); MAX_CLUSTER_NODES + 1], 1),
            (vec!["a".into(), "b".into()], 0),
            (vec!["a".into(), "b".into()], 3),
        ];
        for (members, replication) in bad_memberships {
            let req = Request::ClusterEpoch(EpochRequest::Set {
                epoch: 1,
                members: members.clone(),
                replication,
            });
            protocol_err(req.encode().map(|_| Request::Ping));
            let reply = Reply::Epoch {
                epoch: 1,
                members: members.clone(),
                replication,
            };
            assert!(matches!(
                encode_response(&Ok(reply)),
                Err(ServiceError::Protocol(_))
            ));
            // Hand-built hostile frames for the decode side. Member
            // counts above the u16 wire cannot be expressed, so only the
            // in-range hostile values are built by hand.
            if members.len() <= u16::MAX as usize {
                let mut frame = vec![OP_CLUSTER_EPOCH, 1];
                frame.extend_from_slice(&1u64.to_le_bytes());
                frame.extend_from_slice(&(members.len() as u16).to_le_bytes());
                for m in &members {
                    put_str(&mut frame, m).unwrap();
                }
                frame.extend_from_slice(&replication.to_le_bytes());
                protocol_err(Request::decode(&frame));
            }
        }
        // A hostile member count claiming more than MAX_CLUSTER_NODES is
        // refused before any per-member allocation.
        let mut frame = vec![OP_CLUSTER_EPOCH, 1];
        frame.extend_from_slice(&1u64.to_le_bytes());
        frame.extend_from_slice(&(MAX_CLUSTER_NODES as u16 + 1).to_le_bytes());
        protocol_err(Request::decode(&frame));
    }

    /// The trailing epoch extension on the cluster data-plane frames is
    /// optional both ways: a frame cut before it (a pre-replication
    /// peer) decodes with `epoch: None`, and an explicit absent tag
    /// round-trips. Unknown tags are typed protocol errors.
    #[test]
    fn epoch_extension_is_optional_on_the_wire() {
        let req = Request::Shard(ShardRequest {
            name: "r".into(),
            shard: 0,
            of: 2,
            shard_keys: vec![0],
            schema: schema2(),
            tuples: vec![ints(&[1, 2])],
            epoch: Some(42),
        });
        let bytes = req.encode().unwrap();
        // The extension is 9 trailing bytes: presence tag + u64 epoch.
        match Request::decode(&bytes[..bytes.len() - 9]).unwrap() {
            Request::Shard(s) => assert_eq!(s.epoch, None, "cut frame decodes epochless"),
            other => panic!("expected shard, got {other:?}"),
        }
        match Request::decode(&bytes).unwrap() {
            Request::Shard(s) => assert_eq!(s.epoch, Some(42)),
            other => panic!("expected shard, got {other:?}"),
        }
        let mut mutated = bytes.clone();
        let tag_at = bytes.len() - 9;
        mutated[tag_at] = 7;
        mutated.truncate(tag_at + 1);
        assert!(matches!(
            Request::decode(&mutated),
            Err(ServiceError::Protocol(_))
        ));
        // Same for a divide-partial frame, whose body already ends in
        // three older trailing extensions — the epoch stacks after them.
        let req = Request::DividePartial {
            tag: 1,
            query: DivideRequest {
                dividend: "r".into(),
                divisor: "s".into(),
                algorithm: None,
                assume_unique: false,
                spec: None,
                deadline_ms: None,
                profile: false,
                distribute: None,
                restricted: None,
                mem_budget: None,
            },
            epoch: Some(3),
        };
        let bytes = req.encode().unwrap();
        match Request::decode(&bytes[..bytes.len() - 9]).unwrap() {
            Request::DividePartial { epoch, .. } => assert_eq!(epoch, None),
            other => panic!("expected divide-partial, got {other:?}"),
        }
        match Request::decode(&bytes).unwrap() {
            Request::DividePartial { epoch, query, .. } => {
                assert_eq!(epoch, Some(3));
                assert_eq!(query.restricted, None, "older extensions unharmed");
            }
            other => panic!("expected divide-partial, got {other:?}"),
        }
    }

    /// The stale-epoch error is typed on the wire in both directions:
    /// code 9 encodes from the variant and decodes back to it, so a
    /// coordinator can tell "refresh and retry" from a generic failure.
    #[test]
    fn stale_epoch_error_is_typed_on_the_wire() {
        let resp: Response = Err(ServiceError::StaleEpoch(
            "request epoch 1, node epoch 4".into(),
        ));
        let bytes = encode_response(&resp).unwrap();
        match decode_response(&bytes).unwrap() {
            Err(ServiceError::StaleEpoch(msg)) => {
                assert!(msg.contains("node epoch 4"), "{msg}");
            }
            other => panic!("expected a stale-epoch error, got {other:?}"),
        }
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Hostile-client safety net: the decoders must return errors, never
    /// panic, on arbitrary bytes — random garbage, every truncation of
    /// valid frames, and valid frames with random byte flips.
    #[test]
    fn decoders_survive_hostile_frames() {
        let mut rng = 0x5EED_u64;
        // Pure garbage of assorted lengths.
        for len in 0..=257usize {
            let payload: Vec<u8> = (0..len).map(|_| splitmix64(&mut rng) as u8).collect();
            let _ = Request::decode(&payload);
            let _ = decode_response(&payload);
        }
        // Every prefix of every valid request, and single-byte mutations.
        let valid = vec![
            Request::Ping.encode().unwrap(),
            Request::Register {
                name: "r".into(),
                schema: schema2(),
                tuples: vec![ints(&[1, 2]), ints(&[3, 4])],
            }
            .encode()
            .unwrap(),
            Request::Divide(DivideRequest {
                dividend: "r".into(),
                divisor: "s".into(),
                algorithm: None,
                assume_unique: false,
                spec: Some((vec![1], vec![0])),
                deadline_ms: Some(100),
                profile: true,
                distribute: None,
                restricted: None,
                mem_budget: None,
            })
            .encode()
            .unwrap(),
            Request::Divide(DivideRequest {
                dividend: "r".into(),
                divisor: "s".into(),
                algorithm: None,
                assume_unique: false,
                spec: None,
                deadline_ms: None,
                profile: false,
                distribute: Some(Distribution {
                    strategy: Strategy::QuotientPartitioning,
                    nodes: 4,
                    bit_vector_bits: Some(1 << 12),
                }),
                restricted: Some(true),
                mem_budget: None,
            })
            .encode()
            .unwrap(),
            Request::Shard(ShardRequest {
                name: "r".into(),
                shard: 1,
                of: 3,
                shard_keys: vec![0, 1],
                schema: schema2(),
                tuples: vec![ints(&[1, 2]), ints(&[3, 4])],
                epoch: Some(2),
            })
            .encode()
            .unwrap(),
            Request::Repartition(RepartitionRequest {
                name: "r".into(),
                keys: vec![1],
                parts: 4,
                filter: Some(sample_filter()),
                epoch: Some(1),
            })
            .encode()
            .unwrap(),
            Request::BuildFilter {
                name: "s".into(),
                keys: vec![0],
                bits: 2048,
                epoch: None,
            }
            .encode()
            .unwrap(),
            Request::DividePartial {
                tag: 2,
                query: DivideRequest {
                    dividend: "r".into(),
                    divisor: "s".into(),
                    algorithm: None,
                    assume_unique: false,
                    spec: None,
                    deadline_ms: None,
                    profile: false,
                    distribute: None,
                    restricted: None,
                    mem_budget: None,
                },
                epoch: Some(6),
            }
            .encode()
            .unwrap(),
            Request::Heartbeat.encode().unwrap(),
            Request::ClusterEpoch(EpochRequest::Get).encode().unwrap(),
            Request::ClusterEpoch(EpochRequest::Set {
                epoch: 3,
                members: vec!["127.0.0.1:7181".into(), "127.0.0.1:7182".into()],
                replication: 2,
            })
            .encode()
            .unwrap(),
            Request::ReplicaWrite(ReplicaWriteRequest {
                name: "r".into(),
                fragment: 0,
                of: 2,
                shard_keys: vec![0],
                schema: schema2(),
                tuples: vec![ints(&[1, 2])],
                epoch: Some(3),
            })
            .encode()
            .unwrap(),
            Request::ExecPlan(ExecPlanRequest {
                plan: "(divide (on s) (filter (>= q 2) (scan r)) (scan s))".into(),
                deadline_ms: Some(750),
                profile: true,
            })
            .encode()
            .unwrap(),
        ];
        for bytes in &valid {
            for cut in 0..bytes.len() {
                let _ = Request::decode(&bytes[..cut]);
            }
            for _ in 0..64 {
                let mut mutated = bytes.clone();
                let at = (splitmix64(&mut rng) as usize) % mutated.len();
                mutated[at] ^= (splitmix64(&mut rng) as u8) | 1;
                let _ = Request::decode(&mutated);
            }
        }
        // Same treatment for a valid response frame.
        let resp = encode_response(&Ok(Reply::Divided(DivideReply {
            algorithm: Algorithm::Naive,
            cached: false,
            dividend_version: 1,
            divisor_version: 2,
            micros: 3,
            ops: OpSnapshot::default(),
            schema: schema2(),
            tuples: Arc::new(vec![ints(&[5, 6])]),
            profile: Some(QueryProfile {
                root: sample_profile_node(3),
            }),
        })))
        .unwrap();
        let cluster_replies = vec![
            encode_response(&Ok(Reply::Repartitioned {
                schema: schema2(),
                buckets: vec![vec![ints(&[1, 2])], vec![], vec![ints(&[3, 4])]],
                filtered: 5,
            }))
            .unwrap(),
            encode_response(&Ok(Reply::Filter {
                filter: sample_filter(),
                insertions: 40,
            }))
            .unwrap(),
            encode_response(&Ok(Reply::PartialQuotient(PartialQuotientReply {
                tag: 1,
                algorithm: Algorithm::Naive,
                dividend_version: 1,
                divisor_version: 2,
                micros: 3,
                ops: OpSnapshot::default(),
                schema: schema2(),
                tuples: vec![ints(&[5, 6])],
                profile: Some(QueryProfile {
                    root: sample_profile_node(1),
                }),
            })))
            .unwrap(),
            encode_response(&Ok(Reply::Plan(PlanReply {
                algorithms: vec![
                    Algorithm::Naive,
                    Algorithm::HashDivision {
                        mode: HashDivisionMode::Standard,
                    },
                ],
                cached: false,
                micros: 9,
                ops: OpSnapshot::default(),
                relations: vec![("r".into(), 3), ("s".into(), 4)],
                schema: schema2(),
                tuples: Arc::new(vec![ints(&[5, 6])]),
                profile: Some(QueryProfile {
                    root: sample_profile_node(2),
                }),
            })))
            .unwrap(),
            encode_response(&Ok(Reply::HeartbeatAck {
                epoch: 4,
                accepting: true,
            }))
            .unwrap(),
            encode_response(&Ok(Reply::Epoch {
                epoch: 4,
                members: vec!["127.0.0.1:7181".into(), "127.0.0.1:7182".into()],
                replication: 2,
            }))
            .unwrap(),
            encode_response(&Ok(Reply::ReplicaAck {
                version: 3,
                fragment: 1,
            }))
            .unwrap(),
        ];
        for resp in std::iter::once(&resp).chain(&cluster_replies) {
            for cut in 0..resp.len() {
                let _ = decode_response(&resp[..cut]);
            }
            for _ in 0..64 {
                let mut mutated = resp.clone();
                let at = (splitmix64(&mut rng) as usize) % mutated.len();
                mutated[at] ^= (splitmix64(&mut rng) as u8) | 1;
                let _ = decode_response(&mutated);
            }
        }
    }
}
