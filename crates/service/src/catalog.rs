//! The relation catalog: named, versioned relations.
//!
//! Every `register` (create *or* update) installs a new immutable
//! [`RelationVersion`] under a globally monotonic version number. Queries
//! pin the `Arc` of the version they were admitted with, so a query and
//! a concurrent update never race: the query computes over the version
//! it resolved, and the result cache keys on exact versions, making a
//! stale quotient unrepresentable.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use reldiv_rel::{Relation, Schema, Tuple};

use crate::error::{Result, ServiceError};

/// One immutable version of a named relation.
#[derive(Debug)]
pub struct RelationVersion {
    /// The catalog name.
    pub name: String,
    /// Globally monotonic version number (no two versions of any
    /// relation share one).
    pub version: u64,
    /// The relation's schema.
    pub schema: Schema,
    /// The tuples, shared with every pinned query.
    pub tuples: Arc<Vec<Tuple>>,
}

impl RelationVersion {
    /// Cardinality of this version.
    pub fn cardinality(&self) -> usize {
        self.tuples.len()
    }
}

/// The catalog: name → current [`RelationVersion`].
#[derive(Debug, Default)]
pub struct Catalog {
    relations: RwLock<HashMap<String, Arc<RelationVersion>>>,
    next_version: AtomicU64,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Installs `relation` under `name`, replacing any current version;
    /// returns the new version number.
    pub fn register(&self, name: &str, relation: Relation) -> u64 {
        let version = self.next_version.fetch_add(1, Ordering::Relaxed) + 1;
        let schema = relation.schema().clone();
        let tuples = Arc::new(relation.into_tuples());
        let entry = Arc::new(RelationVersion {
            name: name.to_owned(),
            version,
            schema,
            tuples,
        });
        self.relations.write().insert(name.to_owned(), entry);
        version
    }

    /// Removes `name` from the catalog. Pinned queries against the old
    /// version still complete.
    pub fn drop_relation(&self, name: &str) -> Result<()> {
        match self.relations.write().remove(name) {
            Some(_) => Ok(()),
            None => Err(ServiceError::UnknownRelation(name.to_owned())),
        }
    }

    /// Pins the current version of `name`.
    pub fn get(&self, name: &str) -> Result<Arc<RelationVersion>> {
        self.relations
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| ServiceError::UnknownRelation(name.to_owned()))
    }

    /// `(name, version, cardinality)` for every relation, sorted by name.
    pub fn list(&self) -> Vec<(String, u64, usize)> {
        let mut out: Vec<(String, u64, usize)> = self
            .relations
            .read()
            .values()
            .map(|r| (r.name.clone(), r.version, r.cardinality()))
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reldiv_rel::schema::Field;
    use reldiv_rel::tuple::ints;

    fn rel(rows: &[[i64; 2]]) -> Relation {
        let schema = Schema::new(vec![Field::int("a"), Field::int("b")]);
        Relation::from_tuples(schema, rows.iter().map(|r| ints(r)).collect()).unwrap()
    }

    #[test]
    fn register_bumps_versions_monotonically() {
        let c = Catalog::new();
        let v1 = c.register("r", rel(&[[1, 2]]));
        let v2 = c.register("s", rel(&[[3, 4]]));
        let v3 = c.register("r", rel(&[[5, 6]]));
        assert!(v1 < v2 && v2 < v3);
        assert_eq!(c.get("r").unwrap().version, v3);
        assert_eq!(c.get("r").unwrap().tuples[0], ints(&[5, 6]));
    }

    #[test]
    fn pinned_versions_survive_update_and_drop() {
        let c = Catalog::new();
        c.register("r", rel(&[[1, 2]]));
        let pinned = c.get("r").unwrap();
        c.register("r", rel(&[[9, 9]]));
        c.drop_relation("r").unwrap();
        assert_eq!(pinned.tuples[0], ints(&[1, 2]));
        assert!(matches!(c.get("r"), Err(ServiceError::UnknownRelation(_))));
    }

    #[test]
    fn list_reports_names_versions_cardinalities() {
        let c = Catalog::new();
        c.register("b", rel(&[[1, 2], [3, 4]]));
        c.register("a", rel(&[[1, 2]]));
        let l = c.list();
        assert_eq!(l.len(), 2);
        assert_eq!(l[0].0, "a");
        assert_eq!(l[1].2, 2);
    }
}
