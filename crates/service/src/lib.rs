//! # reldiv-service — a concurrent division query service
//!
//! The paper measures relational division as a standalone query; this
//! crate serves it: a catalog of named, versioned relations, a worker
//! pool executing divisions with any of the paper's algorithms (or the
//! cost model's recommendation), a version-keyed result cache, admission
//! control over a bounded submission queue, and per-query observability.
//!
//! * [`Service`] — the embeddable handle: `register` / `drop_relation` /
//!   `divide` / `stats` / `shutdown`.
//! * [`catalog`] — named relations; every update installs a new
//!   immutable version, and queries pin the version they resolved.
//! * [`cache`] — results keyed on exact input versions, the column spec,
//!   and the resolved algorithm, so a stale quotient cannot be served.
//! * Admission control — a full submission queue rejects with
//!   [`ServiceError::Overloaded`] instead of queueing without bound.
//! * [`metrics`] — latency histogram (p50/p95/p99), hit/miss/rejection
//!   counters, and per-request abstract-operation aggregation via
//!   [`OpScope`](reldiv_rel::counters::OpScope).
//! * [`server`] / [`client`] — a length-prefixed TCP protocol
//!   ([`proto`], documented in `docs/PROTOCOL.md`) plus an in-process
//!   client; both transports implement [`DivisionClient`].
//! * [`Service::exec_plan`] — composed query plans (`reldiv-plan`'s
//!   s-expression language, documented in `docs/PLANS.md`): filters,
//!   joins, projections, divisions, and HAVING COUNT run as one query,
//!   with per-plan version pinning, caching, and profiling.
//!
//! The concurrency model respects the engine's single-threaded storage
//! layer (the paper's system ran one process per disk): each worker
//! thread owns a private `StorageManager` and materializes catalog
//! relations into worker-local record files on demand.

#![deny(missing_docs)]

pub mod cache;
pub mod catalog;
pub mod client;
pub mod error;
pub mod metrics;
pub mod proto;
pub mod server;
pub mod service;
mod worker;

pub use client::{BackoffPolicy, DivisionClient, InProcClient, RetryingClient, TcpClient};
pub use error::{Result, ServiceError};
pub use metrics::MetricsSnapshot;
pub use proto::{
    DivideReply, DivideRequest, EpochRequest, ExecPlanRequest, PartialQuotientReply, PlanReply,
    RepartitionRequest, ReplicaWriteRequest, ShardRequest,
};
pub use reldiv_core::{ProfileNode, QueryProfile};
pub use server::ServerHandle;
pub use service::{
    ClusterEpochState, PlanOptions, PlanResponse, QueryOptions, QueryResponse, Service,
    ServiceConfig, ShardInfo,
};
