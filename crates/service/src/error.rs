//! Service-level errors, including the admission-control rejection.

use std::fmt;

/// Errors surfaced by the query service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The submission queue is full: the request was rejected instead of
    /// buffered. Retrying after a backoff is the expected response.
    Overloaded,
    /// The service is shutting down and refuses new queries (admitted
    /// queries still complete).
    ShuttingDown,
    /// A named relation is not in the catalog.
    UnknownRelation(String),
    /// The request is malformed (bad spec, schema mismatch, bad
    /// algorithm choice for the inputs).
    BadRequest(String),
    /// The division itself failed inside the engine.
    Exec(String),
    /// A wire-protocol or transport failure.
    Protocol(String),
    /// The worker executing the query died before replying.
    Internal(String),
    /// The query's deadline elapsed before the quotient was ready. The
    /// division was cancelled cooperatively; no partial result is served.
    DeadlineExceeded,
    /// The request carried a cluster-catalog epoch that does not match
    /// this node's: the coordinator holds a pre-rebalance routing table.
    /// The node refuses the request rather than answer from fragments the
    /// coordinator no longer describes correctly; the coordinator must
    /// refresh its membership view and retry.
    StaleEpoch(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Overloaded => {
                write!(f, "overloaded: submission queue full, request rejected")
            }
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::UnknownRelation(name) => {
                write!(f, "unknown relation {name:?}")
            }
            ServiceError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServiceError::Exec(msg) => write!(f, "execution error: {msg}"),
            ServiceError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServiceError::Internal(msg) => write!(f, "internal error: {msg}"),
            ServiceError::DeadlineExceeded => {
                write!(f, "deadline exceeded: query cancelled before completion")
            }
            ServiceError::StaleEpoch(msg) => write!(f, "stale catalog epoch: {msg}"),
        }
    }
}

impl ServiceError {
    /// Whether a client may reasonably retry the request after a backoff:
    /// the failure reflects a transient service condition (a full
    /// submission queue, a worker that died mid-query), not a property of
    /// the request itself.
    pub fn is_retryable(&self) -> bool {
        matches!(self, ServiceError::Overloaded | ServiceError::Internal(_))
    }
}

impl std::error::Error for ServiceError {}

impl From<reldiv_core::ExecError> for ServiceError {
    fn from(e: reldiv_core::ExecError) -> ServiceError {
        if e.is_cancelled() {
            ServiceError::DeadlineExceeded
        } else {
            ServiceError::Exec(e.to_string())
        }
    }
}

/// Service result alias.
pub type Result<T> = std::result::Result<T, ServiceError>;
