//! # reldiv — Relational Division: Four Algorithms and Their Performance
//!
//! A production-quality Rust reproduction of Goetz Graefe's paper
//! *"Relational Division: Four Algorithms and Their Performance"*
//! (Oregon Graduate Center TR CS/E 88-022, January 1988; ICDE 1989),
//! including the complete storage and query-execution substrate the
//! paper's experiments ran on.
//!
//! Relational division `R ÷ S` expresses **universal quantification**
//! ("for all" predicates): with dividend `R(q, d)` and divisor `S(d)`,
//! the quotient contains each `q` paired in `R` with *every* tuple of
//! `S` — e.g. the students who have taken *all* database courses.
//!
//! ## Quick start
//!
//! For plain Rust collections, use the generic in-memory hash-division:
//!
//! ```
//! use reldiv::mem::hash_divide;
//!
//! let transcript = [
//!     ("Ann", "Database1"),
//!     ("Barb", "Database2"),
//!     ("Ann", "Database2"),
//!     ("Barb", "Optics"),
//! ];
//! let courses = ["Database1", "Database2"];
//! assert_eq!(hash_divide(transcript, courses), vec!["Ann"]);
//! ```
//!
//! For relations, schemas, and algorithm selection, use
//! [`divide_relations`] / [`divide`]:
//!
//! ```
//! use reldiv::{divide_relations, Algorithm, HashDivisionMode};
//! use reldiv::rel::{Relation, Schema, schema::Field, tuple::ints};
//!
//! let transcript = Relation::from_tuples(
//!     Schema::new(vec![Field::int("student-id"), Field::int("course-no")]),
//!     vec![ints(&[1, 10]), ints(&[1, 20]), ints(&[2, 10])],
//! ).unwrap();
//! let courses = Relation::from_tuples(
//!     Schema::new(vec![Field::int("course-no")]),
//!     vec![ints(&[10]), ints(&[20])],
//! ).unwrap();
//!
//! let q = divide_relations(
//!     &transcript,
//!     &courses,
//!     Algorithm::HashDivision { mode: HashDivisionMode::Standard },
//! ).unwrap();
//! assert_eq!(q.cardinality(), 1); // only student 1 took both courses
//! ```
//!
//! ## Crate map
//!
//! | facade module | crate | contents |
//! |---|---|---|
//! | [`rel`] | `reldiv-rel` | values, schemas, tuples, record codec, operation counters |
//! | [`storage`] | `reldiv-storage` | simulated disk, buffer manager, record files, B+-trees, memory pool |
//! | [`exec`] | `reldiv-exec` | open-next-close operators: scans, sort, joins, aggregation |
//! | [`core`](mod@core) | `reldiv-core` | the four division algorithms, overflow handling, the in-memory API |
//! | [`parallel`] | `reldiv-parallel` | shared-nothing hash-division, bit-vector filtering |
//! | [`costmodel`] | `reldiv-costmodel` | the paper's analytical model (regenerates Table 2 exactly) |
//! | [`workload`] | `reldiv-workload` | deterministic workload generators with ground truth |
//!
//! The benchmark harness (`reldiv-bench`, not re-exported) regenerates
//! every table of the paper; see `EXPERIMENTS.md`.

#![deny(missing_docs)]

pub use reldiv_core as core;
pub use reldiv_costmodel as costmodel;
pub use reldiv_exec as exec;
pub use reldiv_parallel as parallel;
pub use reldiv_rel as rel;
pub use reldiv_storage as storage;
pub use reldiv_workload as workload;

pub use reldiv_core::api::{
    divide, divide_profiled, divide_relations, DivisionConfig, OverflowPolicy, Source,
};
pub use reldiv_core::mem;
pub use reldiv_core::Contains;
pub use reldiv_core::{Algorithm, DivisionSpec, HashDivision, HashDivisionMode};
pub use reldiv_core::{ProfileNode, QueryProfile};

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compose() {
        // The doc examples cover behaviour; this pins the re-export paths.
        let _ = crate::Algorithm::Naive;
        let _ = crate::HashDivisionMode::EarlyOut;
        let _ = crate::storage::manager::StorageConfig::paper();
        let _ = crate::costmodel::CostUnits::paper();
    }
}
